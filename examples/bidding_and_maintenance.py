"""Beyond the paper: bid-aware assignment and incremental maintenance.

The paper's conclusion lists bid-aware assignment as future work; this
example shows the extension shipped with the library:

1. build a conference problem and synthetic reviewer bids,
2. compare plain SDGA against the bid-aware SDGA at several trade-off
   levels (coverage given up vs. bids satisfied),
3. then exercise the incremental-maintenance operations: a late submission
   arrives and a reviewer withdraws.

Run with::

    python examples/bidding_and_maintenance.py
"""

from __future__ import annotations

import numpy as np

from repro import StageDeepeningGreedySolver, make_problem
from repro.core.entities import Paper
from repro.core.vectors import TopicVector
from repro.experiments.reporting import ExperimentTable
from repro.extensions import (
    BidAwareObjective,
    BidAwareSDGASolver,
    BidMatrix,
    assign_additional_paper,
    bid_satisfaction,
    withdraw_reviewer,
)


def main() -> None:
    problem = make_problem(num_papers=40, num_reviewers=18, num_topics=30,
                           group_size=3, reviewer_workload=8, seed=5)
    bids = BidMatrix.random(problem, bid_probability=0.3, seed=5)
    print(f"Problem: {problem}; {len(bids)} reviewer bids collected\n")

    # ------------------------------------------------------------------
    # Coverage vs. bid satisfaction trade-off
    # ------------------------------------------------------------------
    table = ExperimentTable(
        title="Bid-aware SDGA: coverage vs. bid satisfaction",
        columns=["lambda", "coverage score", "bid satisfaction", "combined objective"],
    )
    plain = StageDeepeningGreedySolver().solve(problem)
    table.add_row("plain SDGA", plain.score,
                  bid_satisfaction(plain.assignment, bids), plain.score)
    for tradeoff in (0.25, 0.5, 1.0, 2.0):
        objective = BidAwareObjective(bids=bids, tradeoff=tradeoff)
        result = BidAwareSDGASolver(objective).solve(problem)
        table.add_row(
            tradeoff,
            result.score,
            result.stats["bid_satisfaction"],
            result.stats["combined_objective"],
        )
    print(table.to_text())

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    rng = np.random.default_rng(1)
    late_paper = Paper(
        id="late-submission",
        vector=TopicVector(rng.dirichlet(np.full(problem.num_topics, 0.4))),
        title="A very late but exciting submission",
    )
    update = assign_additional_paper(
        problem, plain.assignment, late_paper,
        reviewer_workload=problem.reviewer_workload + 1,
    )
    group = sorted(update.assignment.reviewers_of(late_paper.id))
    print(f"\nLate submission staffed with: {', '.join(group)}")

    departing = max(update.problem.reviewer_ids, key=update.assignment.load)
    after_withdrawal = withdraw_reviewer(update.problem, update.assignment, departing)
    print(
        f"Reviewer {departing} withdrew; re-staffed "
        f"{len(after_withdrawal.affected_papers)} papers "
        f"(new coverage score "
        f"{after_withdrawal.problem.assignment_score(after_withdrawal.assignment):.3f})"
    )


if __name__ == "__main__":
    main()
