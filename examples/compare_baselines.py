"""Compare every conference-assignment method on a Table 3 style dataset.

Runs the six methods of the paper's Section 5.2 (SM, ILP, BRGG, Greedy,
SDGA, SDGA-SRA) on a scaled-down synthetic stand-in for the Databases 2008
dataset and prints the Figure 10 / Table 4 / Table 7 views: optimality
ratio, response time and the coverage of the worst-served paper.

Run with::

    python examples/compare_baselines.py
"""

from __future__ import annotations

from repro.experiments import ExperimentConfig, run_cra_quality
from repro.experiments.reporting import ExperimentTable, format_ratio, format_seconds


def main() -> None:
    config = ExperimentConfig(scale=0.08, seed=7, num_topics=30)
    result = run_cra_quality(dataset="DB08", group_size=3, config=config)
    problem = result.problem
    print(
        f"Dataset DB08 (scaled): {problem.num_papers} papers, "
        f"{problem.num_reviewers} reviewers, delta_p={problem.group_size}, "
        f"delta_r={problem.reviewer_workload}\n"
    )

    ratios = result.optimality_ratios()
    times = result.response_times()
    lowest = result.lowest_coverage()

    summary = ExperimentTable(
        title="Method comparison (Figure 10 / Table 4 / Table 7 views)",
        columns=["method", "optimality ratio", "response time", "lowest coverage"],
    )
    for method in result.results:
        summary.add_row(
            method,
            format_ratio(ratios[method]),
            format_seconds(times[method]),
            f"{lowest[method]:.3f}",
        )
    print(summary.to_text())

    print()
    print(result.superiority_table().to_text())


if __name__ == "__main__":
    main()
