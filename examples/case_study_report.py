"""Case-study report: how well does each method cover one tricky paper?

Reproduces the style of the paper's Figures 19-20 / Tables 8-9: pick the
most interdisciplinary submission of a synthetic conference, run several
assignment methods, and show — topic by topic — how much of the paper each
method's reviewer group actually covers, together with the reviewers chosen.

Run with::

    python examples/case_study_report.py
"""

from __future__ import annotations

from repro.experiments import ExperimentConfig, run_case_study


def main() -> None:
    config = ExperimentConfig(scale=0.06, seed=11, num_topics=30)
    study = run_case_study(
        dataset="DB08",
        group_size=3,
        methods=("ILP", "Greedy", "SDGA-SRA"),
        top_topic_count=5,
        config=config,
    )

    print(f"Highlighted paper: {study.paper_id} ({study.paper_title})")
    print(f"Dominant topics: {list(study.top_topics)}\n")

    print(study.to_table().to_text())
    print()
    print(study.reviewer_table().to_text())

    best_method = max(study.scores(), key=study.scores().get)
    report = study.reports[best_method]
    print(f"\nPer-topic detail for the best method ({best_method}):")
    for entry in report.top_topics(5):
        marker = "fully covered" if entry.is_fully_covered else "partially covered"
        print(
            f"  topic {entry.topic:>2}: paper weight {entry.paper_weight:.3f}, "
            f"group weight {entry.group_weight:.3f} ({marker}, best reviewer: "
            f"{entry.best_reviewer_id})"
        )


if __name__ == "__main__":
    main()
