"""Parallel execution layer: sharded scoring plus a solver portfolio.

Demonstrates the two headline features of :mod:`repro.parallel` on a
synthetic workload:

1. **Sharded score-matrix construction** — the dense ``(R, P)`` matrix is
   built by a worker pool (reviewer shards, cache-blocked kernel) and
   compared bitwise against the serial kernel.
2. **Solver portfolio** — several registered CRA solvers race on the same
   problem under a deadline; the best-scoring feasible assignment wins.

Run with::

    python examples/parallel_portfolio.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import ParallelConfig, get_scoring_function, make_problem, run_portfolio
from repro.parallel import DEFAULT_PORTFOLIO, sharded_score_matrix


def demo_sharded_scoring() -> None:
    # A service-scale scoring workload: 2000 reviewers x 1000 papers.  The
    # serial kernel broadcasts a ~480 MB (R, P, T) intermediate; the sharded
    # kernel splits the reviewer axis across workers and walks papers in
    # cache-sized blocks — same bits, much less memory traffic.
    rng = np.random.default_rng(7)
    reviewers = rng.random((2000, 30))
    papers = rng.random((1000, 30))
    scoring = get_scoring_function("weighted_coverage")

    started = time.perf_counter()
    serial = scoring.score_matrix(reviewers, papers)
    serial_elapsed = time.perf_counter() - started

    config = ParallelConfig(workers=4, serial_threshold=0)
    started = time.perf_counter()
    sharded = sharded_score_matrix(scoring, reviewers, papers, config)
    sharded_elapsed = time.perf_counter() - started

    print("Sharded score-matrix construction (2000 x 1000 x 30):")
    print(f"  serial broadcast:   {serial_elapsed:6.3f}s")
    print(f"  sharded, 4 workers: {sharded_elapsed:6.3f}s "
          f"({serial_elapsed / max(sharded_elapsed, 1e-9):.1f}x)")
    print(f"  bitwise equal:      {np.array_equal(serial, sharded)}")


def demo_portfolio() -> None:
    # Race the default portfolio (SDGA-SRA, SDGA, Greedy) on one
    # conference instance with a one-minute budget.  Every member that
    # finishes competes on coverage score; the engine-facing variant of
    # this call is AssignmentEngine.solve_portfolio.
    problem = make_problem(num_papers=80, num_reviewers=30, num_topics=30,
                           group_size=3, seed=11)
    outcome = run_portfolio(
        problem,
        solvers=DEFAULT_PORTFOLIO,
        deadline=60.0,
        config=ParallelConfig(workers=2),
    )

    print(f"\nPortfolio race on {problem!r}:")
    for entry in outcome.entries:
        if entry.status == "ok":
            print(f"  {entry.solver:10s} score {entry.score:8.3f} "
                  f"in {entry.elapsed_seconds:6.2f}s")
        else:
            print(f"  {entry.solver:10s} {entry.status}")
    print(f"  winner: {outcome.best_solver} "
          f"(score {outcome.best.score:.3f}, "
          f"race took {outcome.elapsed_seconds:.2f}s)")


def main() -> None:
    demo_sharded_scoring()
    demo_portfolio()


if __name__ == "__main__":
    main()
