"""End-to-end conference assignment from raw text.

This example exercises the *whole* pipeline of the paper:

1. a publication corpus (abstracts with authors) stands in for the candidate
   reviewers' DBLP records;
2. the Author-Topic Model extracts the topic set and each reviewer's topic
   vector (Appendix A);
3. submission abstracts are mapped onto the same topic space with EM
   (Equation 11);
4. the resulting WGRAP instance is solved with SDGA + stochastic refinement,
   and the assignment is written to a JSON file.

Run with::

    python examples/conference_assignment.py
"""

from __future__ import annotations

from pathlib import Path

from repro import SDGAWithRefinementSolver
from repro.data.io import save_assignment
from repro.data.synthetic import SyntheticCorpusGenerator
from repro.metrics import optimality_ratio
from repro.topics import TopicExtractionPipeline


def main() -> None:
    # ------------------------------------------------------------------
    # 1. "Download" the reviewers' publication records and the submissions.
    #    (Here they are generated synthetically with a known topic structure;
    #    with real data, build `Document` objects from your own abstracts.)
    # ------------------------------------------------------------------
    generator = SyntheticCorpusGenerator(
        num_topics=8, words_per_topic=20, background_words=30, seed=1
    )
    corpus = generator.generate(
        num_authors=24,
        publications_per_author=(3, 6),
        num_submissions=40,
        tokens_per_document=(60, 120),
    )
    print(
        f"Corpus: {corpus.publications.num_documents} publications by "
        f"{len(corpus.publications.authors)} authors, "
        f"{len(corpus.submissions)} submissions"
    )

    # ------------------------------------------------------------------
    # 2.+3. Topic extraction: ATM for reviewers, EM for submissions.
    # ------------------------------------------------------------------
    pipeline = TopicExtractionPipeline(num_topics=8, atm_iterations=80, seed=0)
    pipeline.fit(corpus.publications)
    for topic in range(3):
        print(f"  topic {topic}: {', '.join(pipeline.topic_keywords(topic, count=5))}")

    problem = pipeline.build_problem(
        submissions=list(corpus.submissions),
        group_size=3,
    )
    print(f"Assembled problem: {problem}")

    # ------------------------------------------------------------------
    # 4. Solve and persist.
    # ------------------------------------------------------------------
    result = SDGAWithRefinementSolver().solve(problem)
    ratio = optimality_ratio(problem, result.assignment)
    print(f"SDGA-SRA coverage score {result.score:.3f} "
          f"(optimality ratio {ratio:.3f}) in {result.elapsed_seconds:.1f}s")

    output = Path.cwd() / "conference_assignment.json"
    save_assignment(result.assignment, output)
    print(f"Assignment written to {output}")

    # Show the assignment of the most interdisciplinary submission.
    spread = max(
        problem.papers,
        key=lambda paper: sum(1 for weight in paper.vector if weight > 0.05),
    )
    print(f"\nGroup for the most interdisciplinary submission ({spread.id}):")
    for reviewer_id in sorted(result.assignment.reviewers_of(spread.id)):
        print(f"  - {reviewer_id}")


if __name__ == "__main__":
    main()
