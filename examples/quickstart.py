"""Quickstart: assign reviewers to a synthetic conference in a few lines.

Generates a synthetic WGRAP instance (papers and reviewers as topic
vectors), solves it with the paper's SDGA + stochastic-refinement pipeline,
and prints the headline quality metrics plus one example reviewer group.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    SDGAWithRefinementSolver,
    StageDeepeningGreedySolver,
    ideal_assignment,
    make_problem,
)
from repro.metrics import lowest_coverage_score, optimality_ratio


def main() -> None:
    # A conference with 60 submissions, 25 programme-committee members,
    # 3 reviewers per paper and the minimal balanced workload.
    problem = make_problem(num_papers=60, num_reviewers=25, num_topics=30,
                           group_size=3, seed=42)
    print(f"Problem: {problem}")

    # The paper's recommended solver: SDGA followed by stochastic refinement.
    result = SDGAWithRefinementSolver().solve(problem)
    plain_sdga = StageDeepeningGreedySolver().solve(problem)
    reference = ideal_assignment(problem)

    print(f"SDGA      coverage score: {plain_sdga.score:8.3f}")
    print(f"SDGA-SRA  coverage score: {result.score:8.3f}")
    print(f"Optimality ratio:         {optimality_ratio(problem, result.assignment, reference):8.3f}")
    print(f"Worst-served paper:       {lowest_coverage_score(problem, result.assignment):8.3f}")
    print(f"Total time:               {result.elapsed_seconds:8.2f}s")

    example_paper = problem.papers[0]
    group = sorted(result.assignment.reviewers_of(example_paper.id))
    print(f"\nReviewers assigned to {example_paper.id}:")
    for reviewer_id in group:
        reviewer = problem.reviewer_by_id(reviewer_id)
        top_topics = reviewer.vector.top_topics(3)
        print(f"  - {reviewer.name} (strongest topics: {top_topics})")


if __name__ == "__main__":
    main()
