"""Journal Reviewer Assignment: pick the best group for a single submission.

Reproduces the Section 3 workflow: a journal editor has one submission and a
pool of candidate reviewers, and wants the group of ``delta_p`` reviewers
whose combined expertise best covers the paper's topics.  The example runs
the exact Branch-and-Bound Algorithm (BBA), cross-checks it against brute
force, and prints a top-5 shortlist of alternative groups.

Run with::

    python examples/journal_assignment.py
"""

from __future__ import annotations

from repro.data.workloads import make_jra_pool, make_jra_problem
from repro.jra import BranchAndBoundSolver, BruteForceSolver, find_top_k_groups


def main() -> None:
    # 120 candidate reviewers drawn from three research areas; the target
    # paper is interdisciplinary, so good groups need complementary experts.
    pool = make_jra_pool(pool_size=120, num_topics=30, seed=7)
    problem = make_jra_problem(num_candidates=120, group_size=3, pool=pool, seed=7)
    print(f"Journal assignment: {problem}")

    bba = BranchAndBoundSolver().solve(problem)
    print(f"\nBBA optimal group (coverage {bba.score:.4f}, "
          f"{bba.elapsed_seconds * 1000:.1f} ms, "
          f"{bba.stats['nodes_expanded']} nodes):")
    for reviewer_id in bba.reviewer_ids:
        print(f"  - {problem.reviewer_by_id(reviewer_id).name}")

    bfs = BruteForceSolver().solve(problem)
    print(f"\nBrute force agrees: score {bfs.score:.4f} "
          f"({bfs.stats['groups_evaluated']} groups evaluated, "
          f"{bfs.elapsed_seconds:.2f} s)")
    speedup = bfs.elapsed_seconds / max(bba.elapsed_seconds, 1e-9)
    print(f"BBA speed-up over brute force: {speedup:.0f}x")

    print("\nTop-5 candidate groups (for the editor to choose from):")
    for entry in find_top_k_groups(problem, k=5):
        names = ", ".join(
            problem.reviewer_by_id(reviewer_id).name for reviewer_id in entry.reviewer_ids
        )
        print(f"  {entry.rank}. coverage {entry.score:.4f}: {names}")


if __name__ == "__main__":
    main()
