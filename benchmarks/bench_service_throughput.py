"""Serving-subsystem benchmark: warm-cache throughput and incremental updates.

Not a figure of the paper — this bench measures the new
:mod:`repro.service` subsystem against the one-shot batch path it
replaces:

* **journal-query throughput**, cold (a fresh engine per query, as the
  batch CLI behaves) vs. warm (one resident engine whose score matrix,
  top-k indexes and JRA sub-problems persist across queries);
* **incremental-update latency**, applying a late paper / a reviewer
  withdrawal through the engine (one score column appended / one row
  dropped) vs. rebuilding the problem and the full score matrix from
  scratch.

Set ``REPRO_BENCH_SERVICE_PAPERS`` / ``REPRO_BENCH_SERVICE_REVIEWERS`` /
``REPRO_BENCH_SERVICE_QUERIES`` for larger sweeps.
"""

from __future__ import annotations

import os
import time

import numpy as np

from _shared import bench_seed, emit
from repro.core.entities import Paper
from repro.core.vectors import TopicVector
from repro.data.synthetic import make_problem
from repro.experiments.reporting import ExperimentTable
from repro.jra.bba import BranchAndBoundSolver
from repro.service.engine import AssignmentEngine


def _num_papers() -> int:
    return int(os.environ.get("REPRO_BENCH_SERVICE_PAPERS", "120"))


def _num_reviewers() -> int:
    return int(os.environ.get("REPRO_BENCH_SERVICE_REVIEWERS", "60"))


def _num_queries() -> int:
    return int(os.environ.get("REPRO_BENCH_SERVICE_QUERIES", "30"))


def _problem():
    return make_problem(
        num_papers=_num_papers(),
        num_reviewers=_num_reviewers(),
        num_topics=30,
        group_size=3,
        reviewer_workload=8,
        seed=bench_seed(),
    )


def _late_paper(problem, index: int) -> Paper:
    rng = np.random.default_rng(1000 + index)
    vector = rng.dirichlet(np.full(problem.num_topics, 0.5))
    return Paper(id=f"late-{index:04d}", vector=TopicVector(vector))


# ----------------------------------------------------------------------
# Journal-query throughput: cold vs. warm cache
# ----------------------------------------------------------------------
def run_journal_throughput() -> ExperimentTable:
    problem = _problem()
    paper_ids = [
        problem.paper_ids[i % problem.num_papers] for i in range(_num_queries())
    ]

    started = time.perf_counter()
    for paper_id in paper_ids:
        AssignmentEngine(problem).journal_query(paper_id)
    cold_elapsed = time.perf_counter() - started

    engine = AssignmentEngine(problem).warm()
    for paper_id in paper_ids:  # first pass populates the JRA cache
        engine.journal_query(paper_id)
    started = time.perf_counter()
    for paper_id in paper_ids:
        engine.journal_query(paper_id)
    warm_elapsed = time.perf_counter() - started

    table = ExperimentTable(
        title=(
            f"Service throughput: {_num_queries()} journal queries, "
            f"P={problem.num_papers}, R={problem.num_reviewers}"
        ),
        columns=["mode", "total time (s)", "queries/s", "speedup"],
    )
    cold_rate = len(paper_ids) / max(cold_elapsed, 1e-9)
    warm_rate = len(paper_ids) / max(warm_elapsed, 1e-9)
    table.add_row("cold (fresh engine per query)", cold_elapsed, cold_rate, 1.0)
    table.add_row(
        "warm (resident engine)", warm_elapsed, warm_rate, cold_rate and warm_rate / cold_rate
    )
    return table


def test_journal_throughput_cold_vs_warm(benchmark):
    table = benchmark.pedantic(run_journal_throughput, rounds=1, iterations=1)
    emit(table, "service_journal_throughput.csv")
    cold_time, warm_time = table.column("total time (s)")
    # The resident engine must never be slower than cold-starting per query.
    assert warm_time <= cold_time


# ----------------------------------------------------------------------
# Incremental updates vs. full rebuilds
# ----------------------------------------------------------------------
def _full_rebuild_add(problem, paper):
    """The pre-service behaviour: rebuild everything, then staff the paper."""
    from repro.core.problem import JRAProblem, WGRAPProblem

    rebuilt = WGRAPProblem(
        papers=[*problem.papers, paper],
        reviewers=problem.reviewers,
        group_size=problem.group_size,
        reviewer_workload=problem.reviewer_workload + 1,
        conflicts=problem.conflicts,
        scoring=problem.scoring,
        validate_capacity=False,
    )
    rebuilt.pair_score_matrix()  # the full (R, P) scoring pass
    jra = JRAProblem(
        paper=paper,
        reviewers=rebuilt.reviewers,
        group_size=rebuilt.group_size,
        scoring=rebuilt.scoring,
    )
    BranchAndBoundSolver().solve(jra)
    return rebuilt


def run_incremental_vs_rebuild() -> ExperimentTable:
    problem = _problem()
    engine = AssignmentEngine(problem)
    engine.solve("SDGA")
    engine.warm()
    rounds = 8

    # Engine path: one appended (lazy) column per late paper.
    cells_before = engine.cache.stats.scored_cells
    started = time.perf_counter()
    for index in range(rounds):
        engine.add_paper(_late_paper(engine.problem, index),
                         reviewer_workload=engine.problem.reviewer_workload + 1)
        engine.journal_query(f"late-{index:04d}")  # forces the column repair
    incremental_add = (time.perf_counter() - started) / rounds
    incremental_cells = (engine.cache.stats.scored_cells - cells_before) / rounds

    # Batch path: full problem + full score matrix per late paper.
    base = _problem()
    started = time.perf_counter()
    for index in range(rounds):
        base = _full_rebuild_add(base, _late_paper(base, 100 + index))
    rebuild_add = (time.perf_counter() - started) / rounds
    rebuild_cells = base.num_reviewers * base.num_papers

    # Withdrawals: the engine drops a row with zero re-scoring.
    cells_before = engine.cache.stats.scored_cells
    started = time.perf_counter()
    victims = list(engine.problem.reviewer_ids[: rounds // 2])
    for victim in victims:
        engine.withdraw_reviewer(victim)
    incremental_withdraw = (time.perf_counter() - started) / max(len(victims), 1)
    withdraw_cells = (engine.cache.stats.scored_cells - cells_before) / max(
        len(victims), 1
    )

    table = ExperimentTable(
        title="Incremental mutations vs. full rebuild (per operation)",
        columns=["operation", "latency (s)", "scored cells"],
    )
    table.add_row("add_paper (engine)", incremental_add, incremental_cells)
    table.add_row("add_paper (full rebuild)", rebuild_add, rebuild_cells)
    table.add_row("withdraw_reviewer (engine)", incremental_withdraw, withdraw_cells)
    return table


def test_incremental_updates_beat_full_rebuild(benchmark):
    table = benchmark.pedantic(run_incremental_vs_rebuild, rounds=1, iterations=1)
    emit(table, "service_incremental_vs_rebuild.csv")
    cells = dict(zip(table.column("operation"), table.column("scored cells")))
    # An incremental add scores one column (R cells); a rebuild scores R * P.
    assert cells["add_paper (engine)"] < cells["add_paper (full rebuild)"] / 10
    # A withdrawal scores nothing at all.
    assert cells["withdraw_reviewer (engine)"] == 0
