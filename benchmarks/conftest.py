"""Pytest configuration for the benchmark harness.

The benchmarks print the regenerated tables/figures; disable output capture
for them by default so the series are visible in the terminal alongside the
pytest-benchmark timing table.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Make the sibling `_shared` helpers importable regardless of rootdir.
sys.path.insert(0, str(Path(__file__).resolve().parent))
