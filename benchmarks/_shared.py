"""Shared configuration and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it runs the
corresponding experiment (on a scaled-down synthetic workload by default),
prints the same rows/series the paper reports, saves them as CSV under
``benchmarks/results/`` and times the run with ``pytest-benchmark``.

Environment knobs
-----------------
``REPRO_BENCH_SCALE``
    Fraction of the paper's dataset sizes to use for the conference
    experiments (default ``0.15``).  ``REPRO_BENCH_SCALE=1.0`` reproduces the
    full Table 3 sizes (slow in pure Python).
``REPRO_BENCH_GROUP_SIZES``
    Comma-separated group sizes for the conference sweeps (default ``3,4,5``).
``REPRO_BENCH_SEED``
    Seed of the synthetic data generators (default ``7``).
``REPRO_BENCH_WORKERS``
    Worker processes for the parallel execution layer (default ``1`` =
    serial; ``0`` = one per CPU core).  Methods of one comparison run and
    independent trials fan out across this many workers; results are
    identical to the serial run because every trial and solver is seeded
    deterministically.
"""

from __future__ import annotations

import json
import os
import platform
from functools import lru_cache
from pathlib import Path
from typing import Any

from repro.experiments.cra_quality import CRAQualityResult, run_cra_quality
from repro.experiments.reporting import ExperimentTable
from repro.experiments.runner import DEFAULT_CRA_METHODS, ExperimentConfig
from repro.obs.metrics import get_registry
from repro.parallel import ParallelConfig

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def bench_scale() -> float:
    """Dataset scale used by the conference benches."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.15"))


def bench_seed() -> int:
    """Seed shared by the benches."""
    return int(os.environ.get("REPRO_BENCH_SEED", "7"))


def bench_workers() -> int:
    """Worker processes requested for the benches (1 = serial)."""
    return int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


def bench_parallel_config() -> ParallelConfig | None:
    """The ParallelConfig the benches pass down, or ``None`` when serial."""
    workers = bench_workers()
    if workers == 1:
        return None
    return ParallelConfig(workers=workers)


def bench_group_sizes() -> tuple[int, ...]:
    """Group sizes swept by the conference benches."""
    raw = os.environ.get("REPRO_BENCH_GROUP_SIZES", "3,4,5")
    return tuple(int(part) for part in raw.split(",") if part.strip())


def experiment_config() -> ExperimentConfig:
    """The ExperimentConfig every conference bench uses."""
    return ExperimentConfig(scale=bench_scale(), seed=bench_seed(), num_topics=30)


@lru_cache(maxsize=None)
def quality_run(dataset: str, group_size: int) -> CRAQualityResult:
    """Run (and cache) the full method comparison for one configuration.

    Several benches (Table 4, Figures 10/11, Table 7, Figures 17/18) are
    different views over the same runs, so the expensive part is shared
    across bench modules within one pytest session.
    """
    return run_cra_quality(
        dataset=dataset,
        group_size=group_size,
        methods=DEFAULT_CRA_METHODS,
        config=experiment_config(),
        parallel=bench_parallel_config(),
    )


def emit(table: ExperimentTable, filename: str) -> ExperimentTable:
    """Print a result table and persist it under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    print()
    print(table.to_text())
    table.save_csv(RESULTS_DIR / filename)
    return table


def emit_bench_json(payload: dict[str, Any], filename: str) -> Path:
    """Persist a machine-readable benchmark record under ``benchmarks/results/``.

    The payload is written as one pretty-printed JSON document, annotated
    with the interpreter/platform/CPU count so BENCH trajectory entries
    (see the repo-root ``BENCH.md``) can be compared across machines, plus
    the process-global metric snapshot (solver wall-time histograms with
    p50/p95/p99) accumulated while the bench ran.  Returns the written
    path.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    record = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "metrics": get_registry().snapshot(),
        **payload,
    }
    path = RESULTS_DIR / filename
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"\nwrote {path}")
    return path
