"""Figure 11: superiority ratio of SDGA-SRA over the competitors.

For every competitor the bench reports the fraction of papers whose reviewer
group under SDGA-SRA covers the paper at least as well (split into strict
wins and ties, mirroring the stacked bars of the figure).  The asserted
shape is the paper's: SDGA-SRA is at least as good on the overwhelming
majority of papers versus SM / ILP / Greedy.
"""

from __future__ import annotations

from _shared import bench_group_sizes, emit, quality_run
from repro.experiments.reporting import ExperimentTable

_COMPETITORS = ("SM", "ILP", "BRGG", "Greedy")


def _collect(dataset: str):
    rows = []
    for group_size in bench_group_sizes():
        result = quality_run(dataset, group_size)
        rows.append((group_size, result.superiority_of("SDGA-SRA")))
    return rows


def _emit_dataset(dataset: str, rows, filename: str):
    table = ExperimentTable(
        title=f"Figure 11: superiority ratio of SDGA-SRA — {dataset}",
        columns=["delta_p", "versus", "superiority", "strict wins", "ties"],
    )
    for group_size, breakdown in rows:
        for competitor in _COMPETITORS:
            entry = breakdown[competitor]
            table.add_row(group_size, competitor, entry["superiority"],
                          entry["strict"], entry["ties"])
    emit(table, filename)
    for _, breakdown in rows:
        for competitor in ("SM", "ILP", "Greedy"):
            assert breakdown[competitor]["superiority"] >= 0.5


def test_fig11a_superiority_databases(benchmark):
    rows = benchmark.pedantic(_collect, args=("DB08",), rounds=1, iterations=1)
    _emit_dataset("DB08", rows, "fig11a_superiority_db08.csv")


def test_fig11b_superiority_data_mining(benchmark):
    rows = benchmark.pedantic(_collect, args=("DM08",), rounds=1, iterations=1)
    _emit_dataset("DM08", rows, "fig11b_superiority_dm08.csv")
