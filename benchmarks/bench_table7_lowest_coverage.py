"""Table 7: the lowest per-paper coverage score of every method.

Regenerates the "worst-served paper" table across the six datasets (at
delta_p = 3 by default; extend via REPRO_BENCH_GROUP_SIZES).  The asserted
shape is the paper's: the SDGA family keeps the worst paper far better
covered than SM / ILP / BRGG.
"""

from __future__ import annotations

from _shared import emit, quality_run
from repro.data.venues import dataset_names
from repro.experiments.reporting import ExperimentTable
from repro.experiments.runner import DEFAULT_CRA_METHODS


def _collect():
    rows = []
    for dataset in dataset_names():
        result = quality_run(dataset, 3)
        rows.append((dataset, result.lowest_coverage()))
    return rows


def test_table7_lowest_coverage(benchmark):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    table = ExperimentTable(
        title="Table 7: lowest per-paper coverage score (delta_p = 3)",
        columns=["dataset", *DEFAULT_CRA_METHODS],
    )
    for dataset, lowest in rows:
        table.add_row(dataset, *[lowest[m] for m in DEFAULT_CRA_METHODS])
    emit(table, "table7_lowest_coverage.csv")

    for _, lowest in rows:
        best_of_ours = max(lowest["SDGA"], lowest["SDGA-SRA"])
        assert best_of_ours >= lowest["SM"] - 1e-9
        assert best_of_ours >= lowest["BRGG"] - 1e-9
