"""Ablation: lazy (dense argmax) greedy vs. naive re-scan greedy.

The pair-greedy baseline can either re-evaluate every feasible pair at each
iteration (the textbook description) or maintain the current gains
incrementally — per-paper column maxima over the dense gain matrix,
refreshing one column per assignment.  Both make the same true-argmax
selection (bitwise, pinned by the test suite), but the incremental version
does asymptotically less gain work.  The bench measures both and checks
the agreement.
"""

from __future__ import annotations

import time

from _shared import emit, experiment_config
from repro.cra.greedy import GreedySolver
from repro.experiments.cra_quality import build_dataset_problem
from repro.experiments.reporting import ExperimentTable


def _problem():
    return build_dataset_problem("DB08", group_size=3, config=experiment_config())


def test_ablation_greedy_lazy_heap(benchmark):
    problem = _problem()

    lazy_result = benchmark.pedantic(
        lambda: GreedySolver(use_lazy_heap=True).solve(problem), rounds=3, iterations=1
    )
    naive_started = time.perf_counter()
    naive_result = GreedySolver(use_lazy_heap=False).solve(problem)
    naive_elapsed = time.perf_counter() - naive_started

    table = ExperimentTable(
        title="Ablation: greedy gain evaluation strategy",
        columns=["strategy", "coverage score", "time (s)", "gain evaluations"],
    )
    # Report both strategies in the same unit (evaluated gain cells):
    # one column refresh evaluates R reviewer gains.
    lazy_cells = lazy_result.stats["column_refreshes"] * problem.num_reviewers
    table.add_row("lazy (dense argmax)", lazy_result.score, lazy_result.elapsed_seconds,
                  lazy_cells)
    table.add_row("naive re-scan", naive_result.score, naive_elapsed,
                  naive_result.stats.get("gain_evaluations", 0))
    emit(table, "ablation_greedy_heap.csv")

    # Same answer, and the lazy version does far less gain work.
    assert lazy_result.score == naive_result.score
    assert lazy_cells < naive_result.stats["gain_evaluations"]
