"""Ablation: lazy-heap greedy vs. naive re-scan greedy.

The pair-greedy baseline can either re-evaluate every feasible pair at each
iteration (the textbook description) or keep gains in a lazy max-heap
(what a production implementation does).  Both return the same assignment —
submodularity makes the lazy evaluation exact — but the heap version is
asymptotically cheaper.  The bench measures both and checks the agreement.
"""

from __future__ import annotations

import time

from _shared import emit, experiment_config
from repro.cra.greedy import GreedySolver
from repro.experiments.cra_quality import build_dataset_problem
from repro.experiments.reporting import ExperimentTable


def _problem():
    return build_dataset_problem("DB08", group_size=3, config=experiment_config())


def test_ablation_greedy_lazy_heap(benchmark):
    problem = _problem()

    lazy_result = benchmark.pedantic(
        lambda: GreedySolver(use_lazy_heap=True).solve(problem), rounds=3, iterations=1
    )
    naive_started = time.perf_counter()
    naive_result = GreedySolver(use_lazy_heap=False).solve(problem)
    naive_elapsed = time.perf_counter() - naive_started

    table = ExperimentTable(
        title="Ablation: greedy gain evaluation strategy",
        columns=["strategy", "coverage score", "time (s)", "gain evaluations"],
    )
    table.add_row("lazy heap", lazy_result.score, lazy_result.elapsed_seconds,
                  lazy_result.stats.get("heap_reinsertions", 0))
    table.add_row("naive re-scan", naive_result.score, naive_elapsed,
                  naive_result.stats.get("gain_evaluations", 0))
    emit(table, "ablation_greedy_heap.csv")

    # Same answer, and the lazy version does far less gain work.
    assert abs(lazy_result.score - naive_result.score) < 1e-9
    assert lazy_result.stats.get("heap_reinsertions", 0) <= naive_result.stats.get(
        "gain_evaluations", 1
    )
