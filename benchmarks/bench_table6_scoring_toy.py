"""Tables 5-6: the alternative scoring functions on the toy example.

Regenerates the two-reviewer toy example of Appendix B and asserts the
paper's point: weighted coverage is the only scoring function that prefers
the well-matched reviewer r2 over the narrowly-expert reviewer r1.
"""

from __future__ import annotations

from _shared import emit
from repro.experiments.scoring_ablation import scoring_toy_example


def test_table6_scoring_function_toy_example(benchmark):
    table = benchmark(scoring_toy_example)
    emit(table, "table6_scoring_toy_example.csv")

    preferences = {row[0]: row[3] for row in table.rows}
    assert preferences["weighted_coverage"] == "r2"
    assert preferences["reviewer_coverage"] == "r1"
    assert preferences["paper_coverage"] == "r1"
    assert preferences["dot_product"] == "r1"

    scores = {row[0]: (row[1], row[2]) for row in table.rows}
    assert abs(scores["weighted_coverage"][0] - 0.7) < 1e-9
    assert abs(scores["weighted_coverage"][1] - 0.9) < 1e-9
    assert abs(scores["dot_product"][0] - 0.58) < 1e-9
