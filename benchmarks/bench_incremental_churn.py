"""Incremental churn benchmark: delta maintenance vs full recompile.

Not a figure of the paper — this bench pins the acceptance bar of the
``repro.core.delta`` layer on the ROADMAP's serving workload: a resident
:class:`~repro.service.engine.AssignmentEngine` fields a stream of
interleaved **add-paper / withdraw-reviewer / journal-query / solve**
requests (the churn-serving hot path: mutations arrive continuously,
online JRA queries read the maintained state, and a full conference
re-solve runs periodically).  The same request stream is replayed twice:

* **delta path** — the engine as shipped: every mutation is absorbed by
  the delta layer (one appended pair-score column per late paper, one
  dropped row per withdrawal, delta-derived dense views), journal queries
  read the maintained matrix, and full solves run the pruned candidate
  generator;
* **full-recompile baseline** — identical engine code, but every cache is
  invalidated before each request (``problem.invalidate_caches()`` +
  ``cache.invalidate()``), so each mutate->resolve pays the historical
  ``O(R * P * T)`` re-score and ``O(R * P)`` recompile.

Both replays must produce **bitwise-identical outputs**: every solve's
assignment and score, every journal answer's groups and shortlist, and
every mutation's added/removed pairs.  The delta path must be at least
``REPRO_BENCH_CHURN_MIN_SPEEDUP`` (default 10) times faster end to end.

Results feed ``benchmarks/results/BENCH_churn.json`` and the repo-root
``BENCH.md`` trajectory.

Environment knobs
-----------------
``REPRO_BENCH_CHURN_REVIEWERS`` / ``REPRO_BENCH_CHURN_PAPERS`` /
``REPRO_BENCH_CHURN_TOPICS`` / ``REPRO_BENCH_CHURN_GROUP_SIZE``
    Seed instance size (defaults 4000 / 1000 / 30 / 3 — a reviewer-heavy
    serving pool, scaled down from the ROADMAP's 50k-reviewer ambition
    like every bench in this repo; raise them to taste).
``REPRO_BENCH_CHURN_EVENTS``
    Number of interleaved requests after the initial solve (default 500,
    the ROADMAP workload).
``REPRO_BENCH_CHURN_SOLVE_EVERY``
    A full conference re-solve is injected every this many events
    (default 250; the remaining stream is ~40% add-paper, ~15%
    withdraw-reviewer, ~45% journal queries).
``REPRO_BENCH_CHURN_POOL``
    Staffing/journal candidate-pool width (default 12).
``REPRO_BENCH_CHURN_MIN_SPEEDUP``
    Asserted end-to-end speedup (default 10.0; CI relaxes this to a smoke
    threshold on a scaled-down instance while keeping the bitwise
    assertions strict).
"""

from __future__ import annotations

import math
import os
import time

import numpy as np

from _shared import bench_seed, emit, emit_bench_json
from repro.core.entities import Paper, Reviewer
from repro.core.problem import WGRAPProblem
from repro.core.vectors import TopicVector
from repro.experiments.reporting import ExperimentTable
from repro.service.engine import AssignmentEngine


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, str(default)))


def _instance_shape() -> tuple[int, int, int, int]:
    return (
        _env_int("REPRO_BENCH_CHURN_REVIEWERS", 4000),
        _env_int("REPRO_BENCH_CHURN_PAPERS", 1000),
        _env_int("REPRO_BENCH_CHURN_TOPICS", 30),
        _env_int("REPRO_BENCH_CHURN_GROUP_SIZE", 3),
    )


def _num_events() -> int:
    return _env_int("REPRO_BENCH_CHURN_EVENTS", 500)


def _solve_every() -> int:
    return max(1, _env_int("REPRO_BENCH_CHURN_SOLVE_EVERY", 250))


def _pool_size() -> int:
    return _env_int("REPRO_BENCH_CHURN_POOL", 12)


def _min_speedup() -> float:
    return float(os.environ.get("REPRO_BENCH_CHURN_MIN_SPEEDUP", "10.0"))


def _make_workload():
    """Entities, late papers and a deterministic interleaved event stream."""
    num_reviewers, num_papers, num_topics, group_size = _instance_shape()
    events = _num_events()
    solve_every = _solve_every()
    rng = np.random.default_rng(bench_seed())
    reviewers = [
        Reviewer(id=f"reviewer-{i:05d}", vector=TopicVector(rng.random(num_topics)))
        for i in range(num_reviewers)
    ]
    papers = [
        Paper(id=f"paper-{i:05d}", vector=TopicVector(rng.random(num_topics)))
        for i in range(num_papers)
    ]
    late_papers = [
        Paper(id=f"late-{i:05d}", vector=TopicVector(rng.random(num_topics)))
        for i in range(events)
    ]
    # A mutation-heavy serving mix: ~40% late submissions, ~15%
    # withdrawals, ~45% online journal queries, plus a periodic full
    # re-solve.  Withdrawals and journal targets are encoded as a fraction
    # of the *current* pool so both replays deterministically pick the
    # same entity.
    stream: list[tuple] = []
    add_cursor = 0
    for index in range(events):
        if (index + 1) % solve_every == 0:
            stream.append(("solve",))
            continue
        draw = rng.random()
        if draw < 0.40:
            stream.append(("add", add_cursor))
            add_cursor += 1
        elif draw < 0.55:
            stream.append(("withdraw", float(rng.random())))
        else:
            stream.append(("journal", float(rng.random())))
    # Twice the minimal feasible workload leaves room for the adds and
    # withdrawals without ever hitting the capacity wall.
    workload = 2 * max(1, math.ceil(num_papers * group_size / num_reviewers))
    return papers, reviewers, late_papers, stream, group_size, workload


def _journal_output(answer) -> tuple:
    return (
        "journal",
        answer.paper_id,
        tuple((group.reviewer_ids, group.score) for group in answer.groups),
        answer.shortlist,
    )


def _replay(
    papers, reviewers, late_papers, stream, group_size, workload, invalidate: bool
):
    """Run the request stream; returns (elapsed, outputs, engine)."""
    pool = _pool_size()
    problem = WGRAPProblem(
        papers=papers,
        reviewers=reviewers,
        group_size=group_size,
        reviewer_workload=workload,
    )
    engine = AssignmentEngine(problem)
    outputs: list[tuple] = []
    # The seed solve is setup shared by both pipelines, not part of the
    # churn stream; it is timed separately.
    seed_started = time.perf_counter()
    result = engine.solve("Greedy")
    seed_elapsed = time.perf_counter() - seed_started
    outputs.append(("solve", result.score, tuple(sorted(result.assignment.pairs()))))
    started = time.perf_counter()
    for event in stream:
        if invalidate:
            engine.problem.invalidate_caches()
            engine.cache.invalidate(engine.problem)
        if event[0] == "solve":
            result = engine.solve("Greedy")
            outputs.append(
                ("solve", result.score, tuple(sorted(result.assignment.pairs())))
            )
        elif event[0] == "add":
            delta = engine.add_paper(late_papers[event[1]], pool_size=pool)
            outputs.append(("add", delta.added_pairs))
        elif event[0] == "withdraw":
            victim = engine.problem.reviewer_ids[
                int(event[1] * engine.problem.num_reviewers)
            ]
            delta = engine.withdraw_reviewer(victim)
            outputs.append(("withdraw", delta.added_pairs, delta.removed_pairs))
        else:
            paper_id = engine.problem.paper_ids[
                int(event[1] * engine.problem.num_papers)
            ]
            answer = engine.journal_query(paper_id, pool_size=pool)
            outputs.append(_journal_output(answer))
    elapsed = time.perf_counter() - started
    return elapsed, seed_elapsed, outputs, engine


def run_incremental_churn() -> tuple[ExperimentTable, dict]:
    papers, reviewers, late_papers, stream, group_size, workload = _make_workload()
    num_reviewers, num_papers, num_topics, _ = _instance_shape()
    counts = {
        kind: sum(1 for event in stream if event[0] == kind)
        for kind in ("add", "withdraw", "journal", "solve")
    }

    delta_elapsed, delta_seed, delta_outputs, delta_engine = _replay(
        papers, reviewers, late_papers, stream, group_size, workload, invalidate=False
    )
    baseline_elapsed, baseline_seed, baseline_outputs, _ = _replay(
        papers, reviewers, late_papers, stream, group_size, workload, invalidate=True
    )

    identical = delta_outputs == baseline_outputs
    speedup = baseline_elapsed / max(delta_elapsed, 1e-9)
    view_stats = delta_engine.problem.view_stats.as_dict()
    total_events = len(stream)

    table = ExperimentTable(
        title=(
            f"Incremental churn, R={num_reviewers}, P={num_papers}, "
            f"T={num_topics}, delta_p={group_size}, {total_events} events "
            f"({counts['add']} add / {counts['withdraw']} withdraw / "
            f"{counts['journal']} journal / {counts['solve']} solve)"
        ),
        columns=["pipeline", "total (s)", "per event (ms)", "speedup"],
    )
    table.add_row(
        "full recompile (baseline)",
        baseline_elapsed,
        1000.0 * baseline_elapsed / max(total_events, 1),
        1.0,
    )
    table.add_row(
        "delta maintenance + pruning",
        delta_elapsed,
        1000.0 * delta_elapsed / max(total_events, 1),
        speedup,
    )

    verdict = {
        "instance": {
            "reviewers": num_reviewers,
            "papers": num_papers,
            "topics": num_topics,
            "group_size": group_size,
            "reviewer_workload": workload,
            "events": total_events,
            "event_mix": counts,
            "pool_size": _pool_size(),
            "seed": bench_seed(),
        },
        "baseline_seconds": baseline_elapsed,
        "baseline_seed_solve_seconds": baseline_seed,
        "delta_seconds": delta_elapsed,
        "delta_seed_solve_seconds": delta_seed,
        "speedup": speedup,
        "min_speedup": _min_speedup(),
        "outputs_bitwise_identical": identical,
        "view_stats": view_stats,
        "cache_stats": delta_engine.cache.stats.as_dict(),
    }
    return table, verdict


def test_incremental_churn_speedup(benchmark):
    table, verdict = benchmark.pedantic(run_incremental_churn, rounds=1, iterations=1)
    emit(table, "incremental_churn.csv")
    emit_bench_json(verdict, "BENCH_churn.json")
    assert verdict["outputs_bitwise_identical"], (
        "the delta-maintained engine diverged from the full-recompile baseline"
    )
    stats = verdict["view_stats"]
    assert stats["delta_applies"] > 0, stats
    assert verdict["speedup"] >= verdict["min_speedup"], verdict
