"""Figure 14: additional JRA scalability sweeps (R=300 and delta_p=4 defaults).

The paper's Appendix C repeats the Figure 9 sweeps at a different fixed
pool size and group size.  The bench mirrors that with proportionally
smaller defaults (see ``bench_fig9_jra_scalability`` for why) while keeping
the relative configuration of the two figures: the pool here is larger than
Figure 9's and the fixed group size is one larger.
"""

from __future__ import annotations

import os

from _shared import bench_seed, emit
from repro.experiments.jra_scalability import (
    JRAScalabilityConfig,
    run_group_size_scalability,
    run_pool_size_scalability,
)

_CONFIG = JRAScalabilityConfig(
    num_trials=2, num_topics=30, seed=bench_seed() + 1, ilp_time_limit=30.0
)


def _pool_size() -> int:
    return int(os.environ.get("REPRO_BENCH_JRA_POOL_LARGE", "80"))


def test_fig14a_time_vs_group_size_larger_pool(benchmark):
    table = benchmark.pedantic(
        run_group_size_scalability,
        kwargs=dict(
            group_sizes=(2, 3),
            num_candidates=_pool_size(),
            methods=("BFS", "ILP", "BBA"),
            config=_CONFIG,
        ),
        rounds=1,
        iterations=1,
    )
    emit(table, "fig14a_jra_time_vs_group_size.csv")
    assert table.column("BBA time (s)")[-1] <= table.column("BFS time (s)")[-1]


def test_fig14b_time_vs_pool_size_group4(benchmark):
    table = benchmark.pedantic(
        run_pool_size_scalability,
        kwargs=dict(
            pool_sizes=(25, 35, 45),
            group_size=4,
            methods=("BFS", "ILP", "BBA"),
            config=_CONFIG,
        ),
        rounds=1,
        iterations=1,
    )
    emit(table, "fig14b_jra_time_vs_pool_size.csv")
    bfs = table.column("BFS time (s)")
    bba = table.column("BBA time (s)")
    assert bba[-1] <= bfs[-1]
    # BFS grows super-linearly with R at delta_p=4; BBA grows far slower.
    assert bfs[-1] / max(bfs[0], 1e-9) >= bba[-1] / max(bba[0], 1e-9)
