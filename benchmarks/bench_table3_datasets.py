"""Table 3: the evaluation datasets.

Regenerates the dataset-statistics table.  The paper's numbers come from
DBLP/ArnetMiner; here the synthetic generator produces stand-in instances
with the same paper/reviewer counts (optionally scaled by
``REPRO_BENCH_SCALE``), and the bench reports both the paper's sizes and the
generated sizes so the substitution is visible.
"""

from __future__ import annotations

from _shared import bench_scale, emit, experiment_config
from repro.data.synthetic import SyntheticWorkloadGenerator
from repro.data.venues import dataset_names, dataset_spec
from repro.experiments.reporting import ExperimentTable


def _generate_all_datasets():
    config = experiment_config()
    generator = SyntheticWorkloadGenerator(num_topics=config.num_topics, seed=config.seed)
    problems = {}
    for name in dataset_names():
        problems[name] = generator.generate_dataset(name, scale=bench_scale(), group_size=3)
    return problems


def test_table3_dataset_statistics(benchmark):
    problems = benchmark.pedantic(_generate_all_datasets, rounds=1, iterations=1)
    table = ExperimentTable(
        title=f"Table 3: datasets (paper sizes vs generated at scale {bench_scale()})",
        columns=[
            "dataset", "area", "year",
            "paper #papers", "paper #reviewers",
            "generated #papers", "generated #reviewers", "delta_r (minimal)",
        ],
    )
    for name in dataset_names():
        spec = dataset_spec(name)
        problem = problems[name]
        table.add_row(
            name, spec.area.name, spec.year,
            spec.num_papers, spec.num_reviewers,
            problem.num_papers, problem.num_reviewers, problem.reviewer_workload,
        )
    emit(table, "table3_datasets.csv")
