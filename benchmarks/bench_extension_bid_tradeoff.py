"""Extension bench: the coverage / bid-satisfaction trade-off.

Not part of the paper (its conclusion lists bid-aware assignment as future
work).  The bench sweeps the trade-off parameter ``lambda`` of the
bid-aware SDGA and reports how much topic coverage is traded for how much
bid satisfaction, verifying that

* ``lambda = 0`` reproduces plain SDGA exactly,
* bid satisfaction is non-decreasing in ``lambda``, and
* the combined objective is always at least plain SDGA's.
"""

from __future__ import annotations

from _shared import bench_seed, emit, experiment_config
from repro.cra.sdga import StageDeepeningGreedySolver
from repro.experiments.cra_quality import build_dataset_problem
from repro.experiments.reporting import ExperimentTable
from repro.extensions.bidding import BidAwareObjective, BidAwareSDGASolver, BidMatrix, bid_satisfaction

_TRADEOFFS = (0.0, 0.25, 0.5, 1.0, 2.0)


def _run_sweep():
    problem = build_dataset_problem("DB08", group_size=3, config=experiment_config())
    bids = BidMatrix.random(problem, bid_probability=0.3, seed=bench_seed())
    plain = StageDeepeningGreedySolver().solve(problem)
    rows = [("plain SDGA", plain.score, bid_satisfaction(plain.assignment, bids), plain.score)]
    for tradeoff in _TRADEOFFS:
        objective = BidAwareObjective(bids=bids, tradeoff=tradeoff)
        result = BidAwareSDGASolver(objective).solve(problem)
        rows.append(
            (
                tradeoff,
                result.score,
                result.stats["bid_satisfaction"],
                result.stats["combined_objective"],
            )
        )
    return plain, rows


def test_extension_bid_tradeoff(benchmark):
    plain, rows = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    table = ExperimentTable(
        title="Extension: bid-aware SDGA trade-off sweep (DB08, delta_p=3)",
        columns=["lambda", "coverage score", "bid satisfaction", "combined objective"],
    )
    for row in rows:
        table.add_row(*row)
    emit(table, "extension_bid_tradeoff.csv")

    by_lambda = {row[0]: row for row in rows}
    assert abs(by_lambda[0.0][1] - plain.score) < 1e-9
    satisfactions = [by_lambda[value][2] for value in _TRADEOFFS]
    assert all(later >= earlier - 1e-9 for earlier, later in zip(satisfactions, satisfactions[1:]))
    coverages = [by_lambda[value][1] for value in _TRADEOFFS]
    assert all(value <= plain.score + 1e-9 for value in coverages)
