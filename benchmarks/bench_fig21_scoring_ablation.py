"""Figure 21: alternative objectives and h-index-scaled expertise.

Re-runs the Databases quality experiment with the reviewer-coverage,
paper-coverage and dot-product objectives (Figure 21 a-c) and with
reviewer vectors rescaled by their h-indices (Figure 21 d).  The paper's
observation — the overall trends are unchanged and SDGA-SRA stays on top —
is asserted for every variant.
"""

from __future__ import annotations

from _shared import emit, experiment_config
from repro.experiments.reporting import ExperimentTable
from repro.experiments.runner import DEFAULT_CRA_METHODS
from repro.experiments.scoring_ablation import run_h_index_scaling, run_scoring_ablation

_SCORINGS = ("reviewer_coverage", "paper_coverage", "dot_product")


def _collect():
    config = experiment_config()
    rows = []
    for scoring in _SCORINGS:
        result = run_scoring_ablation(scoring, dataset="DB08", group_size=3,
                                      config=config)
        rows.append((scoring, result.optimality_ratios()))
    h_index = run_h_index_scaling(dataset="DB08", group_size=3, config=config)
    rows.append(("h_index_scaled", h_index.optimality_ratios()))
    return rows


def test_fig21_alternative_objectives_and_h_index(benchmark):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    table = ExperimentTable(
        title="Figure 21: optimality ratio under alternative objectives (DB08, delta_p=3)",
        columns=["objective", *DEFAULT_CRA_METHODS],
    )
    for objective, ratios in rows:
        table.add_row(objective, *[ratios[m] for m in DEFAULT_CRA_METHODS])
    emit(table, "fig21_scoring_ablation.csv")

    for _, ratios in rows:
        assert ratios["SDGA-SRA"] >= ratios["SM"] - 1e-9
        assert ratios["SDGA-SRA"] >= ratios["BRGG"] - 1e-9
        assert ratios["SDGA-SRA"] >= ratios["SDGA"] - 1e-9
