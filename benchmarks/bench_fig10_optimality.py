"""Figure 10: optimality ratio of every method on Databases / Data Mining 2008.

Regenerates the optimality-ratio bars (ratio of each method's coverage score
to the ideal per-paper assignment) for delta_p in {3, 4, 5}.  The asserted
shape is the paper's: SDGA-SRA is the best method, SDGA and Greedy are close
behind, and SM / ILP / BRGG trail by a visible margin.
"""

from __future__ import annotations

from _shared import bench_group_sizes, emit, quality_run
from repro.experiments.reporting import ExperimentTable
from repro.experiments.runner import DEFAULT_CRA_METHODS


def _collect(dataset: str):
    rows = []
    for group_size in bench_group_sizes():
        result = quality_run(dataset, group_size)
        rows.append((group_size, result.optimality_ratios()))
    return rows


def _emit_dataset(dataset: str, rows, filename: str):
    table = ExperimentTable(
        title=f"Figure 10: optimality ratio — {dataset}",
        columns=["delta_p", *DEFAULT_CRA_METHODS],
    )
    for group_size, ratios in rows:
        table.add_row(group_size, *[ratios[m] for m in DEFAULT_CRA_METHODS])
    emit(table, filename)
    for _, ratios in rows:
        # Paper shape: the proposed method is the best of all six, and the
        # group-unaware baselines (SM, ILP) never beat it.
        assert ratios["SDGA-SRA"] >= max(ratios.values()) - 1e-9
        assert ratios["SDGA-SRA"] >= ratios["SM"]
        assert ratios["SDGA-SRA"] >= ratios["ILP"]
        assert ratios["SDGA-SRA"] >= ratios["BRGG"]
        # And refinement does not fall below plain SDGA.
        assert ratios["SDGA-SRA"] >= ratios["SDGA"] - 1e-9


def test_fig10a_optimality_ratio_databases(benchmark):
    rows = benchmark.pedantic(_collect, args=("DB08",), rounds=1, iterations=1)
    _emit_dataset("DB08", rows, "fig10a_optimality_db08.csv")


def test_fig10b_optimality_ratio_data_mining(benchmark):
    rows = benchmark.pedantic(_collect, args=("DM08",), rounds=1, iterations=1)
    _emit_dataset("DM08", rows, "fig10b_optimality_dm08.csv")
