"""Parallel-scaling benchmark: sharded score-matrix construction.

Not a figure of the paper — this bench measures the
:mod:`repro.parallel` execution layer against the serial kernel it wraps
on a service-scale instance (2000 reviewers × 1000 papers × 30 topics by
default):

* the **serial baseline** is :meth:`ScoringFunction.score_matrix`, which
  broadcasts the full ``(R, P, T)`` intermediate (~480 MB at the default
  size);
* ``workers=1`` runs the cache-blocked kernel in-process — it must match
  the baseline **bitwise** while already avoiding the giant intermediate;
* ``workers=4`` additionally shards the reviewer axis across a process
  pool.

Acceptance bar (asserted): ≥2× speedup at 4 workers over the serial
baseline, and exact equality of every parallel variant with the serial
matrix.

Set ``REPRO_BENCH_PARALLEL_REVIEWERS`` / ``REPRO_BENCH_PARALLEL_PAPERS``
/ ``REPRO_BENCH_PARALLEL_TOPICS`` to change the instance size.
"""

from __future__ import annotations

import os
import time

import numpy as np

from _shared import bench_seed, emit
from repro.core.scoring import WeightedCoverage
from repro.experiments.reporting import ExperimentTable
from repro.parallel import ParallelConfig, sharded_score_matrix


def _num_reviewers() -> int:
    return int(os.environ.get("REPRO_BENCH_PARALLEL_REVIEWERS", "2000"))


def _num_papers() -> int:
    return int(os.environ.get("REPRO_BENCH_PARALLEL_PAPERS", "1000"))


def _num_topics() -> int:
    return int(os.environ.get("REPRO_BENCH_PARALLEL_TOPICS", "30"))


def _matrices() -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(bench_seed())
    reviewers = rng.random((_num_reviewers(), _num_topics()))
    papers = rng.random((_num_papers(), _num_topics()))
    return reviewers, papers


def run_parallel_scaling() -> tuple[ExperimentTable, dict[str, bool]]:
    scoring = WeightedCoverage()
    reviewers, papers = _matrices()

    started = time.perf_counter()
    serial = scoring.score_matrix(reviewers, papers)
    serial_elapsed = time.perf_counter() - started

    exact: dict[str, bool] = {}
    table = ExperimentTable(
        title=(
            f"Sharded score-matrix construction, "
            f"R={_num_reviewers()}, P={_num_papers()}, T={_num_topics()}"
        ),
        columns=["variant", "time (s)", "speedup", "bitwise equal"],
    )
    table.add_row("serial broadcast (baseline)", serial_elapsed, 1.0, 1)

    for workers in (1, 2, 4):
        config = ParallelConfig(workers=workers, serial_threshold=0)
        started = time.perf_counter()
        matrix = sharded_score_matrix(scoring, reviewers, papers, config)
        elapsed = time.perf_counter() - started
        equal = bool(np.array_equal(matrix, serial))
        exact[f"workers={workers}"] = equal
        table.add_row(
            f"sharded, workers={workers}",
            elapsed,
            serial_elapsed / max(elapsed, 1e-9),
            int(equal),
        )
    return table, exact


def test_parallel_scaling_speedup(benchmark):
    table, exact = benchmark.pedantic(run_parallel_scaling, rounds=1, iterations=1)
    emit(table, "parallel_scaling.csv")
    assert all(exact.values()), f"parallel output diverged from serial: {exact}"
    speedups = dict(zip(table.column("variant"), table.column("speedup")))
    # The acceptance bar of the parallel execution layer: 4 workers must
    # at least halve the serial construction time at service scale.
    assert speedups["sharded, workers=4"] >= 2.0, speedups
