"""Figures 17 and 18: quality experiments on Theory 2008 and the 2009 datasets.

The paper repeats the Figure 10/11 analysis on the remaining area/year
combinations and observes "no difference to the results" of DB/DM 2008.
The bench regenerates the optimality-ratio and superiority views for
TH08, DB09, DM09 and TH09 (delta_p = 3 by default) and asserts the same
shape: SDGA-SRA on top everywhere.
"""

from __future__ import annotations

from _shared import emit, quality_run
from repro.experiments.reporting import ExperimentTable
from repro.experiments.runner import DEFAULT_CRA_METHODS

_DATASETS = ("TH08", "DB09", "DM09", "TH09")


def _collect():
    rows = []
    for dataset in _DATASETS:
        result = quality_run(dataset, 3)
        rows.append(
            (dataset, result.optimality_ratios(), result.superiority_of("SDGA-SRA"))
        )
    return rows


def test_fig17_18_other_areas_and_years(benchmark):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)

    ratio_table = ExperimentTable(
        title="Figures 17/18: optimality ratio on the remaining datasets (delta_p=3)",
        columns=["dataset", *DEFAULT_CRA_METHODS],
    )
    superiority_table = ExperimentTable(
        title="Figures 17/18: superiority of SDGA-SRA on the remaining datasets",
        columns=["dataset", "vs SM", "vs ILP", "vs BRGG", "vs Greedy"],
    )
    for dataset, ratios, superiority in rows:
        ratio_table.add_row(dataset, *[ratios[m] for m in DEFAULT_CRA_METHODS])
        superiority_table.add_row(
            dataset,
            superiority["SM"]["superiority"],
            superiority["ILP"]["superiority"],
            superiority["BRGG"]["superiority"],
            superiority["Greedy"]["superiority"],
        )
    emit(ratio_table, "fig17_18_optimality_other_datasets.csv")
    emit(superiority_table, "fig17_18_superiority_other_datasets.csv")

    for _, ratios, superiority in rows:
        assert ratios["SDGA-SRA"] >= max(ratios.values()) - 1e-9
        assert superiority["SM"]["superiority"] >= 0.5
        assert superiority["Greedy"]["superiority"] >= 0.5
