"""Ablation: what BBA's bounding and gain-ordering each contribute.

BBA stays exact when either ingredient is disabled, but the explored search
tree grows.  The bench runs the same JRA instance with all four
combinations and reports nodes expanded and wall-clock time, quantifying
the claim of Section 3 that branching prioritisation and the upper bound
are what make the exact search practical.
"""

from __future__ import annotations

from _shared import bench_seed, emit
from repro.data.workloads import make_jra_problem
from repro.experiments.reporting import ExperimentTable
from repro.jra.bba import BranchAndBoundSolver

_VARIANTS = (
    ("full BBA", True, True),
    ("no bounding", False, True),
    ("no gain ordering", True, False),
    ("plain backtracking", False, False),
)


def _run_all():
    problem = make_jra_problem(num_candidates=40, group_size=3, num_topics=30,
                               seed=bench_seed())
    rows = []
    for label, use_bound, use_ordering in _VARIANTS:
        solver = BranchAndBoundSolver(use_bound=use_bound, use_gain_ordering=use_ordering)
        result = solver.solve(problem)
        rows.append((label, result))
    return rows


def test_ablation_bba_pruning_and_ordering(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    table = ExperimentTable(
        title="Ablation: BBA bounding / gain-ordering (R=40, delta_p=3)",
        columns=["variant", "score", "nodes expanded", "prunings", "time (s)"],
    )
    for label, result in rows:
        table.add_row(label, result.score, result.stats["nodes_expanded"],
                      result.stats["prunings"], result.elapsed_seconds)
    emit(table, "ablation_bba_pruning.csv")

    results = {label: result for label, result in rows}
    full = results["full BBA"]
    # All variants are exact.
    for result in results.values():
        assert abs(result.score - full.score) < 1e-9
    # Bounding shrinks the tree dramatically.
    assert full.stats["nodes_expanded"] <= results["no bounding"].stats["nodes_expanded"]
    assert full.stats["nodes_expanded"] <= results["plain backtracking"].stats["nodes_expanded"]
