"""Figure 12: stochastic refinement vs local search over a time budget.

Both refiners start from the same SDGA assignment; the bench reports the
optimality ratio reached within increasing wall-clock budgets.  The asserted
shape is the paper's: the stochastic refinement improves over plain SDGA,
while local search quickly gets stuck at (or very near) its starting point
and never overtakes the stochastic refinement.
"""

from __future__ import annotations

import os

from _shared import emit, experiment_config
from repro.experiments.refinement import run_refinement_comparison


def _budgets() -> tuple[float, ...]:
    raw = os.environ.get("REPRO_BENCH_REFINE_BUDGETS", "1,2,4,8")
    return tuple(float(part) for part in raw.split(","))


def test_fig12_refinement_quality_vs_time(benchmark):
    table = benchmark.pedantic(
        run_refinement_comparison,
        kwargs=dict(
            dataset="DB08",
            group_size=3,
            time_budgets=_budgets(),
            config=experiment_config(),
        ),
        rounds=1,
        iterations=1,
    )
    emit(table, "fig12_refinement_vs_time.csv")

    sra = table.column("SDGA-SRA ratio")
    local_search = table.column("SDGA-LS ratio")
    base = table.column("SDGA ratio")
    # Refinement never hurts, and with the largest budget the stochastic
    # refinement is at least as good as local search (which plateaus).
    assert all(value >= base[0] - 1e-9 for value in sra)
    assert all(value >= base[0] - 1e-9 for value in local_search)
    assert sra[-1] >= local_search[-1] - 1e-6
    assert sra[-1] >= sra[0] - 1e-9
