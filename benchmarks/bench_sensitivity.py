"""Sensitivity sweeps (extensions of the paper's evaluation).

Two sweeps the paper does not report but that its motivation predicts:

* finer topic spaces and more interdisciplinary submissions should both
  *increase* the advantage of group-based assignment (SDGA-SRA) over the
  pair-based stable-matching baseline, because single reviewers can cover
  less of each paper.

The bench regenerates both sweeps and asserts the direction of that trend.
"""

from __future__ import annotations

from _shared import bench_seed, emit
from repro.experiments.runner import ExperimentConfig
from repro.experiments.sensitivity import (
    run_interdisciplinarity_sweep,
    run_topic_granularity_sweep,
)

_CONFIG = ExperimentConfig(scale=0.15, seed=bench_seed(), num_topics=30)


def test_sensitivity_topic_granularity(benchmark):
    table = benchmark.pedantic(
        run_topic_granularity_sweep,
        kwargs=dict(topic_counts=(10, 20, 40), num_papers=45, num_reviewers=15,
                    config=_CONFIG),
        rounds=1,
        iterations=1,
    )
    emit(table, "sensitivity_topic_granularity.csv")
    gaps = table.column("SDGA-SRA minus SM")
    # The group-based advantage exists at every granularity ...
    assert all(gap >= 0.0 for gap in gaps)
    # ... and does not vanish as the topic space becomes finer.
    assert gaps[-1] >= gaps[0] - 0.05


def test_sensitivity_interdisciplinarity(benchmark):
    table = benchmark.pedantic(
        run_interdisciplinarity_sweep,
        kwargs=dict(ratios_of_interdisciplinary_papers=(0.0, 0.5, 1.0),
                    num_papers=45, num_reviewers=15, config=_CONFIG),
        rounds=1,
        iterations=1,
    )
    emit(table, "sensitivity_interdisciplinarity.csv")
    gaps = table.column("SDGA-SRA minus SM")
    assert all(gap >= 0.0 for gap in gaps)
    # With only narrow papers a single good reviewer nearly suffices; with
    # many interdisciplinary papers the group matters more.
    assert gaps[-1] >= gaps[0] - 0.02
