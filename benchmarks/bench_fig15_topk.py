"""Figure 15: the effect of k on top-k BBA.

The paper reports that BBA returns the best 1000 reviewer groups within
about two seconds.  The bench sweeps k on a (scaled) candidate pool and
reports the response time and the score of the k-th best group.
"""

from __future__ import annotations

import os

from _shared import bench_seed, emit
from repro.experiments.jra_scalability import JRAScalabilityConfig, run_topk_experiment

_CONFIG = JRAScalabilityConfig(num_trials=1, num_topics=30, seed=bench_seed())


def _pool_size() -> int:
    return int(os.environ.get("REPRO_BENCH_JRA_POOL", "60"))


def test_fig15_topk_response_time(benchmark):
    table = benchmark.pedantic(
        run_topk_experiment,
        kwargs=dict(
            k_values=(1, 100, 250, 500, 1000),
            num_candidates=_pool_size(),
            group_size=3,
            config=_CONFIG,
        ),
        rounds=1,
        iterations=1,
    )
    emit(table, "fig15_topk.csv")
    best = table.column("best score")
    kth = table.column("k-th score")
    times = table.column("BBA time (s)")
    # The best group does not depend on k; the k-th best score decreases.
    assert max(best) - min(best) < 1e-9
    assert all(later <= earlier + 1e-12 for earlier, later in zip(kth, kth[1:]))
    # Larger k costs more (weaker pruning), but stays in interactive range.
    assert times[-1] >= times[0] * 0.5
