"""Figure 16: the effect of the convergence threshold omega on SRA.

Larger omega lets the stochastic refinement run longer and reach slightly
better quality at a steep cost in refinement time; the paper picks
omega = 10 as the sweet spot.  The bench regenerates the quality/time
trade-off curve.
"""

from __future__ import annotations

from _shared import emit, experiment_config
from repro.experiments.refinement import run_omega_sensitivity


def test_fig16_omega_sensitivity(benchmark):
    table = benchmark.pedantic(
        run_omega_sensitivity,
        kwargs=dict(
            dataset="DB08",
            group_size=3,
            omegas=(2, 5, 10, 20),
            config=experiment_config(),
        ),
        rounds=1,
        iterations=1,
    )
    emit(table, "fig16_omega.csv")

    ratios = table.column("optimality ratio")
    rounds = table.column("rounds")
    # More patience never reduces the best quality found, and it costs rounds.
    assert ratios[-1] >= ratios[0] - 1e-9
    assert rounds[-1] >= rounds[0]
