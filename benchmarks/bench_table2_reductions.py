"""Table 2: the RAP formulation taxonomy and the constructive reductions.

Regenerates the comparison table of Section 2.3 and times the two
constructive reductions (SGRAP topic sets -> binary-vector WGRAP, and the
block expansion that linearises the group objective for ARAP/RRAP).
"""

from __future__ import annotations

from _shared import emit
from repro.core.reductions import (
    expand_problem_for_pairwise_objective,
    formulation_table,
    sgrap_problem_from_topic_sets,
)
from repro.data.synthetic import make_problem
from repro.experiments.reporting import ExperimentTable


def test_table2_formulation_taxonomy(benchmark):
    rows = benchmark(formulation_table)
    table = ExperimentTable(
        title="Table 2: comparison of RAP formulations",
        columns=["formulation", "group size constraint", "group-based objective",
                 "objective weighting"],
    )
    for entry in rows:
        table.add_row(
            entry.name,
            "yes" if entry.group_size_constraint else "no",
            "yes" if entry.group_based_objective else "no",
            entry.objective_weighting,
        )
    emit(table, "table2_formulations.csv")


def test_table2_sgrap_reduction(benchmark):
    paper_topic_sets = {f"p{i}": {i % 10, (i + 3) % 10} for i in range(30)}
    reviewer_topic_sets = {f"r{i}": {i % 10, (i + 1) % 10, (i + 5) % 10} for i in range(15)}

    problem = benchmark(
        sgrap_problem_from_topic_sets,
        paper_topic_sets,
        reviewer_topic_sets,
        10,
        3,
    )
    table = ExperimentTable(
        title="Table 2 (reduction): SGRAP instance expressed as WGRAP",
        columns=["papers", "reviewers", "topics", "group size"],
    )
    table.add_row(problem.num_papers, problem.num_reviewers, problem.num_topics,
                  problem.group_size)
    emit(table, "table2_sgrap_reduction.csv")


def test_table2_pairwise_expansion(benchmark):
    problem = make_problem(num_papers=8, num_reviewers=6, num_topics=10, seed=1)
    expanded = benchmark(expand_problem_for_pairwise_objective, problem)
    table = ExperimentTable(
        title="Table 2 (reduction): block expansion to a per-pair objective",
        columns=["original topics", "expanded topics", "papers", "reviewers"],
    )
    table.add_row(problem.num_topics, expanded.num_topics, expanded.num_papers,
                  expanded.num_reviewers)
    emit(table, "table2_pairwise_expansion.csv")
