"""Figure 9 (+ the Section 5.1 CP comparison): JRA scalability.

Regenerates the response-time comparison of BFS, ILP and BBA as a function
of the group size (Figure 9a) and of the candidate-pool size (Figure 9b),
plus the constraint-programming comparison reported in the text.

The default sweep is smaller than the paper's (pure-Python brute force over
``C(200, 6)`` groups would run for days); the *shape* — BBA orders of
magnitude faster than ILP, which is faster than BFS, with BFS most
sensitive to ``delta_p`` — is what the bench asserts and reports.  Set
``REPRO_BENCH_JRA_POOL`` / ``REPRO_BENCH_JRA_GROUPS`` for larger sweeps.
"""

from __future__ import annotations

import os

from _shared import bench_seed, emit
from repro.experiments.jra_scalability import (
    JRAScalabilityConfig,
    run_cp_comparison,
    run_group_size_scalability,
    run_pool_size_scalability,
)

_CONFIG = JRAScalabilityConfig(
    num_trials=2, num_topics=30, seed=bench_seed(), ilp_time_limit=30.0
)


def _pool_size() -> int:
    return int(os.environ.get("REPRO_BENCH_JRA_POOL", "60"))


def _group_sizes() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_BENCH_JRA_GROUPS", "2,3,4")
    return tuple(int(part) for part in raw.split(","))


def test_fig9a_time_vs_group_size(benchmark):
    table = benchmark.pedantic(
        run_group_size_scalability,
        kwargs=dict(
            group_sizes=_group_sizes(),
            num_candidates=_pool_size(),
            methods=("BFS", "ILP", "BBA"),
            config=_CONFIG,
        ),
        rounds=1,
        iterations=1,
    )
    emit(table, "fig9a_jra_time_vs_group_size.csv")
    bfs_times = table.column("BFS time (s)")
    bba_times = table.column("BBA time (s)")
    ilp_times = table.column("ILP time (s)")
    # Shape: BBA is the fastest method at the largest group size, and BFS
    # blows up with delta_p much faster than BBA does.
    assert bba_times[-1] <= bfs_times[-1]
    assert bba_times[-1] <= ilp_times[-1]
    assert bfs_times[-1] / max(bfs_times[0], 1e-9) >= bba_times[-1] / max(bba_times[0], 1e-9)
    # All three methods are exact: identical scores everywhere.
    for bfs_score, bba_score in zip(table.column("BFS score"), table.column("BBA score")):
        assert abs(bfs_score - bba_score) < 1e-9


def test_fig9b_time_vs_pool_size(benchmark):
    pool = _pool_size()
    table = benchmark.pedantic(
        run_pool_size_scalability,
        kwargs=dict(
            pool_sizes=(pool // 2, pool, pool * 2),
            group_size=3,
            methods=("BFS", "ILP", "BBA"),
            config=_CONFIG,
        ),
        rounds=1,
        iterations=1,
    )
    emit(table, "fig9b_jra_time_vs_pool_size.csv")
    assert table.column("BBA time (s)")[-1] <= table.column("BFS time (s)")[-1]


def test_fig9_cp_solver_comparison(benchmark):
    table = benchmark.pedantic(
        run_cp_comparison,
        kwargs=dict(num_candidates=30, group_size=3, config=_CONFIG),
        rounds=1,
        iterations=1,
    )
    emit(table, "fig9_cp_comparison.csv")
    times = dict(zip(table.column("method"), table.column("time (s)")))
    scores = dict(zip(table.column("method"), table.column("score")))
    # Shape from the paper: BBA finds the optimum far faster than the CP
    # search proves it, and the CP first solution is cheap but suboptimal.
    assert times["BBA"] <= times["CP"]
    assert abs(scores["BBA"] - scores["CP"]) < 1e-9
