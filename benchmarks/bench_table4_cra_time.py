"""Table 4: response time of the approximate conference-assignment methods.

Regenerates the DB/DM 2008, delta_p in {3, 5} timing table for SM, ILP,
BRGG, Greedy, SDGA and SDGA-SRA.  Absolute numbers differ from the paper
(pure Python on scaled instances vs C++ on the full DBLP workloads); the
shape the bench asserts is the paper's: SM and Greedy are near-instant,
SDGA costs more than Greedy, and SDGA-SRA is the most expensive method.
"""

from __future__ import annotations

from _shared import bench_group_sizes, emit, quality_run
from repro.experiments.reporting import ExperimentTable
from repro.experiments.runner import DEFAULT_CRA_METHODS


def _group_sizes() -> tuple[int, ...]:
    sizes = bench_group_sizes()
    return tuple(size for size in sizes if size in (3, 5)) or (3,)


def _collect():
    rows = []
    for dataset in ("DB08", "DM08"):
        for group_size in _group_sizes():
            result = quality_run(dataset, group_size)
            rows.append((dataset, group_size, result.response_times()))
    return rows


def test_table4_response_times(benchmark):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    table = ExperimentTable(
        title="Table 4: response time (s) of the approximate methods",
        columns=["dataset", "delta_p", *DEFAULT_CRA_METHODS],
    )
    for dataset, group_size, times in rows:
        table.add_row(dataset, group_size, *[times[m] for m in DEFAULT_CRA_METHODS])
    emit(table, "table4_cra_response_time.csv")

    for _, _, times in rows:
        assert times["SDGA-SRA"] >= times["SDGA"] - 1e-9   # refinement adds cost
        assert times["SDGA-SRA"] >= times["Greedy"]        # and dominates Greedy's cost
        assert times["SM"] <= times["SDGA-SRA"]            # SM is the cheap baseline
