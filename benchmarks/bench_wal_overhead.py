"""Write-ahead-log overhead benchmark: what durability costs per mutation.

Not a figure of the paper — this bench pins the serving-cost half of the
crash-safety feature (ISSUE 8).  One engine serves a deterministic
mutation churn (``update_bids``, the lightest journaled kind, so the WAL
is the measured thing rather than solver time) through the same
journal-then-dispatch sequence the durable tenant worker runs, under
three configurations:

* ``off`` — plain :class:`~repro.service.session.EngineSession`
  dispatch, no journal: the baseline;
* ``batch`` — WAL append per mutation, one fsync per batch (the
  default serving policy);
* ``always`` — fsync after every record (the power-loss-proof policy).

Throughput (mutations/s) and the relative overhead of each policy land
in ``benchmarks/results/BENCH_wal.json`` and feed the repo-root
``BENCH.md`` trajectory.  The checkpoint cadence is part of the measured
path: every ``checkpoint_every`` mutations the engine snapshot is
rewritten atomically and the WAL rotated, exactly as in serving.

Environment knobs
-----------------
``REPRO_BENCH_WAL_MUTATIONS``
    Journaled mutations per configuration (default 2000).
``REPRO_BENCH_WAL_PAPERS`` / ``REPRO_BENCH_WAL_REVIEWERS`` /
``REPRO_BENCH_WAL_TOPICS``
    Instance size (defaults 60 / 30 / 12).
``REPRO_BENCH_WAL_BATCH``
    Mutations per simulated served batch — the ``batch`` policy fsyncs
    once per batch (default 16).
``REPRO_BENCH_WAL_CHECKPOINT_EVERY``
    Mutations between checkpoints (default 256).
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path

from _shared import bench_seed, emit_bench_json
from repro.data.synthetic import make_problem
from repro.durability import DurabilityConfig, TenantJournal
from repro.service.engine import AssignmentEngine
from repro.service.requests import request_from_dict
from repro.service.session import EngineSession


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, str(default)))


def _fresh_engine() -> AssignmentEngine:
    return AssignmentEngine(
        make_problem(
            _env_int("REPRO_BENCH_WAL_PAPERS", 60),
            _env_int("REPRO_BENCH_WAL_REVIEWERS", 30),
            num_topics=_env_int("REPRO_BENCH_WAL_TOPICS", 12),
            group_size=3,
            seed=bench_seed(),
        )
    )


def _churn_requests(engine: AssignmentEngine, mutations: int):
    """The deterministic bid-update stream, identical across policies."""
    rids = engine.problem.reviewer_ids
    pids = engine.problem.paper_ids
    requests = []
    for step in range(mutations):
        rid = rids[step % len(rids)]
        pid = pids[(step * 7) % len(pids)]
        value = 0.25 + (step % 4) * 0.25
        requests.append(
            request_from_dict(
                {"kind": "update_bids", "bids": [[rid, pid, value]], "seq": step + 1}
            )
        )
    return requests


def _run_policy(policy: str, mutations: int, batch: int, checkpoint_every: int) -> dict:
    """Serve the churn under one policy; returns timing and counters."""
    engine = _fresh_engine()
    session = EngineSession(engine)
    requests = _churn_requests(engine, mutations)

    if policy == "off":
        start = time.perf_counter()
        for request in requests:
            response = session.dispatch(request)
            assert response.ok, response.error
        elapsed = time.perf_counter() - start
        checkpoints = 0
    else:
        with tempfile.TemporaryDirectory(prefix="bench-wal-") as root:
            config = DurabilityConfig(
                root=Path(root),
                fsync=policy,
                checkpoint_every=checkpoint_every,
            )
            journal = TenantJournal(config, "bench")
            journal.initialise(engine)
            checkpoints = 0
            start = time.perf_counter()
            for index, request in enumerate(requests, start=1):
                # The durable worker's sequence: journal first, then apply.
                journal.append(index, request)
                response = session.dispatch(request)
                assert response.ok, response.error
                journal.record_applied(request.client_seq, response)
                if index % batch == 0:
                    journal.sync_batch()
                if journal.should_checkpoint:
                    journal.checkpoint(engine)
                    checkpoints += 1
            elapsed = time.perf_counter() - start
            journal.close()

    return {
        "policy": policy,
        "mutations": mutations,
        "seconds": elapsed,
        "mutations_per_second": mutations / elapsed if elapsed > 0 else None,
        "checkpoints": checkpoints,
    }


def run_wal_overhead() -> dict:
    mutations = _env_int("REPRO_BENCH_WAL_MUTATIONS", 2000)
    batch = max(1, _env_int("REPRO_BENCH_WAL_BATCH", 16))
    checkpoint_every = max(1, _env_int("REPRO_BENCH_WAL_CHECKPOINT_EVERY", 256))

    runs = {
        policy: _run_policy(policy, mutations, batch, checkpoint_every)
        for policy in ("off", "batch", "always")
    }
    baseline = runs["off"]["seconds"]
    for run in runs.values():
        run["overhead_vs_off"] = (
            run["seconds"] / baseline - 1.0 if baseline > 0 else None
        )
    return {
        "instance": {
            "mutations": mutations,
            "batch": batch,
            "checkpoint_every": checkpoint_every,
            "papers": _env_int("REPRO_BENCH_WAL_PAPERS", 60),
            "reviewers": _env_int("REPRO_BENCH_WAL_REVIEWERS", 30),
            "topics": _env_int("REPRO_BENCH_WAL_TOPICS", 12),
            "seed": bench_seed(),
        },
        "runs": runs,
    }


def test_wal_overhead(benchmark):
    verdict = benchmark.pedantic(run_wal_overhead, rounds=1, iterations=1)
    emit_bench_json(verdict, "BENCH_wal.json")
    runs = verdict["runs"]
    for policy in ("off", "batch", "always"):
        run = runs[policy]
        assert run["mutations"] == verdict["instance"]["mutations"]
        assert run["seconds"] > 0
    # Both journaled policies actually checkpointed along the way.
    assert runs["batch"]["checkpoints"] >= 1
    assert runs["always"]["checkpoints"] >= 1

    per_second = {p: round(r["mutations_per_second"]) for p, r in runs.items()}
    overhead = {p: f"{r['overhead_vs_off'] * 100:+.1f}%" for p, r in runs.items()}
    print(f"\nmutations/s: {per_second}")
    print(f"overhead vs off: {overhead}")
