"""Network serving load benchmark: the ``repro.net`` TCP front end.

Not a figure of the paper — this bench pins the acceptance bar of the
multi-tenant asyncio server (ISSUE 7): an in-process
:class:`~repro.net.AssignmentServer` hosting warm
:class:`~repro.service.engine.AssignmentEngine` tenants is driven by
thousands of concurrent **closed-loop** clients (each keeps exactly one
request in flight) through :func:`repro.net.client.run_load`.  The
request mix is the read-heavy serving profile: journal queries against
the maintained score cache, engine stats and assignment evaluations,
fanned across the resident tenants.

Asserted invariants (CI runs this at smoke scale on every push):

* **zero failed requests** — every request is answered ``ok: true``;
  the admission bound is sized to the client count, so a refusal, a
  transport error or a connect failure is a server bug, not load
  shedding;
* every client completes its full script (``requests == clients *
  requests_per_client``).

Throughput (req/s) and latency percentiles (p50/p95/p99) land in
``benchmarks/results/BENCH_serve.json`` and feed the repo-root
``BENCH.md`` trajectory.

Environment knobs
-----------------
``REPRO_BENCH_SERVE_CLIENTS``
    Concurrent closed-loop clients (default 1000 — the headline scale;
    CI smoke uses a few dozen).
``REPRO_BENCH_SERVE_REQUESTS``
    Requests per client (default 5).
``REPRO_BENCH_SERVE_TENANTS``
    Resident engines, round-robined by the clients (default 2).
``REPRO_BENCH_SERVE_PAPERS`` / ``REPRO_BENCH_SERVE_REVIEWERS`` /
``REPRO_BENCH_SERVE_TOPICS``
    Per-tenant instance size (defaults 150 / 60 / 20).
``REPRO_BENCH_SERVE_MAX_PENDING``
    Per-tenant admission bound (default: the client count, so a
    full-thundering-herd arrival is admitted rather than shed).
``REPRO_BENCH_SERVE_JOURNAL_SPREAD``
    Distinct journal-query targets per tenant (default 16; each costs
    one cold JRA solve, then serves from the journal cache).
"""

from __future__ import annotations

import asyncio
import os

from _shared import bench_seed, emit_bench_json
from repro.data.synthetic import make_problem
from repro.net import AdmissionController, AssignmentServer
from repro.net.client import run_load
from repro.service.engine import AssignmentEngine


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, str(default)))


def _raise_fd_limit(need: int) -> None:
    """Best-effort RLIMIT_NOFILE bump — thousands of sockets need fds."""
    try:
        import resource

        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        if soft < need:
            resource.setrlimit(resource.RLIMIT_NOFILE, (min(need, hard), hard))
    except Exception:
        pass


def _request_mix(num_tenants: int, journal_spread: int):
    """The read-heavy serving profile, deterministic per (client, step).

    Journal queries rotate over ``journal_spread`` distinct papers per
    tenant: the first hit on each is a cold JRA solve, the rest are
    journal-cache hits — so the measured steady state is the network
    layer's throughput, not the solver's cold-start latency.
    """

    def factory(client: int, step: int) -> dict:
        tenant = f"conf-{client % num_tenants}"
        draw = (client * 31 + step * 7) % 10
        if draw < 6:
            return {
                "kind": "journal",
                "paper_id": f"paper-{(client + step) % journal_spread:04d}",
                "tenant": tenant,
                "id": f"c{client}-r{step}",
            }
        if draw < 9:
            return {"kind": "stats", "tenant": tenant, "id": f"c{client}-r{step}"}
        # include_ratio=False: the ratio re-solves every paper exactly —
        # a batch-analysis knob, not a serving-path request
        return {
            "kind": "evaluate",
            "include_ratio": False,
            "tenant": tenant,
            "id": f"c{client}-r{step}",
        }

    return factory


def run_serve_load() -> dict:
    clients = _env_int("REPRO_BENCH_SERVE_CLIENTS", 1000)
    requests_per_client = _env_int("REPRO_BENCH_SERVE_REQUESTS", 5)
    num_tenants = max(1, _env_int("REPRO_BENCH_SERVE_TENANTS", 2))
    num_papers = _env_int("REPRO_BENCH_SERVE_PAPERS", 150)
    num_reviewers = _env_int("REPRO_BENCH_SERVE_REVIEWERS", 60)
    num_topics = _env_int("REPRO_BENCH_SERVE_TOPICS", 20)
    max_pending = _env_int("REPRO_BENCH_SERVE_MAX_PENDING", max(256, clients))
    journal_spread = min(
        num_papers, max(1, _env_int("REPRO_BENCH_SERVE_JOURNAL_SPREAD", 16))
    )
    _raise_fd_limit(2 * clients + 512)

    server = AssignmentServer(
        admission=AdmissionController(max_pending=max_pending),
        backlog=max(2048, clients),
    )
    for index in range(num_tenants):
        engine = AssignmentEngine(
            make_problem(
                num_papers,
                num_reviewers,
                num_topics=num_topics,
                group_size=3,
                seed=bench_seed() + index,
            )
        )
        engine.warm()
        engine.solve("Greedy")  # evaluate/journal read a live assignment
        server.add_tenant(f"conf-{index}", engine, default=(index == 0))

    async def _drive():
        host, port = await server.start()
        try:
            return await run_load(
                host,
                port,
                clients=clients,
                requests_per_client=requests_per_client,
                request_factory=_request_mix(num_tenants, journal_spread),
            )
        finally:
            await server.stop()

    report = asyncio.run(_drive())
    return {
        "instance": {
            "clients": clients,
            "requests_per_client": requests_per_client,
            "tenants": num_tenants,
            "papers": num_papers,
            "reviewers": num_reviewers,
            "topics": num_topics,
            "max_pending": max_pending,
            "journal_spread": journal_spread,
            "seed": bench_seed(),
        },
        "report": report.to_dict(),
    }


def test_serve_load(benchmark):
    verdict = benchmark.pedantic(run_serve_load, rounds=1, iterations=1)
    emit_bench_json(verdict, "BENCH_serve.json")
    report = verdict["report"]
    expected = (
        verdict["instance"]["clients"] * verdict["instance"]["requests_per_client"]
    )
    assert report["connect_failures"] == 0, report
    assert report["failed"] == 0, report
    assert report["requests"] == expected, report
    assert report["ok"] == expected, report
