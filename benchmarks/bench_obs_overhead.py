"""Observability-overhead benchmark: the disabled tracer must be free.

The ``repro.obs`` span tracer is threaded through every solver hot loop
(greedy selection, local-search rounds, SDGA stages, SRA rounds, BBA
expansion) and through the engine/service layers.  Recording is off by
default, and the no-op fast path is guarded by a single attribute check
(``tracer.enabled``) that returns a shared no-op span.  This bench pins
that guarantee on the repo's headline workload — the dense
Greedy + LocalSearch pipeline at service scale (2000 reviewers × 1000
papers × 30 topics by default): with observability **disabled**, the
instrumented pipeline must run within ``REPRO_BENCH_OBS_MAX_OVERHEAD``
(default 2%) of an uninstrumented baseline.

The baseline is produced by swapping the module-level ``TRACER`` of every
instrumented module for an inert stub whose ``span()`` returns the shared
no-op span unconditionally — the closest runnable stand-in for "the
``with`` blocks are not there": it removes the enabled check and the
registry dispatch while keeping the context-manager protocol, which is
compiled into the functions and cannot be patched out.  Shipped and
baseline runs are interleaved and the minimum of ``REPRO_BENCH_OBS_REPEATS``
repeats is compared, so one scheduler hiccup cannot fail the gate.

Environment knobs
-----------------
``REPRO_BENCH_OBS_REVIEWERS`` / ``REPRO_BENCH_OBS_PAPERS`` /
``REPRO_BENCH_OBS_TOPICS`` / ``REPRO_BENCH_OBS_GROUP_SIZE``
    Instance size (defaults 2000 / 1000 / 30 / 3).  CI smoke runs scale
    these down.
``REPRO_BENCH_OBS_REPEATS``
    Interleaved repeats per variant (default 3; min-of-N is compared).
``REPRO_BENCH_OBS_MAX_OVERHEAD``
    Failure threshold as a fraction (default 0.02 = 2%).
"""

from __future__ import annotations

import gc
import os
import time

import numpy as np

from _shared import bench_seed, emit_bench_json
from repro.core.entities import Paper, Reviewer
from repro.core.problem import WGRAPProblem
from repro.core.vectors import TopicVector
from repro.cra.greedy import GreedySolver
from repro.cra.local_search import LocalSearchRefiner
from repro.obs.trace import NOOP_SPAN, get_tracer

#: Every module holding a module-level ``TRACER`` used on a solver,
#: engine or parallel hot path.  (``repro.core.problem`` resolves the
#: tracer inline on its cold recompile branch only, so it is exempt.)
_INSTRUMENTED_MODULES = (
    "repro.cra.base",
    "repro.cra.greedy",
    "repro.cra.local_search",
    "repro.cra.sdga",
    "repro.cra.sra",
    "repro.jra.base",
    "repro.jra.bba",
    "repro.core.delta",
    "repro.service.cache",
    "repro.service.engine",
    "repro.service.session",
    "repro.parallel.sharding",
    "repro.parallel.portfolio",
)


class _InertTracer:
    """Stand-in for an uninstrumented build: ``span()`` is a constant."""

    enabled = False

    def span(self, name, trace_id=None, **attrs):
        return NOOP_SPAN


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, str(default)))


def _instance_shape() -> tuple[int, int, int, int]:
    return (
        _env_int("REPRO_BENCH_OBS_REVIEWERS", 2000),
        _env_int("REPRO_BENCH_OBS_PAPERS", 1000),
        _env_int("REPRO_BENCH_OBS_TOPICS", 30),
        _env_int("REPRO_BENCH_OBS_GROUP_SIZE", 3),
    )


def _repeats() -> int:
    return _env_int("REPRO_BENCH_OBS_REPEATS", 3)


def _max_overhead() -> float:
    return float(os.environ.get("REPRO_BENCH_OBS_MAX_OVERHEAD", "0.02"))


def _make_entities(
    num_reviewers: int, num_papers: int, num_topics: int
) -> tuple[list[Paper], list[Reviewer]]:
    rng = np.random.default_rng(bench_seed())
    reviewer_matrix = rng.random((num_reviewers, num_topics))
    paper_matrix = rng.random((num_papers, num_topics))
    reviewers = [
        Reviewer(id=f"reviewer-{index:05d}", vector=TopicVector(reviewer_matrix[index]))
        for index in range(num_reviewers)
    ]
    papers = [
        Paper(id=f"paper-{index:05d}", vector=TopicVector(paper_matrix[index]))
        for index in range(num_papers)
    ]
    return papers, reviewers


def _swap_tracers(tracer) -> dict[str, object]:
    import importlib

    previous: dict[str, object] = {}
    for name in _INSTRUMENTED_MODULES:
        module = importlib.import_module(name)
        previous[name] = module.TRACER
        module.TRACER = tracer
    return previous


def _restore_tracers(previous: dict[str, object]) -> None:
    import importlib

    for name, tracer in previous.items():
        importlib.import_module(name).TRACER = tracer


def _run_headline(
    papers: list[Paper], reviewers: list[Reviewer], group_size: int
) -> float:
    problem = WGRAPProblem(papers=papers, reviewers=reviewers, group_size=group_size)
    # Collect before and freeze collection during the timed region so a
    # generational sweep landing in one variant cannot skew the ratio.
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        started = time.perf_counter()
        greedy = GreedySolver(use_dense=True).solve(problem)
        refiner = LocalSearchRefiner(max_rounds=1, moves="replace", use_dense=True)
        refiner.refine(problem, greedy.assignment)
        return time.perf_counter() - started
    finally:
        if gc_was_enabled:
            gc.enable()


def run_obs_overhead() -> dict:
    num_reviewers, num_papers, num_topics, group_size = _instance_shape()
    papers, reviewers = _make_entities(num_reviewers, num_papers, num_topics)

    tracer = get_tracer()
    was_enabled = tracer.enabled
    tracer.enabled = False  # the gate pins the *disabled* path
    inert = _InertTracer()

    shipped_times: list[float] = []
    baseline_times: list[float] = []
    try:
        # One untimed warm-up per variant pays import/JIT-cache costs.
        _run_headline(papers, reviewers, group_size)
        for _ in range(_repeats()):
            shipped_times.append(_run_headline(papers, reviewers, group_size))
            previous = _swap_tracers(inert)
            try:
                baseline_times.append(_run_headline(papers, reviewers, group_size))
            finally:
                _restore_tracers(previous)
    finally:
        tracer.enabled = was_enabled

    shipped = min(shipped_times)
    baseline = min(baseline_times)
    overhead = shipped / max(baseline, 1e-9) - 1.0
    return {
        "instance": {
            "reviewers": num_reviewers,
            "papers": num_papers,
            "topics": num_topics,
            "group_size": group_size,
            "seed": bench_seed(),
        },
        "repeats": _repeats(),
        "shipped_disabled_seconds": shipped,
        "baseline_inert_seconds": baseline,
        "shipped_samples": shipped_times,
        "baseline_samples": baseline_times,
        "overhead_fraction": overhead,
        "max_overhead_fraction": _max_overhead(),
    }


def test_disabled_observability_overhead(benchmark):
    verdict = benchmark.pedantic(run_obs_overhead, rounds=1, iterations=1)
    emit_bench_json(verdict, "BENCH_obs.json")
    print(
        f"disabled-path overhead: {verdict['overhead_fraction'] * 100.0:+.2f}% "
        f"(gate {verdict['max_overhead_fraction'] * 100.0:.0f}%)"
    )
    assert verdict["overhead_fraction"] < verdict["max_overhead_fraction"], verdict
