"""Ablation: Hungarian vs. min-cost-flow backend for the SDGA stages.

Both backends solve every Stage-WGRAP step exactly, so SDGA's result is
identical; what differs is the running time of the per-stage assignment.
The bench measures full SDGA runs under each backend.
"""

from __future__ import annotations

import time

from _shared import emit, experiment_config
from repro.cra.sdga import StageDeepeningGreedySolver
from repro.experiments.cra_quality import build_dataset_problem
from repro.experiments.reporting import ExperimentTable


def test_ablation_stage_assignment_backend(benchmark):
    # A deliberately smaller instance: the flow backend is pure Python and
    # quadratic in the number of pairs.
    config = experiment_config()
    problem = build_dataset_problem("DM08", group_size=3, config=config)

    hungarian_result = benchmark.pedantic(
        lambda: StageDeepeningGreedySolver(backend="hungarian").solve(problem),
        rounds=3,
        iterations=1,
    )
    flow_started = time.perf_counter()
    flow_result = StageDeepeningGreedySolver(backend="flow").solve(problem)
    flow_elapsed = time.perf_counter() - flow_started

    table = ExperimentTable(
        title="Ablation: SDGA stage-assignment backend",
        columns=["backend", "coverage score", "time (s)"],
    )
    table.add_row("hungarian", hungarian_result.score, hungarian_result.elapsed_seconds)
    table.add_row("min-cost flow", flow_result.score, flow_elapsed)
    emit(table, "ablation_assignment_backend.csv")

    assert abs(hungarian_result.score - flow_result.score) < 1e-9
