"""Dense-kernel benchmark: index-space solvers vs the object path.

Not a figure of the paper — this bench pins the acceptance bar of the
``repro.core.dense`` compilation: the end-to-end **Greedy + LocalSearch**
pipeline on a service-scale synthetic instance (2000 reviewers × 1000
papers × 30 topics, ``delta_p = 3`` by default) must be **≥5× faster** on
the dense kernels than on the historical object path, with
result preservation asserted bitwise:

* **local search** — the dense refiner is run a second time *from the
  object greedy's assignment*, and must reproduce the object refiner's
  moves exactly: identical refined assignment, bitwise-equal final score;
* **greedy** — the dense solver realises the *true-argmax* (naive)
  selection, pinned bitwise against the naive full re-scan on a
  scaled-down instance inside the same run (the re-scan evaluates every
  open paper's gains each iteration — bitwise the pre-refactor per-pair
  staging, per the kernel tests — and is computationally out of reach at
  full scale; that is the point of the dense kernels).

The full-scale baseline greedy is the historical lazy heap.  The heap
selects on *recorded* gains refreshed only when popped; floating-point
rounding can leave a stale record an ulp below the true current gain, so
in near-tie regimes its pick can deviate from the true argmax — at
service scale it reliably does, which is why full-scale greedy
equivalence is pinned against the naive selection (the semantics the heap
itself was always documented to realise), not against the heap's
tie-order artifacts.  The JSON verdict records both greedy scores so the
drift stays visible.

Results are printed as a table, persisted as CSV, and recorded as the
machine-readable ``benchmarks/results/BENCH_dense.json`` that feeds the
repo-root ``BENCH.md`` trajectory.

Environment knobs
-----------------
``REPRO_BENCH_DENSE_REVIEWERS`` / ``REPRO_BENCH_DENSE_PAPERS`` /
``REPRO_BENCH_DENSE_TOPICS`` / ``REPRO_BENCH_DENSE_GROUP_SIZE``
    Instance size (defaults 2000 / 1000 / 30 / 3).
``REPRO_BENCH_DENSE_LS_ROUNDS``
    Local-search rounds in both pipelines (default 1; replace moves, so
    the object baseline stays measurable — dense/object equivalence of
    every move kind is additionally pinned by the test suite).
``REPRO_BENCH_DENSE_MIN_SPEEDUP``
    Asserted end-to-end speedup (default 5.0; CI relaxes this to a smoke
    threshold on a scaled-down instance).
"""

from __future__ import annotations

import os
import time

import numpy as np

from _shared import bench_seed, emit, emit_bench_json
from repro.core.entities import Paper, Reviewer
from repro.core.problem import WGRAPProblem
from repro.core.vectors import TopicVector
from repro.cra.greedy import GreedySolver
from repro.cra.local_search import LocalSearchRefiner
from repro.experiments.reporting import ExperimentTable


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, str(default)))


def _instance_shape() -> tuple[int, int, int, int]:
    return (
        _env_int("REPRO_BENCH_DENSE_REVIEWERS", 2000),
        _env_int("REPRO_BENCH_DENSE_PAPERS", 1000),
        _env_int("REPRO_BENCH_DENSE_TOPICS", 30),
        _env_int("REPRO_BENCH_DENSE_GROUP_SIZE", 3),
    )


def _ls_rounds() -> int:
    return _env_int("REPRO_BENCH_DENSE_LS_ROUNDS", 1)


def _min_speedup() -> float:
    return float(os.environ.get("REPRO_BENCH_DENSE_MIN_SPEEDUP", "5.0"))


def _make_entities(
    num_reviewers: int, num_papers: int, num_topics: int
) -> tuple[list[Paper], list[Reviewer]]:
    rng = np.random.default_rng(bench_seed())
    reviewer_matrix = rng.random((num_reviewers, num_topics))
    paper_matrix = rng.random((num_papers, num_topics))
    reviewers = [
        Reviewer(id=f"reviewer-{index:05d}", vector=TopicVector(reviewer_matrix[index]))
        for index in range(num_reviewers)
    ]
    papers = [
        Paper(id=f"paper-{index:05d}", vector=TopicVector(paper_matrix[index]))
        for index in range(num_papers)
    ]
    return papers, reviewers


def _fresh_problem(
    papers: list[Paper], reviewers: list[Reviewer], group_size: int
) -> WGRAPProblem:
    """A new problem instance (no shared caches between pipelines)."""
    return WGRAPProblem(papers=papers, reviewers=reviewers, group_size=group_size)


def _refiner(use_dense: bool) -> LocalSearchRefiner:
    return LocalSearchRefiner(
        max_rounds=_ls_rounds(), moves="replace", use_dense=use_dense
    )


def _smoke_greedy_matches_naive() -> bool:
    """Pin dense greedy == object naive selection at a computable scale."""
    papers, reviewers = _make_entities(300, 150, _instance_shape()[2])
    dense = GreedySolver(use_dense=True).solve(_fresh_problem(papers, reviewers, 3))
    naive = GreedySolver(use_lazy_heap=False).solve(
        _fresh_problem(papers, reviewers, 3)
    )
    return dense.assignment == naive.assignment and dense.score == naive.score


def run_dense_kernels() -> tuple[ExperimentTable, dict]:
    num_reviewers, num_papers, num_topics, group_size = _instance_shape()
    papers, reviewers = _make_entities(num_reviewers, num_papers, num_topics)

    # Dense pipeline (the contender).
    dense_problem = _fresh_problem(papers, reviewers, group_size)
    started = time.perf_counter()
    dense_greedy = GreedySolver(use_dense=True).solve(dense_problem)
    dense_greedy_elapsed = time.perf_counter() - started
    started = time.perf_counter()
    _, dense_stats = _refiner(True).refine(dense_problem, dense_greedy.assignment)
    dense_refine_elapsed = time.perf_counter() - started
    dense_total = dense_greedy_elapsed + dense_refine_elapsed

    # Object pipeline (the historical baseline).
    object_problem = _fresh_problem(papers, reviewers, group_size)
    started = time.perf_counter()
    object_greedy = GreedySolver(use_dense=False).solve(object_problem)
    object_greedy_elapsed = time.perf_counter() - started
    started = time.perf_counter()
    object_refined, object_stats = _refiner(False).refine(
        object_problem, object_greedy.assignment
    )
    object_refine_elapsed = time.perf_counter() - started
    object_total = object_greedy_elapsed + object_refine_elapsed

    # Result preservation, asserted bitwise where it is well-defined:
    # the dense refiner re-run from the *object* greedy's assignment must
    # reproduce the object refiner exactly.
    check_refined, check_stats = _refiner(True).refine(
        dense_problem, object_greedy.assignment
    )
    ls_identical = check_refined == object_refined
    ls_scores_bitwise = check_stats["final_score"] == object_stats["final_score"]
    greedy_matches_naive = _smoke_greedy_matches_naive()

    speedup = object_total / max(dense_total, 1e-9)

    table = ExperimentTable(
        title=(
            f"Dense solver kernels, R={num_reviewers}, P={num_papers}, "
            f"T={num_topics}, delta_p={group_size}, "
            f"LS=replace x{_ls_rounds()} round(s)"
        ),
        columns=[
            "pipeline",
            "greedy (s)",
            "local search (s)",
            "total (s)",
            "speedup",
            "final score",
        ],
    )
    table.add_row(
        "object path (baseline)",
        object_greedy_elapsed,
        object_refine_elapsed,
        object_total,
        1.0,
        object_stats["final_score"],
    )
    table.add_row(
        "dense kernels",
        dense_greedy_elapsed,
        dense_refine_elapsed,
        dense_total,
        speedup,
        dense_stats["final_score"],
    )

    verdict = {
        "instance": {
            "reviewers": num_reviewers,
            "papers": num_papers,
            "topics": num_topics,
            "group_size": group_size,
            "ls_rounds": _ls_rounds(),
            "ls_moves": "replace",
            "seed": bench_seed(),
        },
        "object_seconds": object_total,
        "object_greedy_seconds": object_greedy_elapsed,
        "object_refine_seconds": object_refine_elapsed,
        "dense_seconds": dense_total,
        "dense_greedy_seconds": dense_greedy_elapsed,
        "dense_refine_seconds": dense_refine_elapsed,
        "speedup": speedup,
        "min_speedup": _min_speedup(),
        "ls_identical_assignment": ls_identical,
        "ls_bitwise_equal_score": ls_scores_bitwise,
        "greedy_matches_naive_selection": greedy_matches_naive,
        "dense_final_score": dense_stats["final_score"],
        "object_final_score": object_stats["final_score"],
        "dense_greedy_score": dense_greedy.score,
        "object_greedy_score": object_greedy.score,
        "moves_applied": dense_stats["moves_applied"],
    }
    return table, verdict


def test_dense_kernel_speedup(benchmark):
    table, verdict = benchmark.pedantic(run_dense_kernels, rounds=1, iterations=1)
    emit(table, "dense_kernels.csv")
    emit_bench_json(verdict, "BENCH_dense.json")
    assert verdict["ls_identical_assignment"], (
        "dense local search diverged from the object path on identical input"
    )
    assert verdict["ls_bitwise_equal_score"], (
        "local-search final scores are not bitwise equal"
    )
    assert verdict["greedy_matches_naive_selection"], (
        "dense greedy diverged from the true-argmax (naive) selection"
    )
    assert verdict["speedup"] >= verdict["min_speedup"], verdict
