"""Figures 19-20 / Tables 8-9: per-paper case studies.

The paper zooms in on two interdisciplinary submissions and shows, topic by
topic, how much of the paper each method's reviewer group covers, plus the
assigned reviewers and the keywords of the dominant topics.  The bench
regenerates that analysis for the two most interdisciplinary papers of a
synthetic Databases 2008 instance and asserts the paper's conclusion:
SDGA-SRA achieves the best per-paper coverage of the compared methods.
"""

from __future__ import annotations

from _shared import emit, experiment_config
from repro.experiments.case_study import pick_interdisciplinary_paper, run_case_study
from repro.experiments.cra_quality import build_dataset_problem
from repro.experiments.reporting import ExperimentTable

_METHODS = ("ILP", "BRGG", "Greedy", "SDGA-SRA")


def _run_both_case_studies():
    config = experiment_config()
    problem = build_dataset_problem("DB08", group_size=3, config=config)
    first_paper = pick_interdisciplinary_paper(problem)
    studies = [
        run_case_study(methods=_METHODS, paper_id=first_paper, config=config,
                       problem=problem)
    ]
    # Second case study: the most interdisciplinary of the remaining papers.
    remaining = [paper for paper in problem.papers if paper.id != first_paper]
    second_paper = max(
        remaining,
        key=lambda paper: sum(1 for weight in paper.vector if weight > 0.05),
    )
    studies.append(
        run_case_study(methods=_METHODS, paper_id=second_paper.id, config=config,
                       problem=problem)
    )
    return studies


def test_fig19_20_case_studies(benchmark):
    studies = benchmark.pedantic(_run_both_case_studies, rounds=1, iterations=1)

    for index, study in enumerate(studies, start=19):
        emit(study.to_table(), f"fig{index}_case_study_topics.csv")
        emit(study.reviewer_table(), f"fig{index}_case_study_reviewers.csv")

    summary = ExperimentTable(
        title="Case studies: per-paper coverage score by method",
        columns=["case study", *list(_METHODS)],
    )
    for index, study in enumerate(studies, start=1):
        scores = study.scores()
        summary.add_row(f"case {index} ({study.paper_id})",
                        *[scores[m] for m in _METHODS])
    emit(summary, "fig19_20_case_study_scores.csv")

    for study in studies:
        scores = study.scores()
        others = [value for method, value in scores.items() if method != "SDGA-SRA"]
        # Paper shape: the proposed method covers the highlighted paper at
        # least as well as the typical competitor (it wins outright in both
        # of the paper's case studies; a single synthetic paper is noisier,
        # so the assertion compares against the competitors' average).
        assert scores["SDGA-SRA"] >= sum(others) / len(others) - 0.05
