"""Replication overhead benchmark: what a warm standby costs the primary.

Not a figure of the paper — this bench pins the serving-cost half of the
warm-standby feature (ISSUE 9).  The same deterministic ``update_bids``
churn (the lightest journaled kind, so the replication machinery is the
measured thing rather than solver time) is driven over TCP against a
durable :class:`~repro.net.AssignmentServer` in two configurations:

* ``wal`` — durable server, no standby: the baseline (the cost of
  durability itself is measured by ``bench_wal_overhead.py``);
* ``repl`` — the same server shipping its WAL to a live warm standby
  running as a **separate process** (``wgrap serve --standby-of``, the
  deployment topology — a same-process standby would share the GIL and
  charge the standby's replay+fsync work to the primary's clock),
  standby journaling and replaying every record before acking.

Shipping rides ``TenantJournal.on_append`` *after* local durability and
is acked asynchronously, so replication never blocks a client response
on the standby — but the sender's frame serialisation, socket writes
and ack handling still run inside the primary process, and that is the
cost this bench measures: the headline number is the relative overhead
of ``repl`` vs ``wal``.  The bench also reports the
**drain lag** (time from the last answered mutation until the sender is
fully caught up and acked) and the **promotion latency** (the
``promote`` round-trip that turns the standby into a serving primary),
plus the replication counter deltas (shipped/applied/heartbeats/...).

Everything lands in ``benchmarks/results/BENCH_repl.json`` and feeds
the repo-root ``BENCH.md`` trajectory.  Absolute numbers are
machine-bound and reported, not gated; the asserted invariants — every
mutation answered ``ok``, the standby fully caught up, promotion
serving the replicated tenant — are never relaxed.

Environment knobs
-----------------
``REPRO_BENCH_REPL_MUTATIONS``
    Journaled mutations per configuration (default 1500).
``REPRO_BENCH_REPL_PIPELINE``
    Requests kept in flight on the driving connection (default 32).
``REPRO_BENCH_REPL_PAPERS`` / ``REPRO_BENCH_REPL_REVIEWERS`` /
``REPRO_BENCH_REPL_TOPICS``
    Instance size (defaults 60 / 30 / 12, as in the WAL bench).
``REPRO_BENCH_REPL_CHECKPOINT_EVERY``
    Mutations between checkpoints (default 256).
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from _shared import bench_seed, emit_bench_json
from repro.data.synthetic import make_problem
from repro.durability import DurabilityConfig
from repro.net import AssignmentServer
from repro.obs.metrics import get_registry
from repro.service.engine import AssignmentEngine

#: Primary-side counters (the standby keeps its own registry in its own
#: process; its progress is asserted over the wire instead).
_COUNTERS = (
    "replication.shipped",
    "replication.snapshots",
    "replication.resyncs",
    "replication.heartbeats",
    "replication.reconnects",
)


def _spawn_standby(root: Path) -> tuple[subprocess.Popen, str, int]:
    """A real ``wgrap serve --standby-of`` process; returns its address."""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", "--tcp", "--port", "0",
            "--wal-dir", str(root),
            # The primary dials us; the flag's address is informational.
            "--standby-of", "127.0.0.1:1",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    box: list[str] = []
    reader = threading.Thread(
        target=lambda: box.append(proc.stdout.readline()), daemon=True
    )
    reader.start()
    reader.join(timeout=60.0)
    if reader.is_alive() or not box or not box[0]:
        proc.kill()
        raise TimeoutError("standby subprocess produced no listening line")
    info = json.loads(box[0])
    assert info["event"] == "listening" and info["role"] == "standby", info
    return proc, info["host"], info["port"]


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, str(default)))


def _fresh_engine() -> AssignmentEngine:
    return AssignmentEngine(
        make_problem(
            _env_int("REPRO_BENCH_REPL_PAPERS", 60),
            _env_int("REPRO_BENCH_REPL_REVIEWERS", 30),
            num_topics=_env_int("REPRO_BENCH_REPL_TOPICS", 12),
            group_size=3,
            seed=bench_seed(),
        )
    )


def _churn_payloads(engine: AssignmentEngine, mutations: int) -> list[dict]:
    """The deterministic bid-update stream, identical across runs."""
    rids = engine.problem.reviewer_ids
    pids = engine.problem.paper_ids
    payloads = []
    for step in range(mutations):
        rid = rids[step % len(rids)]
        pid = pids[(step * 7) % len(pids)]
        value = 0.25 + (step % 4) * 0.25
        payloads.append(
            {"kind": "update_bids", "bids": [[rid, pid, value]], "seq": step + 1}
        )
    return payloads


async def _call(host: str, port: int, payload: dict) -> dict:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await writer.drain()
        return json.loads(await reader.readline())
    finally:
        writer.close()


async def _drive_churn(
    host: str, port: int, payloads: list[dict], pipeline: int
) -> float:
    """Send the churn with ``pipeline`` requests in flight; all must be ok."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        start = time.perf_counter()
        for base in range(0, len(payloads), pipeline):
            chunk = payloads[base : base + pipeline]
            for payload in chunk:
                writer.write(json.dumps(payload).encode("utf-8") + b"\n")
            await writer.drain()
            for _ in chunk:
                response = json.loads(await reader.readline())
                assert response["ok"], response
        return time.perf_counter() - start
    finally:
        writer.close()


async def _wait_caught_up(host: str, port: int, timeout: float = 60.0) -> float:
    """Seconds until the primary's sender reports fully acked."""
    start = time.perf_counter()
    deadline = start + timeout
    while True:
        status = await _call(host, port, {"kind": "replication_status"})
        assert status["ok"], status
        if status["payload"]["replication"]["caught_up"]:
            return time.perf_counter() - start
        if time.perf_counter() > deadline:
            raise TimeoutError(f"standby never caught up: {status}")
        await asyncio.sleep(0.01)


async def _run_config(
    replicated: bool, payloads: list[dict], pipeline: int, checkpoint_every: int
) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-repl-") as root:
        standby_proc = None
        standby_addr = None
        if replicated:
            standby_proc, standby_host, standby_port = _spawn_standby(
                Path(root) / "standby"
            )
            standby_addr = (standby_host, standby_port)
        primary = AssignmentServer(
            durability=DurabilityConfig(
                root=Path(root) / "primary", checkpoint_every=checkpoint_every
            ),
            replicate_to=standby_addr,
        )
        primary.add_tenant("bench", _fresh_engine(), default=True)
        host, port = await primary.start()
        try:
            seconds = await _drive_churn(host, port, payloads, pipeline)
            result = {
                "mutations": len(payloads),
                "seconds": seconds,
                "mutations_per_second": len(payloads) / seconds,
            }
            if replicated:
                result["drain_lag_seconds"] = await _wait_caught_up(host, port)
                promote_start = time.perf_counter()
                promoted = await _call(
                    standby_addr[0], standby_addr[1], {"kind": "promote"}
                )
                result["promote_seconds"] = time.perf_counter() - promote_start
                assert promoted["ok"], promoted
                assert promoted["payload"]["tenants"] == ["bench"], promoted
                # Every mutation was replayed on the standby exactly once.
                stats = await _call(
                    standby_addr[0], standby_addr[1], {"kind": "stats"}
                )
                assert stats["ok"], stats
                assert (
                    stats["payload"]["engine"]["bid_updates"] == len(payloads)
                ), stats
                goodbye = await _call(
                    standby_addr[0], standby_addr[1], {"kind": "shutdown"}
                )
                assert goodbye["ok"], goodbye
            return result
        finally:
            await primary.stop()
            if standby_proc is not None:
                if standby_proc.poll() is None:
                    standby_proc.terminate()
                try:
                    standby_proc.wait(timeout=10)
                except Exception:
                    standby_proc.kill()


def run_replication_overhead() -> dict:
    mutations = _env_int("REPRO_BENCH_REPL_MUTATIONS", 1500)
    pipeline = max(1, _env_int("REPRO_BENCH_REPL_PIPELINE", 32))
    checkpoint_every = max(1, _env_int("REPRO_BENCH_REPL_CHECKPOINT_EVERY", 256))
    payloads = _churn_payloads(_fresh_engine(), mutations)

    registry = get_registry()
    before = {name: registry.counter(name, "").value for name in _COUNTERS}
    runs = {
        "wal": asyncio.run(_run_config(False, payloads, pipeline, checkpoint_every)),
        "repl": asyncio.run(_run_config(True, payloads, pipeline, checkpoint_every)),
    }
    counters = {
        name: registry.counter(name, "").value - before[name] for name in _COUNTERS
    }
    baseline = runs["wal"]["seconds"]
    for run in runs.values():
        run["overhead_vs_wal"] = (
            run["seconds"] / baseline - 1.0 if baseline > 0 else None
        )
    return {
        "instance": {
            "mutations": mutations,
            "pipeline": pipeline,
            "checkpoint_every": checkpoint_every,
            "papers": _env_int("REPRO_BENCH_REPL_PAPERS", 60),
            "reviewers": _env_int("REPRO_BENCH_REPL_REVIEWERS", 30),
            "topics": _env_int("REPRO_BENCH_REPL_TOPICS", 12),
            "seed": bench_seed(),
        },
        "runs": runs,
        "replication_counters": counters,
    }


def test_replication_overhead(benchmark):
    verdict = benchmark.pedantic(run_replication_overhead, rounds=1, iterations=1)
    emit_bench_json(verdict, "BENCH_repl.json")
    runs = verdict["runs"]
    mutations = verdict["instance"]["mutations"]
    for run in runs.values():
        assert run["mutations"] == mutations
        assert run["seconds"] > 0
    counters = verdict["replication_counters"]
    # Every journaled record was shipped (the standby's replay is
    # asserted inside the run: revision == mutations after promotion).
    assert counters["replication.shipped"] >= mutations

    per_second = {p: round(r["mutations_per_second"]) for p, r in runs.items()}
    overhead = f"{runs['repl']['overhead_vs_wal'] * 100:+.1f}%"
    print(f"\nmutations/s: {per_second}")
    print(f"repl overhead vs wal: {overhead}")
    print(
        "drain lag: {:.3f}s, promote: {:.3f}s".format(
            runs["repl"]["drain_lag_seconds"], runs["repl"]["promote_seconds"]
        )
    )
