"""Ablation: the stochastic refinement's removal-probability model.

Section 4.4 motivates the coverage-based probability of Equation 9 and the
exponentially decayed blend of Equation 10 over the naive uniform model.
The bench refines the same SDGA assignment under all three models with the
same round budget and reports the quality reached.
"""

from __future__ import annotations

from _shared import bench_seed, emit, experiment_config
from repro.cra.sdga import StageDeepeningGreedySolver
from repro.cra.sra import StochasticRefiner
from repro.experiments.cra_quality import build_dataset_problem
from repro.experiments.reporting import ExperimentTable

_MODELS = ("uniform", "coverage", "decayed")
_ROUNDS = 25


def _run_all():
    config = experiment_config()
    problem = build_dataset_problem("DB08", group_size=3, config=config)
    base = StageDeepeningGreedySolver().solve(problem)
    rows = [("none (plain SDGA)", base.score, 0)]
    for model in _MODELS:
        refiner = StochasticRefiner(
            convergence_window=_ROUNDS,
            max_rounds=_ROUNDS,
            probability_model=model,
            seed=bench_seed(),
        )
        refined, stats = refiner.refine(problem, base.assignment)
        rows.append((model, problem.assignment_score(refined), stats["rounds"]))
    return rows


def test_ablation_sra_probability_model(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    table = ExperimentTable(
        title=f"Ablation: SRA removal-probability model ({_ROUNDS} rounds)",
        columns=["probability model", "coverage score", "rounds run"],
    )
    for label, score, rounds in rows:
        table.add_row(label, score, rounds)
    emit(table, "ablation_sra_probability.csv")

    scores = {label: score for label, score, _ in rows}
    base_score = scores["none (plain SDGA)"]
    # Every model is a best-so-far process, so none can end below SDGA; the
    # data-driven models should do at least as well as the uniform strawman.
    for model in _MODELS:
        assert scores[model] >= base_score - 1e-9
    assert max(scores["coverage"], scores["decayed"]) >= scores["uniform"] - 1e-6
