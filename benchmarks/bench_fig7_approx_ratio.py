"""Figure 7: SDGA's approximation ratio as a function of the group size.

Regenerates the two theoretical curves (integral and general case) together
with the 1/3 greedy baseline and the 1 - 1/e asymptote.
"""

from __future__ import annotations

from _shared import emit
from repro.cra.ratio import approximation_ratio_table
from repro.experiments.reporting import ExperimentTable


def test_fig7_approximation_ratio_curves(benchmark):
    points = benchmark(approximation_ratio_table, 2, 10)
    table = ExperimentTable(
        title="Figure 7: approximation ratio vs group size delta_p",
        columns=["delta_p", "integral case (1-(1-1/d)^d)", "general case",
                 "greedy baseline (1/3)", "1 - 1/e"],
    )
    for point in points:
        table.add_row(
            point.group_size,
            point.integral_case,
            point.general_case,
            point.greedy_baseline,
            point.limit_one_minus_inverse_e,
        )
    emit(table, "fig7_approx_ratio.csv")
    # The paper's headline claims.
    general = {point.group_size: point.general_case for point in points}
    assert general[2] >= 0.5 - 1e-12
    assert abs(general[3] - 5 / 9) < 1e-12
