"""Storage-layer benchmark: indexed candidates, store-backed churn, and
an out-of-core score-matrix build whose instance does not fit the RAM
budget.

Not a figure of the paper — this bench pins the acceptance bar of the
``repro.store`` layer (the paper's conference instances are curated
offline; a *store-backed* engine must serve them without loading the
whole instance into RAM):

* **indexed candidate generation** — top-k reviewer shortlists answered
  from the SQLite inverted topic index (``topic_candidates``) against the
  historical scan-and-score over the full reviewer pool; shortlists must
  agree (the index trades per-query latency for never materialising the
  reviewer matrix in RAM — both latencies are reported);
* **store-backed churn** — the identical interleaved request stream
  (solve / add-paper / withdraw / journal) replayed on an in-RAM engine
  and on a SQLite+memmap store-backed engine; every response must be
  **bitwise identical**, and the store-backed slowdown factor is
  reported;
* **out-of-core build** — a 20k-reviewer instance whose dense score
  matrix exceeds ``REPRO_BENCH_STORE_RAM_BUDGET_MB``: the matrix is
  built block-by-block into a ``numpy.memmap`` generation file, peak
  per-block RAM stays far below the budget, and sampled blocks are
  bitwise-equal to direct scoring.

Results feed ``benchmarks/results/BENCH_store.json`` and the repo-root
``BENCH.md`` trajectory.

Environment knobs
-----------------
``REPRO_BENCH_STORE_REVIEWERS`` / ``REPRO_BENCH_STORE_PAPERS`` /
``REPRO_BENCH_STORE_TOPICS``
    Out-of-core instance shape (defaults 20000 / 400 / 30 — a 64 MB
    float64 matrix against the default 48 MB budget).
``REPRO_BENCH_STORE_RAM_BUDGET_MB``
    The RAM budget the dense matrix must exceed (default 48).
``REPRO_BENCH_STORE_BLOCK_COLS``
    Columns per memmap block (default 16; peak block RAM = R x this x 8).
``REPRO_BENCH_STORE_POOL_REVIEWERS`` / ``REPRO_BENCH_STORE_QUERIES``
    Candidate-generation pool size and query count (defaults 3000 / 40).
``REPRO_BENCH_STORE_CHURN_EVENTS``
    Interleaved churn events per engine (default 30).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from _shared import bench_seed, emit, emit_bench_json
from repro.core.entities import Paper, Reviewer
from repro.core.problem import WGRAPProblem
from repro.core.scoring import get_scoring_function
from repro.core.vectors import TopicVector
from repro.experiments.reporting import ExperimentTable
from repro.service.engine import AssignmentEngine
from repro.store import InMemoryProblemStore, MemmapScoreStore, SqliteProblemStore


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, str(default)))


def _make_problem(num_reviewers, num_papers, num_topics, group_size=3, workload=None):
    rng = np.random.default_rng(bench_seed())
    reviewers = [
        Reviewer(id=f"reviewer-{i:05d}", vector=TopicVector(rng.random(num_topics)))
        for i in range(num_reviewers)
    ]
    papers = [
        Paper(id=f"paper-{i:05d}", vector=TopicVector(rng.random(num_topics)))
        for i in range(num_papers)
    ]
    if workload is None:
        workload = 2 * max(1, -(-num_papers * group_size // num_reviewers))
    return WGRAPProblem(
        papers=papers,
        reviewers=reviewers,
        group_size=group_size,
        reviewer_workload=workload,
    )


# ----------------------------------------------------------------------
# Part 1: indexed candidate generation vs the historical scan
# ----------------------------------------------------------------------
def run_candidate_generation(tmp_dir: Path) -> dict:
    pool = _env_int("REPRO_BENCH_STORE_POOL_REVIEWERS", 3000)
    queries = _env_int("REPRO_BENCH_STORE_QUERIES", 40)
    problem = _make_problem(pool, 40, 30)
    rng = np.random.default_rng(bench_seed() + 1)
    vectors = [TopicVector(rng.random(30)) for _ in range(queries)]

    memory = InMemoryProblemStore(problem)
    store = SqliteProblemStore.create(tmp_dir / "candidates.db", problem)
    try:
        started = time.perf_counter()
        scanned = [memory.topic_candidates(v, limit=10) for v in vectors]
        scan_elapsed = time.perf_counter() - started
        started = time.perf_counter()
        indexed = [store.topic_candidates(v, limit=10) for v in vectors]
        index_elapsed = time.perf_counter() - started
    finally:
        store.close()
    agree = all(
        {rid for rid, _ in a} == {rid for rid, _ in b}
        for a, b in zip(indexed, scanned)
    )
    return {
        "pool_reviewers": pool,
        "queries": queries,
        "scan_seconds": scan_elapsed,
        "index_seconds": index_elapsed,
        "scan_per_query_ms": 1000.0 * scan_elapsed / queries,
        "index_per_query_ms": 1000.0 * index_elapsed / queries,
        "shortlists_agree": agree,
    }


# ----------------------------------------------------------------------
# Part 2: store-backed churn vs the in-RAM engine, bitwise
# ----------------------------------------------------------------------
def _drive(engine, late_papers, events):
    outputs = []
    result = engine.solve("Greedy")
    outputs.append(("solve", result.score, tuple(sorted(result.assignment.pairs()))))
    for index in range(events):
        kind = index % 3
        if kind == 0:
            delta = engine.add_paper(late_papers[index])
            outputs.append(("add", delta.added_pairs))
        elif kind == 1:
            answer = engine.journal_query(engine.problem.paper_ids[0], top_k=2)
            outputs.append(
                ("journal", tuple((g.reviewer_ids, g.score) for g in answer.groups))
            )
        else:
            result = engine.solve("Greedy")
            outputs.append(
                ("solve", result.score, tuple(sorted(result.assignment.pairs())))
            )
    return outputs


def run_store_churn(tmp_dir: Path) -> dict:
    events = _env_int("REPRO_BENCH_STORE_CHURN_EVENTS", 30)
    shape = (60, 25, 12)
    rng = np.random.default_rng(bench_seed() + 2)
    late_papers = [
        Paper(id=f"late-{i:05d}", vector=TopicVector(rng.random(shape[2])))
        for i in range(events)
    ]

    ram_engine = AssignmentEngine(_make_problem(shape[1], shape[0], shape[2]))
    started = time.perf_counter()
    ram_outputs = _drive(ram_engine, late_papers, events)
    ram_elapsed = time.perf_counter() - started

    store = SqliteProblemStore.create(
        tmp_dir / "churn.db", _make_problem(shape[1], shape[0], shape[2]),
        blocks=True, block_cols=8,
    )
    try:
        engine = AssignmentEngine.from_store(store)
        started = time.perf_counter()
        store_outputs = _drive(engine, late_papers, events)
        store_elapsed = time.perf_counter() - started
        engine.sync_store()
        stats = store.describe()
    finally:
        store.close()
    return {
        "events": events,
        "ram_seconds": ram_elapsed,
        "store_seconds": store_elapsed,
        "slowdown": store_elapsed / max(ram_elapsed, 1e-9),
        "outputs_bitwise_identical": store_outputs == ram_outputs,
        "index_updates": stats["index_updates"],
        "rebuilds": stats["rebuilds"],
    }


# ----------------------------------------------------------------------
# Part 3: out-of-core build beyond the RAM budget
# ----------------------------------------------------------------------
def run_out_of_core_build(tmp_dir: Path) -> dict:
    num_reviewers = _env_int("REPRO_BENCH_STORE_REVIEWERS", 20000)
    num_papers = _env_int("REPRO_BENCH_STORE_PAPERS", 400)
    num_topics = _env_int("REPRO_BENCH_STORE_TOPICS", 30)
    block_cols = _env_int("REPRO_BENCH_STORE_BLOCK_COLS", 16)
    budget_bytes = _env_int("REPRO_BENCH_STORE_RAM_BUDGET_MB", 48) * 1024 * 1024

    rng = np.random.default_rng(bench_seed() + 3)
    reviewer_matrix = rng.random((num_reviewers, num_topics))
    paper_matrix = rng.random((num_papers, num_topics))
    scoring = get_scoring_function("weighted_coverage")

    matrix_bytes = num_reviewers * num_papers * 8
    peak_block_bytes = num_reviewers * block_cols * 8
    blocks = MemmapScoreStore(tmp_dir / "oversize.blocks", block_cols=block_cols)
    started = time.perf_counter()
    view = blocks.build(
        num_reviewers,
        num_papers,
        lambda start, stop: scoring.score_matrix(
            reviewer_matrix, paper_matrix[start:stop]
        ),
    )
    build_elapsed = time.perf_counter() - started

    # Spot-check three column blocks against direct scoring — bitwise.
    sample_ok = True
    for start in (0, num_papers // 2, max(0, num_papers - block_cols)):
        stop = min(num_papers, start + block_cols)
        expected = scoring.score_matrix(reviewer_matrix, paper_matrix[start:stop])
        sample_ok = sample_ok and np.array_equal(np.asarray(view[:, start:stop]), expected)
    description = blocks.describe()
    blocks.close()
    return {
        "reviewers": num_reviewers,
        "papers": num_papers,
        "topics": num_topics,
        "block_cols": block_cols,
        "matrix_bytes": matrix_bytes,
        "ram_budget_bytes": budget_bytes,
        "peak_block_bytes": peak_block_bytes,
        "exceeds_budget": matrix_bytes > budget_bytes,
        "block_peak_within_budget": peak_block_bytes < budget_bytes,
        "build_seconds": build_elapsed,
        "block_writes": description["block_writes"],
        "bytes_mapped": description["bytes_mapped"],
        "samples_bitwise": sample_ok,
    }


def run_store_bench(tmp_dir: Path) -> tuple[ExperimentTable, dict]:
    candidates = run_candidate_generation(tmp_dir)
    churn = run_store_churn(tmp_dir)
    oversize = run_out_of_core_build(tmp_dir)

    table = ExperimentTable(
        title=(
            f"Problem store: {candidates['pool_reviewers']}-reviewer shortlist "
            f"pool, {churn['events']}-event churn, "
            f"{oversize['reviewers']}x{oversize['papers']} out-of-core build "
            f"({oversize['matrix_bytes'] / 1e6:.0f} MB matrix, "
            f"{oversize['ram_budget_bytes'] / 1e6:.0f} MB budget)"
        ),
        columns=["stage", "seconds", "detail"],
    )
    table.add_row(
        "candidates: scan", candidates["scan_seconds"],
        f"{candidates['scan_per_query_ms']:.2f} ms/query",
    )
    table.add_row(
        "candidates: topic index", candidates["index_seconds"],
        f"{candidates['index_per_query_ms']:.2f} ms/query",
    )
    table.add_row(
        "churn: in-RAM engine", churn["ram_seconds"],
        f"{churn['events']} events",
    )
    table.add_row(
        "churn: store-backed engine", churn["store_seconds"],
        f"slowdown x{churn['slowdown']:.2f}",
    )
    table.add_row(
        "out-of-core build", oversize["build_seconds"],
        f"peak block {oversize['peak_block_bytes'] / 1e6:.1f} MB",
    )
    verdict = {
        "seed": bench_seed(),
        "candidates": candidates,
        "churn": churn,
        "out_of_core": oversize,
    }
    return table, verdict


def test_store_bench(benchmark, tmp_path):
    table, verdict = benchmark.pedantic(
        run_store_bench, args=(tmp_path,), rounds=1, iterations=1
    )
    emit(table, "store_bench.csv")
    emit_bench_json(verdict, "BENCH_store.json")
    assert verdict["candidates"]["shortlists_agree"], verdict["candidates"]
    assert verdict["churn"]["outputs_bitwise_identical"], verdict["churn"]
    assert verdict["churn"]["rebuilds"] == 0, verdict["churn"]
    oversize = verdict["out_of_core"]
    assert oversize["exceeds_budget"], (
        "the out-of-core instance fits the RAM budget — raise "
        "REPRO_BENCH_STORE_REVIEWERS or lower REPRO_BENCH_STORE_RAM_BUDGET_MB"
    )
    assert oversize["block_peak_within_budget"], oversize
    assert oversize["samples_bitwise"], "block build diverged from direct scoring"
