"""Unit tests for :class:`WGRAPProblem` and :class:`JRAProblem`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.entities import Paper, Reviewer
from repro.core.problem import JRAProblem, WGRAPProblem, minimal_reviewer_workload
from repro.core.vectors import TopicVector
from repro.exceptions import (
    ConfigurationError,
    DimensionMismatchError,
    InfeasibleAssignmentError,
    InfeasibleProblemError,
)


def _build_problem(**overrides):
    papers = [
        Paper(id="p1", vector=TopicVector([0.6, 0.2, 0.2])),
        Paper(id="p2", vector=TopicVector([0.1, 0.8, 0.1])),
    ]
    reviewers = [
        Reviewer(id="r1", vector=TopicVector([0.7, 0.2, 0.1])),
        Reviewer(id="r2", vector=TopicVector([0.1, 0.7, 0.2])),
        Reviewer(id="r3", vector=TopicVector([0.3, 0.3, 0.4])),
    ]
    defaults = dict(papers=papers, reviewers=reviewers, group_size=2)
    defaults.update(overrides)
    return WGRAPProblem(**defaults)


class TestMinimalWorkload:
    def test_formula(self):
        assert minimal_reviewer_workload(num_papers=617, num_reviewers=105, group_size=3) == 18
        assert minimal_reviewer_workload(num_papers=2, num_reviewers=3, group_size=2) == 2
        assert minimal_reviewer_workload(num_papers=1, num_reviewers=10, group_size=3) == 1

    def test_requires_reviewers(self):
        with pytest.raises(ConfigurationError):
            minimal_reviewer_workload(num_papers=1, num_reviewers=0, group_size=1)


class TestWGRAPProblemConstruction:
    def test_defaults(self):
        problem = _build_problem()
        assert problem.num_papers == 2
        assert problem.num_reviewers == 3
        assert problem.num_topics == 3
        assert problem.group_size == 2
        assert problem.reviewer_workload == minimal_reviewer_workload(2, 3, 2)
        assert problem.stage_workload == problem.constraints.stage_workload

    def test_requires_papers_and_reviewers(self):
        with pytest.raises(ConfigurationError):
            WGRAPProblem(papers=[], reviewers=[], group_size=1)

    def test_dimension_mismatch(self):
        papers = [Paper(id="p1", vector=TopicVector([1.0, 0.0]))]
        reviewers = [Reviewer(id="r1", vector=TopicVector([1.0]))]
        with pytest.raises(DimensionMismatchError):
            WGRAPProblem(papers=papers, reviewers=reviewers, group_size=1)

    def test_duplicate_ids_rejected(self):
        papers = [
            Paper(id="p1", vector=TopicVector([1.0])),
            Paper(id="p1", vector=TopicVector([1.0])),
        ]
        reviewers = [Reviewer(id="r1", vector=TopicVector([1.0]))]
        with pytest.raises(ConfigurationError):
            WGRAPProblem(papers=papers, reviewers=reviewers, group_size=1)

    def test_insufficient_capacity_rejected(self):
        with pytest.raises(InfeasibleProblemError):
            _build_problem(group_size=2, reviewer_workload=1)

    def test_conflicts_starving_a_paper_rejected(self):
        with pytest.raises(InfeasibleProblemError):
            _build_problem(conflicts=[("r1", "p1"), ("r2", "p1")])

    def test_index_lookup(self):
        problem = _build_problem()
        assert problem.paper_index("p2") == 1
        assert problem.reviewer_index("r3") == 2
        assert problem.paper_by_id("p1").id == "p1"
        assert problem.reviewer_by_id("r2").id == "r2"
        with pytest.raises(KeyError):
            problem.paper_index("nope")
        with pytest.raises(KeyError):
            problem.reviewer_index("nope")

    def test_matrices_are_cached_and_read_only(self):
        problem = _build_problem()
        assert problem.reviewer_matrix is problem.reviewer_matrix
        assert problem.paper_matrix.shape == (2, 3)
        with pytest.raises(ValueError):
            problem.reviewer_matrix[0, 0] = 9.0


class TestScoringAndValidation:
    def test_pair_score_matrix(self):
        problem = _build_problem()
        matrix = problem.pair_score_matrix()
        assert matrix.shape == (3, 2)
        assert problem.pair_score("r1", "p1") == pytest.approx(matrix[0, 0])
        expected = problem.scoring.score(
            problem.reviewer_by_id("r1").vector, problem.paper_by_id("p1").vector
        )
        assert matrix[0, 0] == pytest.approx(expected)

    def test_group_vector_and_paper_score(self):
        problem = _build_problem()
        assignment = Assignment([("r1", "p1"), ("r2", "p1")])
        group_vector = problem.group_vector(assignment, "p1")
        assert group_vector == pytest.approx(np.array([0.7, 0.7, 0.2]))
        assert problem.paper_score(assignment, "p1") == pytest.approx(1.0)
        assert problem.paper_score(assignment, "p2") == 0.0

    def test_assignment_score_sums_papers(self):
        problem = _build_problem()
        assignment = Assignment(
            [("r1", "p1"), ("r3", "p1"), ("r2", "p2"), ("r3", "p2")]
        )
        total = problem.assignment_score(assignment)
        per_paper = problem.paper_scores(assignment)
        assert total == pytest.approx(sum(per_paper.values()))

    def test_validate_complete_assignment(self):
        problem = _build_problem()
        good = Assignment([("r1", "p1"), ("r2", "p1"), ("r2", "p2"), ("r3", "p2")])
        problem.validate_assignment(good)
        assert problem.is_valid_assignment(good)

    def test_validate_detects_wrong_group_size(self):
        problem = _build_problem()
        incomplete = Assignment([("r1", "p1")])
        with pytest.raises(InfeasibleAssignmentError):
            problem.validate_assignment(incomplete)
        # Partial assignments are fine when completeness is not required.
        problem.validate_assignment(incomplete, require_complete=False)

    def test_validate_detects_overload(self):
        problem = _build_problem(reviewer_workload=1, group_size=1)
        overloaded = Assignment([("r1", "p1"), ("r1", "p2")])
        assert not problem.is_valid_assignment(overloaded)

    def test_validate_detects_conflict(self):
        problem = _build_problem(conflicts=[("r1", "p1")])
        bad = Assignment([("r1", "p1"), ("r2", "p1"), ("r2", "p2"), ("r3", "p2")])
        with pytest.raises(InfeasibleAssignmentError, match="conflict"):
            problem.validate_assignment(bad)

    def test_validate_detects_unknown_entities(self):
        problem = _build_problem()
        bad = Assignment([("ghost", "p1")])
        with pytest.raises(InfeasibleAssignmentError, match="unknown"):
            problem.validate_assignment(bad, require_complete=False)

    def test_candidate_reviewers_respects_conflicts(self):
        problem = _build_problem(conflicts=[("r1", "p1")])
        assert problem.candidate_reviewers("p1") == ["r2", "r3"]
        assert problem.candidate_reviewers("p2") == ["r1", "r2", "r3"]


class TestDerivedProblems:
    def test_to_jra(self):
        problem = _build_problem(conflicts=[("r1", "p1")])
        jra = problem.to_jra("p1")
        assert jra.group_size == problem.group_size
        assert "r1" not in jra.reviewer_ids
        assert jra.paper.id == "p1"

    def test_with_scoring(self):
        problem = _build_problem()
        alternative = problem.with_scoring("dot_product")
        assert alternative.scoring.name == "dot_product"
        assert alternative.num_papers == problem.num_papers

    def test_with_reviewers(self):
        problem = _build_problem()
        scaled = problem.with_reviewers(
            [reviewer.with_vector(reviewer.vector.scaled(2.0)) for reviewer in problem.reviewers]
        )
        assert scaled.reviewer_matrix[0, 0] == pytest.approx(1.4)
        assert scaled.group_size == problem.group_size

    def test_repr(self):
        assert "WGRAPProblem" in repr(_build_problem())


class TestJRAProblem:
    def _reviewers(self, count=5):
        rng = np.random.default_rng(0)
        return [
            Reviewer(id=f"r{i}", vector=TopicVector(rng.dirichlet(np.ones(4))))
            for i in range(count)
        ]

    def test_construction_and_exclusions(self):
        paper = Paper(id="p", vector=TopicVector([0.25, 0.25, 0.25, 0.25]))
        problem = JRAProblem(
            paper=paper, reviewers=self._reviewers(), group_size=2,
            excluded_reviewers={"r0"},
        )
        assert problem.num_reviewers == 4
        assert "r0" not in problem.reviewer_ids
        assert problem.excluded_reviewers == frozenset({"r0"})

    def test_too_few_candidates_rejected(self):
        paper = Paper(id="p", vector=TopicVector([1.0, 0.0, 0.0, 0.0]))
        with pytest.raises(InfeasibleProblemError):
            JRAProblem(paper=paper, reviewers=self._reviewers(2), group_size=3)

    def test_group_size_validation(self):
        paper = Paper(id="p", vector=TopicVector([1.0, 0.0, 0.0, 0.0]))
        with pytest.raises(ConfigurationError):
            JRAProblem(paper=paper, reviewers=self._reviewers(), group_size=0)

    def test_group_score_and_validation(self):
        paper = Paper(id="p", vector=TopicVector([0.5, 0.5, 0.0, 0.0]))
        reviewers = self._reviewers()
        problem = JRAProblem(paper=paper, reviewers=reviewers, group_size=2)
        score = problem.group_score(["r0", "r1"])
        assert 0.0 <= score <= 1.0
        assert problem.group_score([]) == 0.0
        problem.validate_group(["r0", "r1"])
        with pytest.raises(InfeasibleAssignmentError):
            problem.validate_group(["r0"])  # wrong size
        with pytest.raises(InfeasibleAssignmentError):
            problem.validate_group(["r0", "r0"])  # duplicates

    def test_validate_group_rejects_excluded(self):
        paper = Paper(id="p", vector=TopicVector([1.0, 0.0, 0.0, 0.0]))
        problem = JRAProblem(
            paper=paper, reviewers=self._reviewers(), group_size=2,
            excluded_reviewers={"r1"},
        )
        with pytest.raises(InfeasibleAssignmentError):
            problem.validate_group(["r0", "r1"])

    def test_reviewer_matrix_read_only(self):
        paper = Paper(id="p", vector=TopicVector([1.0, 0.0, 0.0, 0.0]))
        problem = JRAProblem(paper=paper, reviewers=self._reviewers(), group_size=2)
        with pytest.raises(ValueError):
            problem.reviewer_matrix[0, 0] = 1.0
        assert "JRAProblem" in repr(problem)
