"""Property-based tests for the JRA and CRA solvers on random instances."""

from __future__ import annotations

import itertools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entities import Paper, Reviewer
from repro.core.problem import JRAProblem
from repro.cra.greedy import GreedySolver
from repro.cra.ratio import GREEDY_RATIO, sdga_ratio
from repro.cra.sdga import StageDeepeningGreedySolver
from repro.cra.sra import SDGAWithRefinementSolver
from repro.data.synthetic import make_problem
from repro.jra.bba import BranchAndBoundSolver
from repro.jra.brute_force import BruteForceSolver
from tests.conftest import exhaustive_optimal_assignment


@st.composite
def jra_instances(draw):
    num_topics = draw(st.integers(min_value=2, max_value=5))
    num_reviewers = draw(st.integers(min_value=3, max_value=8))
    group_size = draw(st.integers(min_value=1, max_value=min(3, num_reviewers)))
    seed = draw(st.integers(min_value=0, max_value=100_000))
    rng = np.random.default_rng(seed)
    paper = Paper(id="p", vector=rng.dirichlet(np.full(num_topics, 0.6)))
    reviewers = [
        Reviewer(id=f"r{i}", vector=rng.dirichlet(np.full(num_topics, 0.6)))
        for i in range(num_reviewers)
    ]
    scoring = draw(st.sampled_from(["weighted_coverage", "dot_product", "paper_coverage"]))
    return JRAProblem(paper=paper, reviewers=reviewers, group_size=group_size,
                      scoring=scoring)


@settings(max_examples=40, deadline=None)
@given(jra_instances())
def test_bba_is_exact_on_random_instances(problem):
    bba = BranchAndBoundSolver().solve(problem)
    best = max(
        problem.group_score(list(combination))
        for combination in itertools.combinations(problem.reviewer_ids, problem.group_size)
    )
    assert abs(bba.score - best) < 1e-9
    assert problem.group_score(bba.reviewer_ids) == bba.score


@settings(max_examples=25, deadline=None)
@given(jra_instances())
def test_bba_and_brute_force_agree(problem):
    assert abs(
        BranchAndBoundSolver().solve(problem).score
        - BruteForceSolver().solve(problem).score
    ) < 1e-9


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=2, max_value=4),   # papers
    st.integers(min_value=3, max_value=5),   # reviewers
    st.integers(min_value=1, max_value=2),   # group size
    st.integers(min_value=0, max_value=10_000),
)
def test_sdga_and_greedy_respect_their_guarantees(num_papers, num_reviewers,
                                                  group_size, seed):
    problem = make_problem(
        num_papers=num_papers,
        num_reviewers=num_reviewers,
        num_topics=5,
        group_size=group_size,
        seed=seed,
    )
    _, optimum = exhaustive_optimal_assignment(problem)
    sdga = StageDeepeningGreedySolver().solve(problem)
    greedy = GreedySolver().solve(problem)
    if group_size >= 2:
        guarantee = sdga_ratio(problem.group_size, problem.reviewer_workload)
    else:
        guarantee = 1.0  # a single one-per-paper stage is solved optimally
    assert sdga.score >= guarantee * optimum - 1e-9
    assert greedy.score >= GREEDY_RATIO * optimum - 1e-9
    assert sdga.score <= optimum + 1e-9
    assert greedy.score <= optimum + 1e-9


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_refinement_never_degrades_and_stays_feasible(seed):
    problem = make_problem(
        num_papers=8, num_reviewers=6, num_topics=6, group_size=2, seed=seed
    )
    sdga = StageDeepeningGreedySolver().solve(problem)
    refined = SDGAWithRefinementSolver().solve(problem)
    problem.validate_assignment(refined.assignment)
    assert refined.score >= sdga.score - 1e-9
