"""Equivalence tests for the dense index-space kernels.

Two families of guarantees keep ``repro.core.dense`` honest:

* **kernel equivalence** — every ``DenseProblem`` kernel matches the
  object-path computation it compiles (``problem.paper_score``,
  ``ScoringFunction.gain_vector``, ...) to 0 ulp across random instances
  and scoring functions;
* **solver equivalence** — every solver rewired onto the dense view
  returns an assignment identical to its pre-refactor object-path
  behaviour (kept alongside as ``use_dense=False`` where the search logic
  moved, or replicated here as a pinned reference where only the input
  staging moved).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.scoring import available_scoring_functions, get_scoring_function
from repro.cra.greedy import GreedySolver
from repro.cra.local_search import LocalSearchRefiner
from repro.cra.sdga import StageDeepeningGreedySolver
from repro.cra.sra import StochasticRefiner
from repro.cra.stable_matching import StableMatchingSolver
from repro.data.synthetic import make_problem
from repro.jra.topk import find_top_k_groups
from repro.service.cache import ScoreMatrixCache


def _instance(seed: int, scoring: str | None = None, conflict_ratio: float = 0.06):
    return make_problem(
        num_papers=12,
        num_reviewers=21,
        num_topics=10,
        group_size=3,
        seed=seed,
        conflict_ratio=conflict_ratio,
        scoring=scoring,
    )


def _partial_assignment(problem, seed: int, per_paper: int) -> Assignment:
    """A feasible partial assignment with ``per_paper`` reviewers per paper."""
    rng = np.random.default_rng(seed)
    assignment = Assignment()
    loads = {rid: 0 for rid in problem.reviewer_ids}
    for paper_id in problem.paper_ids:
        candidates = [
            rid
            for rid in problem.candidate_reviewers(paper_id)
            if loads[rid] < problem.reviewer_workload
        ]
        chosen = rng.choice(len(candidates), size=per_paper, replace=False)
        for index in chosen:
            assignment.add(candidates[int(index)], paper_id)
            loads[candidates[int(index)]] += 1
    return assignment


# ----------------------------------------------------------------------
# Kernel equivalence (0 ulp)
# ----------------------------------------------------------------------
class TestDenseKernels:
    @pytest.mark.parametrize("seed", range(4))
    def test_feasibility_mask_matches_is_feasible_pair(self, seed):
        problem = _instance(seed, conflict_ratio=0.15)
        dense = problem.dense_view()
        for reviewer_idx, reviewer_id in enumerate(problem.reviewer_ids):
            for paper_idx, paper_id in enumerate(problem.paper_ids):
                assert bool(dense.feasible[reviewer_idx, paper_idx]) == (
                    problem.is_feasible_pair(reviewer_id, paper_id)
                )

    @pytest.mark.parametrize("scoring", available_scoring_functions())
    @pytest.mark.parametrize("seed", range(3))
    def test_gain_matrix_matches_gain_vector(self, scoring, seed):
        problem = _instance(seed, scoring=scoring)
        dense = problem.dense_view()
        assignment = _partial_assignment(problem, seed, per_paper=2)
        group_vectors = dense.group_vectors(assignment)
        gains = dense.gain_matrix(group_vectors, paper_block=5)
        function = get_scoring_function(scoring)
        for paper_idx in range(problem.num_papers):
            reference = function.gain_vector(
                group_vectors[paper_idx],
                problem.reviewer_matrix,
                problem.paper_matrix[paper_idx],
            )
            assert np.array_equal(gains[paper_idx], reference)
            assert np.array_equal(
                dense.gains_for_paper(group_vectors[paper_idx], paper_idx), reference
            )

    @pytest.mark.parametrize("scoring", available_scoring_functions())
    @pytest.mark.parametrize("seed", range(3))
    def test_scores_match_object_path(self, scoring, seed):
        problem = _instance(seed, scoring=scoring)
        dense = problem.dense_view()
        assignment = _partial_assignment(problem, seed, per_paper=2)
        group_vectors = dense.group_vectors(assignment)
        batch = dense.paper_scores(group_vectors)
        for paper_idx, paper_id in enumerate(problem.paper_ids):
            reference = problem.paper_score(assignment, paper_id)
            assert batch[paper_idx] == reference
            assert dense.paper_score(group_vectors[paper_idx], paper_idx) == reference
        assert dense.assignment_score(assignment) == problem.assignment_score(assignment)

    @pytest.mark.parametrize("seed", range(3))
    def test_candidate_scores_match_extended_groups(self, seed):
        problem = _instance(seed)
        dense = problem.dense_view()
        assignment = _partial_assignment(problem, seed, per_paper=2)
        for paper_idx, paper_id in enumerate(problem.paper_ids):
            group_vector = dense.group_vectors(assignment)[paper_idx]
            scores = dense.candidate_scores(group_vector, paper_idx)
            for reviewer_idx, reviewer_id in enumerate(problem.reviewer_ids):
                probe = assignment.copy()
                probe.discard(reviewer_id, paper_id)
                probe.add(reviewer_id, paper_id)
                assert scores[reviewer_idx] == problem.paper_score(probe, paper_id)

    @pytest.mark.parametrize("seed", range(3))
    def test_scores_with_reviewer_matches_object_path(self, seed):
        problem = _instance(seed)
        dense = problem.dense_view()
        assignment = _partial_assignment(problem, seed, per_paper=2)
        group_vectors = dense.group_vectors(assignment)
        paper_indices = np.arange(problem.num_papers, dtype=np.int64)
        for reviewer_idx, reviewer_id in enumerate(problem.reviewer_ids[:5]):
            scores = dense.scores_with_reviewer(group_vectors, paper_indices, reviewer_idx)
            for paper_idx, paper_id in enumerate(problem.paper_ids):
                probe = assignment.copy()
                probe.discard(reviewer_id, paper_id)
                probe.add(reviewer_id, paper_id)
                assert scores[paper_idx] == problem.paper_score(probe, paper_id)

    @pytest.mark.parametrize("seed", range(3))
    def test_stage_inputs_match_reference(self, seed):
        problem = _instance(seed, conflict_ratio=0.1)
        dense = problem.dense_view()
        for per_paper in (0, 1, 2):
            assignment = (
                Assignment()
                if per_paper == 0
                else _partial_assignment(problem, seed + per_paper, per_paper)
            )
            gains, forbidden, capacities = dense.stage_inputs(assignment)
            ref_gains, ref_forbidden, ref_capacities = _reference_stage_inputs(
                problem, assignment
            )
            assert np.array_equal(gains, ref_gains)
            assert np.array_equal(forbidden, ref_forbidden)
            assert np.array_equal(capacities, ref_capacities)


def _reference_stage_inputs(problem, assignment):
    """The pre-refactor per-pair Python staging of SDGA stages."""
    num_papers = problem.num_papers
    num_reviewers = problem.num_reviewers
    gains = np.zeros((num_papers, num_reviewers), dtype=np.float64)
    forbidden = np.zeros((num_papers, num_reviewers), dtype=bool)
    for paper_idx, paper_id in enumerate(problem.paper_ids):
        group_vector = problem.group_vector(assignment, paper_id)
        gains[paper_idx] = problem.scoring.gain_vector(
            group_vector, problem.reviewer_matrix, problem.paper_matrix[paper_idx]
        )
        current_group = assignment.reviewers_of(paper_id)
        conflicted = problem.conflicts.reviewers_conflicting_with(paper_id)
        for reviewer_idx, reviewer_id in enumerate(problem.reviewer_ids):
            if reviewer_id in current_group or reviewer_id in conflicted:
                forbidden[paper_idx, reviewer_idx] = True
    remaining = np.maximum(
        np.array(
            [
                problem.reviewer_workload - assignment.load(reviewer_id)
                for reviewer_id in problem.reviewer_ids
            ],
            dtype=np.int64,
        ),
        0,
    )
    capacities = np.minimum(problem.stage_workload, remaining)
    if int(capacities.sum()) < num_papers:
        capacities = remaining
    return gains, forbidden, capacities


# ----------------------------------------------------------------------
# Solver equivalence
# ----------------------------------------------------------------------
class TestRewiredSolversMatchObjectPath:
    @pytest.mark.parametrize("group_size", [2, 3, 4])
    @pytest.mark.parametrize("seed", range(6))
    def test_greedy_dense_equals_naive_selection(self, seed, group_size):
        """The dense greedy is bitwise the true-argmax (naive) selection.

        This holds on *every* instance, including exact-gain-tie regimes
        (e.g. groups that fully cover a paper's residual), where the
        historical lazy heap can reorder ties through ulp-stale records.
        """
        kwargs = dict(
            num_papers=14,
            num_reviewers=22,
            num_topics=8,
            group_size=group_size,
            conflict_ratio=0.08,
        )
        dense_result = GreedySolver(use_dense=True).solve(
            make_problem(seed=seed, **kwargs)
        )
        naive_result = GreedySolver(use_lazy_heap=False).solve(
            make_problem(seed=seed, **kwargs)
        )
        assert dense_result.assignment == naive_result.assignment
        assert dense_result.score == naive_result.score
        assert (
            dense_result.stats["iterations"] == naive_result.stats["iterations"]
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_greedy_dense_equals_object_heap(self, seed):
        """On tie-free instances the dense path also matches the lazy heap."""
        dense_result = GreedySolver(use_dense=True).solve(_instance(seed))
        object_result = GreedySolver(use_dense=False).solve(_instance(seed))
        assert dense_result.assignment == object_result.assignment
        assert dense_result.score == object_result.score
        assert dense_result.stats["repaired"] == object_result.stats["repaired"]

    @pytest.mark.parametrize("moves", ["all", "replace", "exchange"])
    @pytest.mark.parametrize("seed", range(3))
    def test_local_search_dense_equals_object(self, seed, moves):
        problem = _instance(seed, conflict_ratio=0.1)
        base = StageDeepeningGreedySolver().solve(problem).assignment
        refined_dense, stats_dense = LocalSearchRefiner(
            max_rounds=4, moves=moves, use_dense=True
        ).refine(problem, base)
        refined_object, stats_object = LocalSearchRefiner(
            max_rounds=4, moves=moves, use_dense=False
        ).refine(problem, base)
        assert refined_dense == refined_object
        assert stats_dense["final_score"] == stats_object["final_score"]
        assert stats_dense["moves_applied"] == stats_object["moves_applied"]

    @pytest.mark.parametrize("model", ["decayed", "coverage", "uniform"])
    def test_sra_refine_matches_reference(self, model):
        problem = _instance(1, conflict_ratio=0.05)
        base = StageDeepeningGreedySolver().solve(problem).assignment
        refiner = StochasticRefiner(
            convergence_window=50, max_rounds=6, seed=9, probability_model=model
        )
        refined, stats = refiner.refine(problem, base)
        reference, reference_score = _reference_sra_refine(
            problem, base, rounds=6, seed=9, probability_model=model,
            decay=0.05,
        )
        assert refined == reference
        assert stats["best_score"] == reference_score

    @pytest.mark.parametrize("seed", range(3))
    def test_stable_matching_preferences_match_reference(self, seed):
        problem = _instance(seed, conflict_ratio=0.12)
        dense = problem.dense_view()
        pair_scores = dense.pair_scores()
        for paper_idx, paper_id in enumerate(problem.paper_ids):
            order = np.argsort(-pair_scores[:, paper_idx], kind="stable")
            forbidden = problem.conflicts.reviewers_conflicting_with(paper_id)
            reference = [
                int(reviewer_idx)
                for reviewer_idx in order
                if problem.reviewer_ids[reviewer_idx] not in forbidden
            ]
            compiled = order[dense.feasible[order, paper_idx]].tolist()
            assert compiled == reference
        # and the full solve still produces a valid, repair-free matching
        result = StableMatchingSolver().solve(problem)
        problem.validate_assignment(result.assignment)

    def test_bfs_topk_matches_combinations(self):
        from itertools import combinations

        problem = _instance(2).to_jra(_instance(2).papers[0])
        shortlist = find_top_k_groups(problem, k=3, method="bfs")
        scored = sorted(
            (
                (problem.group_score(group), group)
                for group in combinations(problem.reviewer_ids, problem.group_size)
            ),
            key=lambda entry: -entry[0],
        )
        assert shortlist[0].score == scored[0][0]
        assert [entry.score for entry in shortlist] == [
            score for score, _ in scored[:3]
        ]
        bba = find_top_k_groups(problem, k=3, method="bba")
        assert [entry.score for entry in bba] == pytest.approx(
            [entry.score for entry in shortlist], abs=0.0
        )


def _reference_sra_refine(problem, assignment, rounds, seed, probability_model, decay):
    """The pre-refactor stochastic-refinement loop (object path), pinned."""
    rng = np.random.default_rng(seed)
    pair_scores = problem.pair_score_matrix()
    reviewer_mass = pair_scores.sum(axis=1)
    reviewer_mass = np.where(reviewer_mass > 0.0, reviewer_mass, 1.0)
    current = assignment.copy()
    best = assignment.copy()
    best_score = problem.assignment_score(best)
    num_reviewers = problem.num_reviewers
    uniform_floor = 1.0 / num_reviewers

    from repro.assignment.transportation import solve_capacitated_assignment

    for round_index in range(1, rounds + 1):
        decay_factor = (
            float(np.exp(-decay * round_index)) if probability_model == "decayed" else 1.0
        )
        for paper_id in problem.paper_ids:
            members = sorted(current.reviewers_of(paper_id))
            if not members:
                continue
            paper_idx = problem.paper_index(paper_id)
            keep = np.empty(len(members), dtype=np.float64)
            for position, reviewer_id in enumerate(members):
                reviewer_idx = problem.reviewer_index(reviewer_id)
                if probability_model == "uniform":
                    keep[position] = uniform_floor
                    continue
                data_driven = (
                    decay_factor
                    * pair_scores[reviewer_idx, paper_idx]
                    / reviewer_mass[reviewer_idx]
                )
                keep[position] = max(uniform_floor, data_driven)
            removal = 1.0 - keep / keep.sum()
            if removal.sum() <= 0.0:
                removal = np.full(len(members), 1.0 / len(members))
            else:
                removal = removal / removal.sum()
            victim = rng.choice(len(members), p=removal)
            current.remove(members[int(victim)], paper_id)

        gains = np.zeros((problem.num_papers, num_reviewers), dtype=np.float64)
        forbidden = np.zeros_like(gains, dtype=bool)
        for paper_idx, paper_id in enumerate(problem.paper_ids):
            group_vector = problem.group_vector(current, paper_id)
            gains[paper_idx] = problem.scoring.gain_vector(
                group_vector, problem.reviewer_matrix, problem.paper_matrix[paper_idx]
            )
            group = current.reviewers_of(paper_id)
            conflicted = problem.conflicts.reviewers_conflicting_with(paper_id)
            for reviewer_idx, reviewer_id in enumerate(problem.reviewer_ids):
                if reviewer_id in group or reviewer_id in conflicted:
                    forbidden[paper_idx, reviewer_idx] = True
        capacities = np.array(
            [
                problem.reviewer_workload - current.load(reviewer_id)
                for reviewer_id in problem.reviewer_ids
            ],
            dtype=np.int64,
        )
        result = solve_capacitated_assignment(
            gains, np.maximum(capacities, 0), forbidden=forbidden, backend="hungarian"
        )
        for paper_idx, reviewer_idx in enumerate(result.row_to_col):
            current.add(problem.reviewer_ids[reviewer_idx], problem.paper_ids[paper_idx])

        current_score = problem.assignment_score(current)
        if current_score > best_score + 1e-12:
            best = current.copy()
            best_score = current_score
    return best, best_score


# ----------------------------------------------------------------------
# Dense view sharing across the serving stack
# ----------------------------------------------------------------------
class TestDenseViewSharing:
    def test_dense_view_is_cached_per_problem(self):
        problem = _instance(0)
        assert problem.dense_view() is problem.dense_view()

    def test_dense_view_tracks_live_conflict_mutations(self):
        """problem.conflicts is a live container; the compiled mask follows it.

        Since the delta-maintenance layer (``repro.core.delta``), conflict
        edits are replayed *in place* into the compiled feasibility mask:
        the view object stays the same, only the affected cells flip.
        """
        problem = _instance(0, conflict_ratio=0.0)
        first = problem.dense_view()
        reviewer_id, paper_id = problem.reviewer_ids[0], problem.paper_ids[0]
        assert bool(first.feasible[0, 0])
        patches_before = problem.view_stats.conflict_patches
        recompiles_before = problem.view_stats.recompiles

        problem.conflicts.add(reviewer_id, paper_id)
        patched = problem.dense_view()
        assert patched is first  # maintained in place, not recompiled
        assert not bool(patched.feasible[0, 0])
        assert problem.view_stats.conflict_patches == patches_before + 1
        assert problem.view_stats.recompiles == recompiles_before
        # a solver running after the mutation must respect the new conflict
        result = GreedySolver().solve(problem)
        assert not result.assignment.contains(reviewer_id, paper_id)

        problem.conflicts.discard(reviewer_id, paper_id)
        assert bool(problem.dense_view().feasible[0, 0])
        # no-op mutations do not touch the mask
        problem.conflicts.discard(reviewer_id, paper_id)
        patches_now = problem.view_stats.conflict_patches
        assert problem.dense_view() is first
        assert problem.view_stats.conflict_patches == patches_now

    def test_patched_mask_matches_full_recompile(self):
        """After arbitrary edit sequences the patched mask equals the oracle."""
        problem = _instance(1, conflict_ratio=0.1)
        view = problem.dense_view()
        rng = np.random.default_rng(5)
        for _ in range(30):
            reviewer_id = problem.reviewer_ids[int(rng.integers(problem.num_reviewers))]
            paper_id = problem.paper_ids[int(rng.integers(problem.num_papers))]
            if rng.random() < 0.5:
                problem.conflicts.add(reviewer_id, paper_id)
            else:
                problem.conflicts.discard(reviewer_id, paper_id)
        patched = problem.dense_view()
        assert patched is view
        from repro.core.dense import DenseProblem

        oracle = DenseProblem(problem)
        assert np.array_equal(patched.feasible, oracle.feasible)
        assert patched.conflict_version == problem.conflicts.version

    def test_cache_build_seeds_the_problem(self):
        problem = _instance(0)
        cache = ScoreMatrixCache(problem)
        matrix = cache.matrix()
        assert problem.cached_pair_scores is not None
        assert np.array_equal(problem.pair_score_matrix(), matrix)
        assert cache.stats.adopted_builds == 0

    def test_cache_reuses_a_warmed_problem(self):
        problem = _instance(0)
        warmed = problem.warm_pair_scores()
        cache = ScoreMatrixCache(problem)
        assert np.array_equal(cache.matrix(), warmed)
        assert cache.stats.adopted_builds == 1
        assert cache.stats.score_calls == 0

    def test_adopt_rejects_wrong_shape(self):
        from repro.exceptions import DimensionMismatchError

        problem = _instance(0)
        with pytest.raises(DimensionMismatchError):
            problem.adopt_pair_scores(np.zeros((2, 2)))
