"""Unit tests for tokenisation, vocabularies and corpus containers."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, VocabularyError
from repro.topics.corpus import Corpus, Document
from repro.topics.text import STOP_WORDS, Vocabulary, tokenize


class TestTokenize:
    def test_lowercases_and_filters(self):
        tokens = tokenize("Efficient Query Processing for Spatial Databases")
        assert "query" in tokens
        assert "spatial" in tokens
        assert "for" not in tokens  # stop word
        assert all(token == token.lower() for token in tokens)

    def test_minimum_length(self):
        assert tokenize("an ox is big", min_length=3) == ["big"]

    def test_scientific_stop_words_removed(self):
        tokens = tokenize("We propose a new method based on results")
        assert tokens == []

    def test_keeps_hyphenated_and_alphanumeric(self):
        tokens = tokenize("state-of-the-art top-k query2 answering")
        assert "top-k" in tokens or "state-of-the-art" in tokens
        assert "answering" in tokens

    def test_custom_stop_words(self):
        tokens = tokenize("graph mining", stop_words=frozenset({"graph"}))
        assert tokens == ["mining"]

    def test_stop_word_list_is_reasonable(self):
        assert "the" in STOP_WORDS
        assert "query" not in STOP_WORDS


class TestVocabulary:
    def test_add_and_lookup(self):
        vocabulary = Vocabulary(["alpha", "beta"])
        assert len(vocabulary) == 2
        assert vocabulary.id_of("alpha") == 0
        assert vocabulary.word_of(1) == "beta"
        assert "alpha" in vocabulary
        assert list(vocabulary) == ["alpha", "beta"]

    def test_add_is_idempotent(self):
        vocabulary = Vocabulary()
        first = vocabulary.add("alpha")
        second = vocabulary.add("alpha")
        assert first == second
        assert len(vocabulary) == 1

    def test_add_rejects_empty_word(self):
        with pytest.raises(ConfigurationError):
            Vocabulary().add("")

    def test_unknown_lookups_raise(self):
        vocabulary = Vocabulary(["alpha"])
        with pytest.raises(VocabularyError):
            vocabulary.id_of("beta")
        with pytest.raises(VocabularyError):
            vocabulary.word_of(7)

    def test_encode_skips_unknown_by_default(self):
        vocabulary = Vocabulary(["alpha", "beta"])
        assert vocabulary.encode(["alpha", "gamma", "beta"]) == [0, 1]
        with pytest.raises(VocabularyError):
            vocabulary.encode(["gamma"], skip_unknown=False)

    def test_from_documents_frequency_pruning(self):
        documents = [
            ["common", "rare"],
            ["common", "unique"],
            ["common"],
        ]
        vocabulary = Vocabulary.from_documents(documents, min_document_frequency=2)
        assert "common" in vocabulary
        assert "rare" not in vocabulary

    def test_from_documents_max_ratio_pruning(self):
        documents = [["everywhere", "specific1"], ["everywhere", "specific2"],
                     ["everywhere", "specific3"]]
        vocabulary = Vocabulary.from_documents(documents, max_document_ratio=0.5)
        assert "everywhere" not in vocabulary
        assert "specific1" in vocabulary

    def test_from_documents_ratio_validation(self):
        with pytest.raises(ConfigurationError):
            Vocabulary.from_documents([["a"]], max_document_ratio=0.0)


class TestDocumentAndCorpus:
    def test_document_from_text(self):
        document = Document.from_text("d1", "Scalable join processing", authors=["alice"])
        assert document.id == "d1"
        assert document.authors == ("alice",)
        assert "join" in document.tokens
        assert document.length == len(document.tokens)

    def test_document_requires_id(self):
        with pytest.raises(ConfigurationError):
            Document(id="", tokens=("a",))

    def test_corpus_builds_vocabulary_and_indexes_authors(self):
        documents = [
            Document(id="d1", tokens=("graph", "mining"), authors=("alice", "bob")),
            Document(id="d2", tokens=("graph", "query"), authors=("bob",)),
        ]
        corpus = Corpus(documents)
        assert corpus.num_documents == 2
        assert corpus.num_words == 3
        assert corpus.num_tokens == 4
        assert corpus.authors == ("alice", "bob")
        assert corpus.author_index("bob") == 1
        assert corpus.author_indices(0) == [0, 1]
        encoded = corpus.encoded_document(1)
        assert len(encoded) == 2
        assert list(corpus.encoded_documents())[0] == corpus.encoded_document(0)
        assert len(corpus) == 2
        assert "Corpus" in repr(corpus)

    def test_corpus_requires_documents(self):
        with pytest.raises(ConfigurationError):
            Corpus([])

    def test_corpus_unknown_author(self):
        corpus = Corpus([Document(id="d", tokens=("word", "another"), authors=("alice",))])
        with pytest.raises(KeyError):
            corpus.author_index("zoe")
