"""Tests for the long-lived assignment-engine subsystem (repro.service)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.entities import Paper
from repro.core.problem import ProblemMutation
from repro.core.scoring import ScoringFunction
from repro.core.vectors import TopicVector
from repro.cra import available_solvers as available_cra_solvers
from repro.data.io import load_engine_snapshot
from repro.data.synthetic import make_problem
from repro.exceptions import (
    ConfigurationError,
    InfeasibleProblemError,
    UnknownSolverError,
)
from repro.jra import available_solvers as available_jra_solvers
from repro.service.cache import ScoreMatrixCache
from repro.service.engine import AssignmentEngine
from repro.service.registry import available_solvers, create_solver, solver_spec
from repro.service.requests import JournalQuery, SolveRequest
from repro.service.session import EngineSession


def _service_problem(**overrides):
    defaults = dict(
        num_papers=10, num_reviewers=8, num_topics=8, group_size=2,
        reviewer_workload=4, seed=11,
    )
    defaults.update(overrides)
    return make_problem(**defaults)


def _late_paper(problem, paper_id="late-submission"):
    rng = np.random.default_rng(99)
    vector = rng.dirichlet(np.full(problem.num_topics, 0.5))
    return Paper(id=paper_id, vector=TopicVector(vector))


@pytest.fixture
def engine():
    return AssignmentEngine(_service_problem())


@pytest.fixture
def solved_engine(engine):
    engine.solve("SDGA")
    return engine


class TestRegistry:
    def test_canonical_names_cover_the_paper_methods(self):
        cra = available_solvers("cra")
        assert {"SM", "ILP", "BRGG", "Greedy", "SDGA", "SDGA-SRA", "SDGA-LS"} <= set(cra)
        jra = available_solvers("jra")
        assert {"BBA", "BFS", "ILP", "CP", "CP-FIRST"} <= set(jra)

    def test_lookup_is_case_insensitive_and_accepts_aliases(self):
        assert solver_spec("cra", "sdga-sra").name == "SDGA-SRA"
        assert solver_spec("cra", "SRA").name == "SDGA-SRA"
        assert solver_spec("jra", "brute-force").name == "BFS"

    def test_create_solver_ignores_foreign_options(self):
        solver = create_solver("cra", "SDGA", convergence_window=3, seed=1)
        assert solver.name == "SDGA"

    def test_unknown_names_raise(self):
        with pytest.raises(UnknownSolverError):
            create_solver("cra", "MAGIC")
        with pytest.raises(ConfigurationError):  # same error, broader class
            create_solver("jra", "MAGIC")

    def test_package_level_discovery_matches_registry(self):
        assert available_cra_solvers() == available_solvers("cra")
        assert available_jra_solvers() == available_solvers("jra")


class TestProblemMutationHooks:
    def test_add_paper_event(self):
        problem = _service_problem()
        events: list[ProblemMutation] = []
        problem.add_mutation_listener(events.append)
        derived = problem.with_additional_paper(_late_paper(problem))
        assert [event.kind for event in events] == ["add_paper"]
        assert events[0].source is problem
        assert events[0].result is derived
        assert events[0].papers == ("late-submission",)

    def test_listeners_carry_over_to_derived_problems(self):
        problem = _service_problem()
        events: list[str] = []
        problem.add_mutation_listener(lambda event: events.append(event.kind))
        derived = problem.with_additional_paper(_late_paper(problem))
        derived.without_reviewer(derived.reviewer_ids[0])
        assert events == ["add_paper", "remove_reviewer"]

    def test_remove_listener(self):
        problem = _service_problem()
        events: list[str] = []
        listener = problem.add_mutation_listener(lambda event: events.append(event.kind))
        problem.remove_mutation_listener(listener)
        problem.with_additional_paper(_late_paper(problem))
        assert events == []

    def test_duplicate_paper_rejected(self):
        problem = _service_problem()
        with pytest.raises(ConfigurationError):
            problem.with_additional_paper(problem.papers[0])

    def test_unknown_reviewer_rejected(self):
        problem = _service_problem()
        with pytest.raises(KeyError):
            problem.without_reviewer("nobody")


class TestScoreCacheInvalidation:
    """The acceptance criterion: mutations must not trigger full rebuilds."""

    def _count_scoring_calls(self, monkeypatch):
        calls: list[tuple[int, int]] = []
        original = ScoringFunction.score_matrix

        def counting(self, reviewer_matrix, paper_matrix):
            calls.append((reviewer_matrix.shape[0], paper_matrix.shape[0]))
            return original(self, reviewer_matrix, paper_matrix)

        monkeypatch.setattr(ScoringFunction, "score_matrix", counting)
        return calls

    def test_add_paper_scores_exactly_one_column(self, monkeypatch, solved_engine):
        solved_engine.warm()
        calls = self._count_scoring_calls(monkeypatch)
        solved_engine.add_paper(_late_paper(solved_engine.problem))
        # The delta layer scores exactly the new column at mutation time;
        # the cache adopts the carried matrix by reference instead of
        # re-scoring (or even copying) anything.
        solved_engine.journal_query("late-submission")
        num_reviewers = solved_engine.problem.num_reviewers
        assert calls == [(num_reviewers, 1)]
        assert solved_engine.cache.stats.full_builds == 1
        assert solved_engine.cache.stats.columns_adopted == 1
        assert solved_engine.cache.stats.partial_updates == 0
        assert not solved_engine.cache.dirty_papers

    def test_withdraw_reviewer_scores_nothing(self, monkeypatch, solved_engine):
        solved_engine.warm()
        calls = self._count_scoring_calls(monkeypatch)
        victim = solved_engine.problem.reviewer_ids[0]
        solved_engine.withdraw_reviewer(victim)
        solved_engine.journal_query(solved_engine.problem.paper_ids[0])
        assert calls == []
        assert solved_engine.cache.stats.rows_removed == 1
        assert solved_engine.cache.stats.full_builds == 1

    def test_cache_matrix_stays_correct_after_mutations(self, solved_engine):
        solved_engine.warm()
        solved_engine.add_paper(_late_paper(solved_engine.problem))
        solved_engine.withdraw_reviewer(solved_engine.problem.reviewer_ids[-1])
        problem = solved_engine.problem
        expected = problem.scoring.score_matrix(
            problem.reviewer_matrix, problem.paper_matrix
        )
        np.testing.assert_allclose(solved_engine.cache.matrix(), expected)

    def test_top_reviewer_index_tracks_the_pool(self, engine):
        problem = engine.problem
        paper_id = problem.paper_ids[0]
        top = engine.cache.top_reviewers(paper_id, 3)
        assert len(top) == 3
        scores = [score for _, score in top]
        assert scores == sorted(scores, reverse=True)
        best_reviewer = top[0][0]
        engine.withdraw_reviewer(best_reviewer)
        refreshed = engine.cache.top_reviewers(paper_id, 3)
        assert best_reviewer not in [reviewer_id for reviewer_id, _ in refreshed]


class TestEngineMutations:
    def test_add_paper_staffs_without_touching_existing_groups(self, solved_engine):
        before = {
            paper_id: solved_engine.assignment.reviewers_of(paper_id)
            for paper_id in solved_engine.problem.paper_ids
        }
        delta = solved_engine.add_paper(_late_paper(solved_engine.problem))
        assert delta.kind == "add_paper"
        assert delta.affected_papers == ("late-submission",)
        assert delta.removed_pairs == ()
        assert len(delta.added_pairs) == solved_engine.problem.group_size
        for paper_id, group in before.items():
            assert solved_engine.assignment.reviewers_of(paper_id) == group
        solved_engine.problem.validate_assignment(solved_engine.assignment)

    def test_add_paper_requires_spare_capacity(self):
        problem = make_problem(num_papers=8, num_reviewers=4, num_topics=6,
                               group_size=2, seed=13)
        engine = AssignmentEngine(problem)
        engine.solve("SDGA")
        with pytest.raises(InfeasibleProblemError):
            engine.add_paper(_late_paper(problem))
        # The failed mutation must not have changed the engine.
        assert engine.problem.num_papers == 8
        assert engine.revision == 0

    def test_infeasible_withdrawal_rolls_back_completely(self):
        # Minimal workload: capacity is exactly exhausted, so any
        # withdrawal is infeasible and must leave no trace.
        problem = make_problem(num_papers=8, num_reviewers=4, num_topics=6,
                               group_size=2, seed=13)
        engine = AssignmentEngine(problem)
        engine.solve("SDGA")
        engine.warm()
        before = engine.stats()
        with pytest.raises(InfeasibleProblemError):
            engine.withdraw_reviewer(problem.reviewer_ids[0])
        after = engine.stats()
        assert engine.problem is problem
        assert after["revision"] == before["revision"]
        assert after["remove_reviewer"] == before["remove_reviewer"]
        assert after["cache"]["rows_removed"] == before["cache"]["rows_removed"]
        # The engine still serves correctly afterwards.
        assert engine.evaluate(include_ratio=False)["score"] > 0

    def test_discarded_engines_do_not_accumulate_listeners(self):
        import gc

        problem = _service_problem()
        for _ in range(5):
            AssignmentEngine(problem)
        gc.collect()
        # Dead listeners unsubscribe themselves on the next mutation.
        derived = problem.with_additional_paper(_late_paper(problem))
        assert len(problem._mutation_listeners) == 0
        assert len(derived._mutation_listeners) == 0

    def test_withdraw_reviewer_delta_reports_changed_pairs(self, solved_engine):
        victim = max(solved_engine.problem.reviewer_ids,
                     key=solved_engine.assignment.load)
        affected = solved_engine.assignment.papers_of(victim)
        delta = solved_engine.withdraw_reviewer(victim)
        assert set(delta.affected_papers) == set(affected)
        victim_pairs = {(victim, paper_id) for paper_id in affected}
        assert victim_pairs <= set(delta.removed_pairs)
        assert victim not in solved_engine.problem.reviewer_ids
        solved_engine.problem.validate_assignment(solved_engine.assignment)

    def test_mutations_without_assignment_only_update_the_problem(self, engine):
        delta = engine.add_paper(_late_paper(engine.problem))
        assert delta.added_pairs == ()
        assert engine.assignment is None
        assert engine.problem.num_papers == 11

    def test_update_bids_rejects_unknown_ids_atomically(self, engine):
        paper_id = engine.problem.paper_ids[0]
        reviewer_id = engine.problem.reviewer_ids[0]
        with pytest.raises(KeyError):
            engine.update_bids([(reviewer_id, paper_id, 0.5), ("ghost", paper_id, 0.5)])
        assert len(engine.bids) == 0
        assert engine.update_bids([(reviewer_id, paper_id, 0.5)]) == 1
        assert engine.bids.get(reviewer_id, paper_id) == 0.5


class TestJournalQueries:
    def test_query_matches_direct_bba(self, engine):
        from repro.jra.bba import BranchAndBoundSolver

        paper_id = engine.problem.paper_ids[0]
        answer = engine.journal_query(paper_id)
        direct = BranchAndBoundSolver().solve(engine.problem.to_jra(paper_id))
        assert answer.best.score == pytest.approx(direct.score)
        assert not answer.cache_hit

    def test_repeated_queries_hit_the_jra_cache(self, engine):
        paper_id = engine.problem.paper_ids[0]
        assert not engine.journal_query(paper_id).cache_hit
        assert engine.journal_query(paper_id).cache_hit
        assert engine.stats()["journal_cache_hits"] == 1

    def test_top_k_groups_are_ranked(self, engine):
        answer = engine.journal_query(engine.problem.paper_ids[0], top_k=3)
        assert [group.rank for group in answer.groups] == [1, 2, 3]
        scores = [group.score for group in answer.groups]
        assert scores == sorted(scores, reverse=True)

    def test_pool_size_pruning_keeps_only_top_candidates(self, engine):
        paper_id = engine.problem.paper_ids[0]
        pool = 4
        answer = engine.journal_query(paper_id, pool_size=pool)
        shortlist = {r for r, _ in engine.cache.top_reviewers(paper_id, pool)}
        assert set(answer.best.reviewer_ids) <= shortlist

    def test_inline_paper_query_does_not_join_the_problem(self, engine):
        inline = _late_paper(engine.problem, paper_id="visitor")
        answer = engine.journal_query(inline)
        assert answer.paper_id == "visitor"
        assert len(answer.best.reviewer_ids) == engine.problem.group_size
        assert "visitor" not in engine.problem.paper_ids
        assert answer.shortlist == ()

    def test_unknown_paper_id_raises(self, engine):
        with pytest.raises(KeyError):
            engine.journal_query("nope")


class TestSnapshots:
    def test_round_trip_preserves_state(self, tmp_path, solved_engine):
        solved_engine.update_bids(
            [(solved_engine.problem.reviewer_ids[0], solved_engine.problem.paper_ids[0], 0.9)]
        )
        path = tmp_path / "engine.json"
        solved_engine.save_snapshot(path)

        restored = AssignmentEngine.load(path)
        assert restored.problem.num_papers == solved_engine.problem.num_papers
        assert restored.assignment == solved_engine.assignment
        assert len(restored.bids) == 1
        original = solved_engine.evaluate(include_ratio=False)
        resumed = restored.evaluate(include_ratio=False)
        assert resumed["score"] == pytest.approx(original["score"])

    def test_snapshot_before_solve_has_no_assignment(self, tmp_path, engine):
        path = tmp_path / "engine.json"
        engine.save_snapshot(path)
        snapshot = load_engine_snapshot(path)
        assert snapshot.assignment is None
        restored = AssignmentEngine.from_snapshot(snapshot)
        assert restored.assignment is None

    def test_version_mismatch_rejected(self, tmp_path, engine):
        import json

        path = tmp_path / "engine.json"
        engine.save_snapshot(path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError):
            load_engine_snapshot(path)


class TestSessionBatching:
    def test_compatible_journal_runs_are_batched(self, engine):
        session = EngineSession(engine)
        for paper_id in engine.problem.paper_ids[:4]:
            session.submit(JournalQuery(paper_id=paper_id))
        session.submit(SolveRequest(solver="SDGA"))
        responses = session.drain()
        assert all(response.ok for response in responses)
        stats = session.stats()["session"]
        assert stats["journal_batches"] == 1
        assert stats["batched_queries"] == 4

    def test_incompatible_queries_break_the_batch(self, engine):
        session = EngineSession(engine)
        session.submit(JournalQuery(paper_id=engine.problem.paper_ids[0]))
        session.submit(JournalQuery(paper_id=engine.problem.paper_ids[1], top_k=2))
        responses = session.drain()
        assert all(response.ok for response in responses)
        assert session.stats()["session"]["journal_batches"] == 0

    def test_failures_become_error_responses(self, engine):
        session = EngineSession(engine)
        session.submit(JournalQuery(paper_id="nope"))
        (response,) = session.drain()
        assert not response.ok
        assert "nope" in response.error
        assert session.stats()["session"]["failed"] == 1


class TestIncrementalExtensionsRunThroughEngine:
    def test_update_reports_pair_deltas(self):
        from repro.cra.sdga import StageDeepeningGreedySolver
        from repro.extensions.incremental import withdraw_reviewer

        problem = _service_problem()
        assignment = StageDeepeningGreedySolver().solve(problem).assignment
        victim = max(problem.reviewer_ids, key=assignment.load)
        update = withdraw_reviewer(problem, assignment, victim)
        assert update.removed_pairs
        assert all(reviewer_id == victim for reviewer_id, _ in update.removed_pairs)
        assert len(update.added_pairs) == len(update.removed_pairs)

    def test_no_listener_leaks_on_the_callers_problem(self):
        from repro.cra.sdga import StageDeepeningGreedySolver
        from repro.extensions.incremental import assign_additional_paper

        problem = _service_problem()
        assignment = StageDeepeningGreedySolver().solve(problem).assignment
        assign_additional_paper(problem, assignment, _late_paper(problem))
        assert problem._mutation_listeners == []
