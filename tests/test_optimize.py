"""Unit tests for the LP/ILP substrate (model builder, simplex, branch & bound)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import (
    ConfigurationError,
    InfeasibleLinearProgramError,
    UnboundedProblemError,
)
from repro.optimize.branch_and_bound import BranchAndBoundSolver
from repro.optimize.model import LinearProgram, ModelBuilder, Sense
from repro.optimize.simplex import solve_linear_program


def _knapsack_program(values, weights, capacity):
    builder = ModelBuilder()
    items = [builder.add_binary_variable(f"item{i}") for i in range(len(values))]
    builder.add_constraint(
        {item: float(weights[i]) for i, item in enumerate(items)},
        Sense.LESS_EQUAL,
        float(capacity),
    )
    builder.set_objective({item: float(values[i]) for i, item in enumerate(items)})
    return builder.build(), items


class TestModelBuilder:
    def test_variable_bounds_validation(self):
        builder = ModelBuilder()
        with pytest.raises(ConfigurationError):
            builder.add_variable(lower=2.0, upper=1.0)
        with pytest.raises(ConfigurationError):
            builder.add_variable(lower=0.0, upper=5.0, integer=True)

    def test_constraint_with_unknown_variable(self):
        builder = ModelBuilder()
        builder.add_variable()
        with pytest.raises(ConfigurationError):
            builder.add_constraint({3: 1.0}, Sense.LESS_EQUAL, 1.0)

    def test_build_requires_variables(self):
        with pytest.raises(ConfigurationError):
            ModelBuilder().build()

    def test_greater_equal_converted_to_less_equal(self):
        builder = ModelBuilder()
        x = builder.add_variable("x")
        builder.add_constraint({x: 1.0}, ">=", 2.0)
        builder.set_objective({x: -1.0})
        program = builder.build()
        assert program.upper_matrix[0, 0] == -1.0
        assert program.upper_rhs[0] == -2.0

    def test_program_feasibility_check(self):
        program, _ = _knapsack_program([1, 2], [1, 1], 1)
        assert program.is_feasible(np.array([1.0, 0.0]))
        assert not program.is_feasible(np.array([1.0, 1.0]))  # capacity violated
        assert not program.is_feasible(np.array([0.5, 0.0]))  # integrality violated
        assert not program.is_feasible(np.array([0.0]))  # wrong shape
        assert program.objective_value(np.array([0.0, 1.0])) == pytest.approx(2.0)
        assert program.num_variables == 2
        assert program.num_constraints == 1


class TestSimplex:
    def test_simple_maximisation(self):
        # max 3x + 2y s.t. x + y <= 4, x <= 2 -> optimum 10 at (2, 2)
        builder = ModelBuilder()
        x = builder.add_variable("x")
        y = builder.add_variable("y")
        builder.add_constraint({x: 1.0, y: 1.0}, Sense.LESS_EQUAL, 4.0)
        builder.add_constraint({x: 1.0}, Sense.LESS_EQUAL, 2.0)
        builder.set_objective({x: 3.0, y: 2.0})
        solution = solve_linear_program(builder.build())
        assert solution.objective == pytest.approx(10.0)
        assert solution.values == pytest.approx(np.array([2.0, 2.0]))

    def test_equality_constraints(self):
        # max x + y s.t. x + y == 3, x <= 1 -> optimum 3
        builder = ModelBuilder()
        x = builder.add_variable("x", upper=1.0)
        y = builder.add_variable("y")
        builder.add_constraint({x: 1.0, y: 1.0}, Sense.EQUAL, 3.0)
        builder.set_objective({x: 1.0, y: 1.0})
        solution = solve_linear_program(builder.build())
        assert solution.objective == pytest.approx(3.0)
        assert solution.values[0] <= 1.0 + 1e-9

    def test_infeasible_program(self):
        builder = ModelBuilder()
        x = builder.add_variable("x", upper=1.0)
        builder.add_constraint({x: 1.0}, Sense.GREATER_EQUAL, 2.0)
        builder.set_objective({x: 1.0})
        with pytest.raises(InfeasibleLinearProgramError):
            solve_linear_program(builder.build())

    def test_unbounded_program(self):
        builder = ModelBuilder()
        x = builder.add_variable("x")
        builder.set_objective({x: 1.0})
        with pytest.raises(UnboundedProblemError):
            solve_linear_program(builder.build())

    def test_variable_lower_bound_shift(self):
        # max -x s.t. x >= 2 (via bound)  -> optimum at x = 2
        builder = ModelBuilder()
        x = builder.add_variable("x", lower=2.0, upper=10.0)
        builder.set_objective({x: -1.0})
        solution = solve_linear_program(builder.build())
        assert solution.values[0] == pytest.approx(2.0)
        assert solution.objective == pytest.approx(-2.0)

    def test_matches_scipy_on_random_lps(self):
        from scipy.optimize import linprog

        rng = np.random.default_rng(4)
        for trial in range(10):
            num_vars, num_cons = 4, 3
            objective = rng.random(num_vars)
            matrix = rng.random((num_cons, num_vars))
            rhs = rng.random(num_cons) * 2.0 + 0.5
            builder = ModelBuilder()
            variables = [builder.add_variable(upper=3.0) for _ in range(num_vars)]
            for row in range(num_cons):
                builder.add_constraint(
                    {variables[col]: float(matrix[row, col]) for col in range(num_vars)},
                    Sense.LESS_EQUAL,
                    float(rhs[row]),
                )
            builder.set_objective(
                {variables[col]: float(objective[col]) for col in range(num_vars)}
            )
            ours = solve_linear_program(builder.build())
            reference = linprog(
                c=-objective,
                A_ub=matrix,
                b_ub=rhs,
                bounds=[(0.0, 3.0)] * num_vars,
                method="highs",
            )
            assert ours.objective == pytest.approx(-reference.fun, rel=1e-6, abs=1e-8)


class TestBranchAndBound:
    @pytest.mark.parametrize("backend", ["simplex", "highs"])
    def test_knapsack_optimum(self, backend):
        program, _ = _knapsack_program(
            values=[10, 13, 18, 31, 7, 15], weights=[2, 3, 4, 6, 1, 3], capacity=10
        )
        solver = BranchAndBoundSolver(backend=backend)
        solution = solver.solve(program)
        assert solution.objective == pytest.approx(53.0)  # items of value 31 + 15 + 7
        assert solution.is_optimal

    def test_knapsack_matches_dynamic_programming(self):
        rng = np.random.default_rng(6)
        for _ in range(5):
            values = rng.integers(1, 20, size=7).tolist()
            weights = rng.integers(1, 8, size=7).tolist()
            capacity = int(sum(weights) * 0.5)
            program, _ = _knapsack_program(values, weights, capacity)
            solution = BranchAndBoundSolver(backend="highs").solve(program)

            # Reference: classic dynamic program.
            best = np.zeros(capacity + 1)
            for value, weight in zip(values, weights):
                for remaining in range(capacity, weight - 1, -1):
                    best[remaining] = max(best[remaining], best[remaining - weight] + value)
            assert solution.objective == pytest.approx(float(best[capacity]))

    def test_infeasible_integer_program(self):
        builder = ModelBuilder()
        x = builder.add_binary_variable("x")
        builder.add_constraint({x: 1.0}, Sense.GREATER_EQUAL, 2.0)
        builder.set_objective({x: 1.0})
        with pytest.raises(InfeasibleLinearProgramError):
            BranchAndBoundSolver(backend="simplex").solve(builder.build())

    def test_node_limit_returns_incumbent(self):
        program, _ = _knapsack_program(
            values=list(range(1, 13)), weights=[3] * 12, capacity=18
        )
        solution = BranchAndBoundSolver(backend="highs", node_limit=3).solve(program)
        assert solution.nodes_explored <= 3
        # The incumbent is feasible even if not proven optimal.
        assert program.is_feasible(solution.values)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            BranchAndBoundSolver(backend="cplex")

    def test_pure_lp_handled_without_branching(self):
        builder = ModelBuilder()
        x = builder.add_variable("x", upper=2.5)
        builder.set_objective({x: 2.0})
        solution = BranchAndBoundSolver(backend="simplex").solve(builder.build())
        assert solution.objective == pytest.approx(5.0)
        assert solution.nodes_explored == 1
