"""Tests for the ``wgrap`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.data.io import load_assignment, load_problem


@pytest.fixture
def problem_file(tmp_path):
    path = tmp_path / "problem.json"
    exit_code = main(
        [
            "generate",
            str(path),
            "--papers",
            "10",
            "--reviewers",
            "6",
            "--topics",
            "8",
            "--group-size",
            "2",
            "--seed",
            "3",
        ]
    )
    assert exit_code == 0
    return path


class TestParser:
    def test_requires_a_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_solve_method_choices(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["solve", "problem.json", "out.json", "--method", "MAGIC"])


class TestGenerate:
    def test_generates_a_loadable_problem(self, problem_file, capsys):
        problem = load_problem(problem_file)
        assert problem.num_papers == 10
        assert problem.num_reviewers == 6
        assert problem.num_topics == 8
        payload = json.loads(problem_file.read_text())
        assert payload["group_size"] == 2

    def test_prints_a_summary(self, tmp_path, capsys):
        main(["generate", str(tmp_path / "p.json"), "--papers", "6", "--reviewers", "5",
              "--topics", "6"])
        output = capsys.readouterr().out
        assert "6 papers" in output
        assert "5 reviewers" in output


class TestSolveAndEvaluate:
    def test_solve_writes_valid_assignment(self, problem_file, tmp_path, capsys):
        out = tmp_path / "assignment.json"
        exit_code = main(["solve", str(problem_file), str(out), "--method", "SDGA"])
        assert exit_code == 0
        problem = load_problem(problem_file)
        assignment = load_assignment(out)
        problem.validate_assignment(assignment)
        output = capsys.readouterr().out
        assert "coverage score" in output

    def test_evaluate_reports_metrics(self, problem_file, tmp_path, capsys):
        out = tmp_path / "assignment.json"
        main(["solve", str(problem_file), str(out), "--method", "Greedy"])
        capsys.readouterr()
        exit_code = main(["evaluate", str(problem_file), str(out)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "coverage score" in output
        assert "optimality ratio" in output

    def test_journal_lists_a_group(self, problem_file, capsys):
        problem = load_problem(problem_file)
        paper_id = problem.paper_ids[0]
        exit_code = main(["journal", str(problem_file), paper_id])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "best group" in output
        listed = [line for line in output.splitlines() if line.startswith("  - ")]
        assert len(listed) == problem.group_size

    def test_journal_with_group_size_override(self, problem_file, capsys):
        problem = load_problem(problem_file)
        paper_id = problem.paper_ids[1]
        main(["journal", str(problem_file), paper_id, "--group-size", "3"])
        output = capsys.readouterr().out
        listed = [line for line in output.splitlines() if line.startswith("  - ")]
        assert len(listed) == 3
