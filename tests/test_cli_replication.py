"""CLI front ends of the replication feature: the ``wgrap wal`` offline
inspector, the ``serve`` replication flags, and a full subprocess
failover — primary and standby as real ``wgrap serve --tcp`` processes,
the primary SIGKILLed, the standby promoted over the wire."""

from __future__ import annotations

import json
import time

import pytest

from repro.cli import main
from repro.durability import DurabilityConfig, TenantJournal
from repro.service.requests import request_from_dict
from repro.service.session import EngineSession

from tests.test_cli_serve import ServeProcess
from tests.test_replication import small_engine


@pytest.fixture
def wal_root(tmp_path):
    """A two-tenant WAL root with a seq gap and a torn tail."""
    root = tmp_path / "wal"
    for tenant_id, seqs in [("conf", [1, 2, 4]), ("ws", [1])]:
        journal = TenantJournal(DurabilityConfig(root=root), tenant_id)
        engine = small_engine()
        journal.initialise(engine)
        session = EngineSession(engine)
        rid, pid = engine.problem.reviewer_ids, engine.problem.paper_ids
        for index, seq in enumerate(seqs):
            request = request_from_dict({
                "kind": "update_bids",
                "bids": [[rid[index], pid[index], 0.5]],
                "seq": seq,
            })
            journal.append(seq, request)
            session.dispatch(request)
        journal.sync_batch()
        journal.close()
    # Tear the tail of conf's newest segment: a crash mid-append.
    from repro.durability import segment_paths

    segment = segment_paths(root / "conf")[-1]
    with segment.open("ab") as handle:
        handle.write(b'{"v": 1, "seq": 5, "torn')
    return root


class TestWalCommand:
    def test_text_report_lists_tenants_segments_and_kinds(
        self, wal_root, capsys
    ):
        assert main(["wal", str(wal_root)]) == 0
        out = capsys.readouterr().out
        assert "2 tenant journal(s)" in out
        assert "conf: checkpoint_seq=0 last_seq=4 records=3" in out
        assert "ws: checkpoint_seq=0 last_seq=1 records=1" in out
        assert "update_bids: 3" in out
        assert "torn-tail bytes will be dropped at recovery" in out

    def test_json_report_is_machine_readable(self, wal_root, capsys):
        assert main(["wal", str(wal_root), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        conf = report["tenants"]["conf"]
        assert conf["has_checkpoint"] is True
        assert conf["checkpoint_seq"] == 0
        assert conf["last_seq"] == 4
        assert conf["records"] == 3
        assert conf["kinds"] == {"update_bids": 3}
        assert conf["dropped_bytes"] > 0
        assert conf["segments"]
        assert report["tenants"]["ws"]["dropped_bytes"] == 0

    def test_single_tenant_filter(self, wal_root, capsys):
        assert main(["wal", str(wal_root), "--tenant", "ws", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert list(report["tenants"]) == ["ws"]

    def test_missing_root_and_tenant_are_runtime_errors(
        self, wal_root, tmp_path, capsys
    ):
        assert main(["wal", str(tmp_path / "nope")]) == 2
        assert "no WAL root" in capsys.readouterr().err
        assert main(["wal", str(wal_root), "--tenant", "ghost"]) == 2
        assert "no journal directory for tenant" in capsys.readouterr().err

    def test_empty_root_reports_no_journals(self, tmp_path, capsys):
        root = tmp_path / "empty"
        root.mkdir()
        assert main(["wal", str(root)]) == 0
        assert "no tenant journals" in capsys.readouterr().out


class TestServeReplicationFlags:
    def test_replication_flags_need_a_wal_dir(self, capsys):
        code = main(["serve", "--tcp", "--replicate-to", "127.0.0.1:9999"])
        assert code == 2
        assert "--replicate-to/--standby-of need --wal-dir" in (
            capsys.readouterr().err
        )

    def test_primary_and_standby_roles_are_mutually_exclusive(
        self, tmp_path, capsys
    ):
        code = main([
            "serve", "--tcp", "--wal-dir", str(tmp_path / "wal"),
            "--replicate-to", "127.0.0.1:9999",
            "--standby-of", "127.0.0.1:9998",
        ])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_standby_cannot_take_a_problem(self, tmp_path, capsys):
        problem = tmp_path / "p.json"
        assert main([
            "generate", str(problem), "--papers", "6", "--reviewers", "6",
            "--topics", "4", "--group-size", "2", "--seed", "1",
        ]) == 0
        capsys.readouterr()
        code = main([
            "serve", "--tcp", "--problem", str(problem),
            "--wal-dir", str(tmp_path / "wal"),
            "--standby-of", "127.0.0.1:9999",
        ])
        assert code == 2
        assert "standby" in capsys.readouterr().err

    def test_malformed_endpoint_is_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "serve", "--tcp", "--wal-dir", str(tmp_path / "wal"),
                "--replicate-to", "not-an-endpoint",
            ])

    def test_applied_cap_bounds_the_idempotency_map(self, tmp_path):
        """``--applied-cap 1`` evicts dedup keys; the counter proves it."""
        problem = tmp_path / "p.json"
        assert main([
            "generate", str(problem), "--papers", "8", "--reviewers", "8",
            "--topics", "6", "--group-size", "2", "--seed", "2",
        ]) == 0
        server = ServeProcess(
            "--problem", str(problem), "--tenant", "conf",
            "--wal-dir", str(tmp_path / "wal"), "--applied-cap", "1",
        )
        try:
            first, second, metrics = server.call(
                {"kind": "update_bids",
                 "bids": [["reviewer-0000", "paper-0000", 0.9]], "seq": 1},
                {"kind": "update_bids",
                 "bids": [["reviewer-0001", "paper-0001", 0.8]], "seq": 2},
                {"kind": "metrics"},
            )
            assert first["ok"] and second["ok"]
            evicted = metrics["payload"]["metrics"].get(
                "durability.applied_evicted", 0
            )
            assert evicted >= 1
        finally:
            server.kill()


class TestSubprocessFailover:
    """The whole topology as real processes: ``--replicate-to`` /
    ``--standby-of`` on the CLI, SIGKILL for the crash, promotion and
    exactly-once over the wire, ``wgrap wal`` for the post-mortem."""

    LATE = {"id": "late", "vector": [0.2, 0.1, 0.1, 0.1, 0.1, 0.1, 0.2, 0.1]}

    def _wait_caught_up(self, primary: ServeProcess, timeout: float = 20.0):
        deadline = time.monotonic() + timeout
        while True:
            (status,) = primary.call({"kind": "replication_status"})
            assert status["ok"], status
            if status["payload"]["replication"]["caught_up"]:
                return status
            if time.monotonic() > deadline:
                raise TimeoutError(f"never caught up: {status}")
            time.sleep(0.05)

    def test_sigkill_primary_promote_standby_exactly_once(self, tmp_path):
        problem = tmp_path / "p.json"
        assert main([
            "generate", str(problem), "--papers", "10", "--reviewers", "6",
            "--topics", "8", "--group-size", "2", "--seed", "3",
        ]) == 0

        standby = ServeProcess(
            "--wal-dir", str(tmp_path / "wal-s"),
            "--standby-of", "127.0.0.1:1",  # informational until hello
        )
        primary = None
        try:
            assert standby.info["role"] == "standby"
            primary = ServeProcess(
                "--problem", str(problem), "--tenant", "conf",
                "--wal-dir", str(tmp_path / "wal-p"),
                "--replicate-to", f"127.0.0.1:{standby.port}",
            )
            assert primary.info["role"] == "primary"
            solve, add = primary.call(
                {"kind": "solve", "solver": "Greedy", "seq": 1},
                {"kind": "add_paper", "paper": self.LATE,
                 "reviewer_workload": 6, "seq": 2},
            )
            assert solve["ok"], solve
            assert add["ok"], add
            assert add["payload"]["num_papers"] == 11
            self._wait_caught_up(primary)

            primary.proc.kill()  # SIGKILL: a crash, not a drain
            primary.proc.wait(timeout=5)

            (promoted,) = standby.call({"kind": "promote"})
            assert promoted["ok"], promoted
            assert promoted["payload"]["tenants"] == ["conf"]

            # Exactly-once across the switch: the replicated applied map
            # answers the retried mutation without a second application.
            (repeat,) = standby.call({
                "kind": "add_paper", "paper": self.LATE,
                "reviewer_workload": 6, "seq": 2, "tenant": "conf",
            })
            assert repeat["ok"], repeat
            assert repeat["payload"]["num_papers"] == 11
            (stats,) = standby.call({"kind": "stats", "tenant": "conf"})
            assert stats["payload"]["engine"]["revision"] == 1

            (goodbye,) = standby.call({"kind": "shutdown"})
            assert goodbye["ok"]
            assert standby.wait() == 0

            # Post-mortem: both WAL roots are inspectable offline.
            import io
            from contextlib import redirect_stdout

            for root in ("wal-p", "wal-s"):
                buffer = io.StringIO()
                with redirect_stdout(buffer):
                    assert main(["wal", str(tmp_path / root), "--json"]) == 0
                report = json.loads(buffer.getvalue())
                assert "conf" in report["tenants"]
        finally:
            standby.kill()
            if primary is not None:
                primary.kill()
