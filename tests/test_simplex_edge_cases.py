"""Additional edge-case tests for the simplex solver and the ILP driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InfeasibleLinearProgramError
from repro.optimize.branch_and_bound import BranchAndBoundSolver
from repro.optimize.model import ModelBuilder, Sense
from repro.optimize.simplex import solve_linear_program


class TestDegenerateAndRedundantPrograms:
    def test_redundant_constraints_do_not_confuse_the_solver(self):
        builder = ModelBuilder()
        x = builder.add_variable("x", upper=4.0)
        y = builder.add_variable("y", upper=4.0)
        builder.add_constraint({x: 1.0, y: 1.0}, Sense.LESS_EQUAL, 5.0)
        builder.add_constraint({x: 2.0, y: 2.0}, Sense.LESS_EQUAL, 10.0)  # same, scaled
        builder.add_constraint({x: 1.0, y: 1.0}, Sense.LESS_EQUAL, 7.0)   # slack
        builder.set_objective({x: 1.0, y: 1.0})
        solution = solve_linear_program(builder.build())
        assert solution.objective == pytest.approx(5.0)

    def test_degenerate_vertex(self):
        # Multiple constraints meet at the optimum (0, 2): Bland's rule must
        # not cycle.
        builder = ModelBuilder()
        x = builder.add_variable("x")
        y = builder.add_variable("y")
        builder.add_constraint({x: 1.0, y: 1.0}, Sense.LESS_EQUAL, 2.0)
        builder.add_constraint({x: 2.0, y: 1.0}, Sense.LESS_EQUAL, 2.0)
        builder.add_constraint({y: 1.0}, Sense.LESS_EQUAL, 2.0)
        builder.set_objective({y: 3.0, x: 1.0})
        solution = solve_linear_program(builder.build())
        assert solution.objective == pytest.approx(6.0)
        assert solution.values[1] == pytest.approx(2.0)

    def test_equality_only_program(self):
        builder = ModelBuilder()
        x = builder.add_variable("x")
        y = builder.add_variable("y")
        builder.add_constraint({x: 1.0, y: 1.0}, Sense.EQUAL, 4.0)
        builder.add_constraint({x: 1.0, y: -1.0}, Sense.EQUAL, 2.0)
        builder.set_objective({x: 1.0, y: 2.0})
        solution = solve_linear_program(builder.build())
        assert solution.values == pytest.approx(np.array([3.0, 1.0]))
        assert solution.objective == pytest.approx(5.0)

    def test_contradictory_equalities_are_infeasible(self):
        builder = ModelBuilder()
        x = builder.add_variable("x")
        builder.add_constraint({x: 1.0}, Sense.EQUAL, 1.0)
        builder.add_constraint({x: 1.0}, Sense.EQUAL, 2.0)
        builder.set_objective({x: 1.0})
        with pytest.raises(InfeasibleLinearProgramError):
            solve_linear_program(builder.build())

    def test_zero_objective(self):
        builder = ModelBuilder()
        x = builder.add_variable("x", upper=1.0)
        builder.add_constraint({x: 1.0}, Sense.LESS_EQUAL, 1.0)
        builder.set_objective({})
        solution = solve_linear_program(builder.build())
        assert solution.objective == pytest.approx(0.0)


class TestBranchAndBoundEdgeCases:
    def test_all_variables_fixed_by_constraints(self):
        builder = ModelBuilder()
        x = builder.add_binary_variable("x")
        y = builder.add_binary_variable("y")
        builder.add_constraint({x: 1.0}, Sense.EQUAL, 1.0)
        builder.add_constraint({y: 1.0}, Sense.EQUAL, 0.0)
        builder.set_objective({x: 2.0, y: 5.0})
        solution = BranchAndBoundSolver(backend="simplex").solve(builder.build())
        assert solution.objective == pytest.approx(2.0)
        assert solution.values == pytest.approx(np.array([1.0, 0.0]))

    def test_equality_cardinality_constraint(self):
        # Pick exactly two of four items: a miniature of the JRA group-size
        # constraint.
        builder = ModelBuilder()
        items = [builder.add_binary_variable(f"x{i}") for i in range(4)]
        builder.add_constraint({i: 1.0 for i in items}, Sense.EQUAL, 2.0)
        builder.set_objective({items[0]: 1.0, items[1]: 5.0, items[2]: 3.0, items[3]: 4.0})
        solution = BranchAndBoundSolver(backend="highs").solve(builder.build())
        assert solution.objective == pytest.approx(9.0)
        chosen = {index for index, value in enumerate(solution.values) if value > 0.5}
        assert chosen == {1, 3}

    def test_simplex_and_highs_backends_agree_on_random_knapsacks(self):
        rng = np.random.default_rng(3)
        for _ in range(3):
            values = rng.integers(1, 15, size=6)
            weights = rng.integers(1, 6, size=6)
            capacity = float(weights.sum()) * 0.4
            builder = ModelBuilder()
            items = [builder.add_binary_variable(f"x{i}") for i in range(6)]
            builder.add_constraint(
                {item: float(weights[i]) for i, item in enumerate(items)},
                Sense.LESS_EQUAL,
                capacity,
            )
            builder.set_objective(
                {item: float(values[i]) for i, item in enumerate(items)}
            )
            program = builder.build()
            simplex = BranchAndBoundSolver(backend="simplex").solve(program)
            highs = BranchAndBoundSolver(backend="highs").solve(program)
            assert simplex.objective == pytest.approx(highs.objective)
