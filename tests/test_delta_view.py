"""Regression tests for delta maintenance of compiled views.

The audit behind these tests (satellite of the incremental-maintenance
PR): ``dense_view()`` used to key its staleness check on the conflict
version only, and every structural mutation produced a stone-cold derived
problem — a full ``O(R * P * T)`` re-score before the next solve.  Now
every mutation event must yield a derived problem whose carried caches
are **bitwise-equal to a cold recompile** (the object path is the
oracle), and the serving path must absorb each mutation with
delta-proportional work:

* ``with_additional_paper`` — one appended column everywhere;
* ``without_reviewer`` — one dropped row, zero re-scoring;
* conflict edits — in-place feasibility-mask patches;
* arbitrary chains of the above.

A staleness bug found during the audit is pinned here too: the engine's
JRA sub-problem cache ignored conflict edits and kept serving exclusion
sets that no longer matched the live conflict container.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dense import DenseProblem
from repro.core.problem import WGRAPProblem
from repro.cra.greedy import GreedySolver
from repro.cra.local_search import LocalSearchRefiner
from repro.cra.sdga import StageDeepeningGreedySolver
from repro.data.synthetic import make_problem
from repro.service.engine import AssignmentEngine


def _instance(seed: int = 0, conflict_ratio: float = 0.08) -> WGRAPProblem:
    return make_problem(
        num_papers=10,
        num_reviewers=16,
        num_topics=8,
        group_size=2,
        reviewer_workload=4,
        seed=seed,
        conflict_ratio=conflict_ratio,
    )


def _late_paper(problem: WGRAPProblem, tag: str = "late"):
    import zlib

    from repro.core.entities import Paper

    # crc32, not hash(): str hashing is salted per process, which would
    # quietly vary the "pinned" late-paper vectors between runs.
    rng = np.random.default_rng(zlib.crc32(tag.encode("utf-8")))
    return Paper(id=tag, vector=rng.dirichlet(np.full(problem.num_topics, 0.7)))


def _cold_clone(problem: WGRAPProblem) -> WGRAPProblem:
    """The same instance rebuilt from its entities, with every cache cold."""
    return WGRAPProblem(
        papers=problem.papers,
        reviewers=problem.reviewers,
        group_size=problem.group_size,
        reviewer_workload=problem.reviewer_workload,
        conflicts=problem.conflicts,
        scoring=problem.scoring,
        validate_capacity=False,
    )


def _assert_view_matches_oracle(problem: WGRAPProblem) -> None:
    """The problem's (possibly delta-derived) view equals a full compile."""
    view = problem.dense_view()
    oracle = DenseProblem(_cold_clone(problem))
    assert view.num_reviewers == oracle.num_reviewers
    assert view.num_papers == oracle.num_papers
    assert np.array_equal(view.reviewer_matrix, oracle.reviewer_matrix)
    assert np.array_equal(view.paper_matrix, oracle.paper_matrix)
    assert np.array_equal(view.feasible, oracle.feasible)
    assert np.array_equal(view.paper_totals, oracle.paper_totals)
    assert np.array_equal(view.safe_totals, oracle.safe_totals)
    assert np.array_equal(view.zero_mass, oracle.zero_mass)
    assert view.reviewer_pos == oracle.reviewer_pos
    assert view.paper_pos == oracle.paper_pos


def _assert_pair_scores_match_oracle(problem: WGRAPProblem) -> None:
    assert problem.cached_pair_scores is not None
    oracle = _cold_clone(problem).warm_pair_scores()
    assert np.array_equal(problem.cached_pair_scores, oracle)


class TestDeltaDerivedViews:
    def test_add_paper_derives_instead_of_recompiling(self):
        problem = _instance()
        problem.dense_view()
        problem.warm_pair_scores()
        stats = problem.view_stats
        recompiles = stats.recompiles
        applies = stats.delta_applies

        derived = problem.with_additional_paper(_late_paper(problem))
        assert derived.view_stats is stats  # shared along the chain
        assert stats.delta_applies == applies + 1
        assert stats.recompiles == recompiles  # no new compile happened
        assert derived.versions.papers == problem.versions.papers + 1
        _assert_view_matches_oracle(derived)
        _assert_pair_scores_match_oracle(derived)

    def test_remove_reviewer_derives_without_rescoring(self):
        problem = _instance()
        problem.dense_view()
        warmed = problem.warm_pair_scores()
        stats = problem.view_stats
        recompiles = stats.recompiles

        victim = problem.reviewer_ids[3]
        derived = problem.without_reviewer(victim)
        assert stats.recompiles == recompiles
        assert derived.versions.reviewers == problem.versions.reviewers + 1
        # zero re-scoring: the carried matrix is a row-deleted copy
        assert np.array_equal(
            derived.cached_pair_scores, np.delete(warmed, 3, axis=0)
        )
        _assert_view_matches_oracle(derived)
        _assert_pair_scores_match_oracle(derived)

    def test_cold_problems_stay_cold(self):
        """A mutation of an unwarmed problem must not trigger eager work."""
        problem = _instance()
        applies = problem.view_stats.delta_applies
        derived = problem.with_additional_paper(_late_paper(problem))
        assert problem.view_stats.delta_applies == applies
        assert derived.cached_pair_scores is None
        # ... and the lazily compiled view is still correct
        _assert_view_matches_oracle(derived)

    def test_chained_mutations_with_conflict_edits_stay_exact(self):
        problem = _instance(seed=3)
        problem.dense_view()
        problem.warm_pair_scores()

        current = problem.with_additional_paper(_late_paper(problem, "late-1"))
        current.conflicts.add(current.reviewer_ids[0], "late-1")
        current = current.without_reviewer(current.reviewer_ids[5])
        current = current.with_additional_paper(_late_paper(current, "late-2"))
        current.conflicts.discard(current.reviewer_ids[0], "late-1")
        current = current.without_reviewer(current.reviewer_ids[1])

        _assert_view_matches_oracle(current)
        _assert_pair_scores_match_oracle(current)

    def test_compacted_changelog_falls_back_to_recompile(self):
        """A view that fell behind a compacted conflict log recompiles
        (correctly) instead of replaying an unavailable tail."""
        from repro.core.constraints import ConflictOfInterest

        problem = _instance(seed=13, conflict_ratio=0.0)
        view = problem.dense_view()
        reviewer_id, paper_id = problem.reviewer_ids[0], problem.paper_ids[0]
        for _ in range(ConflictOfInterest._LOG_LIMIT):
            problem.conflicts.add(reviewer_id, paper_id)
            problem.conflicts.discard(reviewer_id, paper_id)
        problem.conflicts.add(reviewer_id, paper_id)
        assert problem.conflicts.changes_since(view.versions.conflicts) is None
        recompiles_before = problem.view_stats.recompiles
        fresh = problem.dense_view()
        assert fresh is not view  # recompiled, not patched
        assert problem.view_stats.recompiles == recompiles_before + 1
        assert not bool(
            fresh.feasible[
                fresh.reviewer_pos[reviewer_id], fresh.paper_pos[paper_id]
            ]
        )
        _assert_view_matches_oracle(problem)

    @pytest.mark.parametrize("kind", ["add_paper", "remove_reviewer", "conflict"])
    def test_every_mutation_event_yields_a_correct_view(self, kind):
        problem = _instance(seed=kind.__hash__() % 7)
        problem.dense_view()  # warm, so the mutation goes down the delta path
        if kind == "add_paper":
            mutated = problem.with_additional_paper(_late_paper(problem))
        elif kind == "remove_reviewer":
            mutated = problem.without_reviewer(problem.reviewer_ids[-1])
        else:
            problem.conflicts.add(problem.reviewer_ids[2], problem.paper_ids[2])
            mutated = problem
        _assert_view_matches_oracle(mutated)


class TestSolverOutputsBitwiseEqualToRecompile:
    """Acceptance pin: delta-maintained state never changes any result."""

    def _mutated_pair(self):
        """The same mutated instance, once delta-maintained, once cold."""
        problem = _instance(seed=11)
        problem.dense_view()
        problem.warm_pair_scores()
        current = problem.with_additional_paper(_late_paper(problem, "late-a"))
        current = current.without_reviewer(current.reviewer_ids[2])
        current = current.with_additional_paper(_late_paper(current, "late-b"))
        return current, _cold_clone(current)

    def test_greedy(self):
        delta_problem, cold_problem = self._mutated_pair()
        fast = GreedySolver().solve(delta_problem)
        cold = GreedySolver().solve(cold_problem)
        assert fast.assignment == cold.assignment
        assert fast.score == cold.score

    def test_sdga(self):
        delta_problem, cold_problem = self._mutated_pair()
        fast = StageDeepeningGreedySolver().solve(delta_problem)
        cold = StageDeepeningGreedySolver().solve(cold_problem)
        assert fast.assignment == cold.assignment
        assert fast.score == cold.score

    def test_local_search(self):
        delta_problem, cold_problem = self._mutated_pair()
        base = StageDeepeningGreedySolver().solve(cold_problem).assignment
        fast, fast_stats = LocalSearchRefiner(max_rounds=3).refine(
            delta_problem, base
        )
        cold, cold_stats = LocalSearchRefiner(max_rounds=3).refine(
            cold_problem, base
        )
        assert fast == cold
        assert fast_stats["final_score"] == cold_stats["final_score"]

    @pytest.mark.parametrize(
        "solver", ["Greedy", "SDGA", "SM", "BRGG", "Ratio-Greedy", "Repair", "Bid-SDGA"]
    )
    def test_interleaved_mutation_chain_feeds_solvers_bitwise(self, solver):
        """All three mutation kinds interleaved — add -> conflict edit ->
        withdraw — carried by delta, then fed to a solve: the result must
        equal a cold recompile bit for bit (the PR-5 acceptance pin, at
        the registry level so newly registered solvers inherit it)."""
        from repro.service.registry import create_solver

        problem = _instance(seed=21, conflict_ratio=0.04)
        problem.dense_view()
        problem.warm_pair_scores()
        current = problem.with_additional_paper(_late_paper(problem, "late-x"))
        current.conflicts.add(current.reviewer_ids[1], "late-x")
        current = current.without_reviewer(current.reviewer_ids[4])
        cold = _cold_clone(current)

        fast = create_solver("cra", solver).solve(current)
        reference = create_solver("cra", solver).solve(cold)
        assert fast.assignment == reference.assignment
        assert fast.score == reference.score
        cold.validate_assignment(fast.assignment, require_complete=True)


class TestEngineDeltaPath:
    def test_mutate_resolve_roundtrip_is_delta_maintained(self):
        problem = _instance(seed=5)
        engine = AssignmentEngine(problem)
        engine.warm()
        engine.solve("Greedy")
        stats = engine.problem.view_stats
        recompiles = stats.recompiles

        engine.add_paper(_late_paper(engine.problem))
        engine.solve("Greedy")
        engine.withdraw_reviewer(engine.problem.reviewer_ids[0])
        engine.solve("Greedy")
        assert stats.recompiles == recompiles  # solved twice, compiled never
        assert stats.delta_applies >= 2
        payload = engine.stats()
        assert payload["delta"]["delta_applies"] == stats.delta_applies
        assert payload["delta"]["recompiles"] == stats.recompiles

    def test_engine_results_match_full_recompile_baseline(self):
        """The churn acceptance criterion at test scale: same ops, same bits."""
        def replay(invalidate: bool):
            engine = AssignmentEngine(_instance(seed=7))
            outputs = []
            operations = [
                ("solve",),
                ("add", "late-1"),
                ("solve",),
                ("withdraw", 4),
                ("solve",),
                ("add", "late-2"),
                ("withdraw", 0),
                ("solve",),
            ]
            for operation in operations:
                if invalidate:
                    engine.problem.invalidate_caches()
                    engine.cache.invalidate(engine.problem)
                if operation[0] == "solve":
                    result = engine.solve("Greedy")
                    outputs.append(("solve", sorted(result.assignment.pairs()),
                                    result.score))
                elif operation[0] == "add":
                    delta = engine.add_paper(_late_paper(engine.problem, operation[1]))
                    outputs.append(("add", delta.added_pairs))
                else:
                    victim = engine.problem.reviewer_ids[operation[1]]
                    delta = engine.withdraw_reviewer(victim)
                    outputs.append(("withdraw", delta.added_pairs,
                                    delta.removed_pairs))
            return outputs

        assert replay(invalidate=False) == replay(invalidate=True)


class TestReviewFindings:
    """Regressions for defects found in review of the delta layer."""

    def test_lowered_workload_rejects_overloaded_assignment(self):
        """add_paper with a tightened delta_r must not commit an assignment
        whose existing loads exceed the new bound (and must reject it
        *before* mutating)."""
        from repro.exceptions import InfeasibleAssignmentError

        problem = _instance(seed=4)
        engine = AssignmentEngine(problem)
        engine.solve("Greedy")
        papers_before = engine.problem.num_papers
        with pytest.raises(InfeasibleAssignmentError):
            engine.add_paper(_late_paper(engine.problem), reviewer_workload=1)
        assert engine.problem.num_papers == papers_before  # nothing committed
        engine.problem.validate_assignment(engine.assignment)

    def test_adoption_clears_leftover_dirty_columns(self):
        """A dirty placeholder column left by a cold mutation must not make
        the cache write into a later-adopted read-only matrix."""
        problem = _instance(seed=6)
        engine = AssignmentEngine(problem)
        engine.warm()
        engine.problem.invalidate_caches()  # cold chain: next add stays dirty
        engine.add_paper(_late_paper(engine.problem, "late-a"))
        assert engine.cache.dirty_papers == {"late-a"}
        engine.solve("Greedy")  # warms the derived problem's pair scores
        engine.add_paper(_late_paper(engine.problem, "late-b"))
        assert not engine.cache.dirty_papers  # covered by the adopted matrix
        matrix = engine.cache.matrix()  # must not raise
        current = engine.problem
        expected = current.scoring.score_matrix(
            current.reviewer_matrix, current.paper_matrix
        )
        assert np.array_equal(matrix, expected)

    def test_conflict_edit_voids_the_assignment_validity_cache(self):
        """A live conflict edit that invalidates an assigned pair must make
        the next mutation raise, exactly like the historical unconditional
        validation did (the validity cache keys on the conflict version)."""
        from repro.exceptions import InfeasibleAssignmentError

        problem = _instance(seed=12, conflict_ratio=0.0)
        engine = AssignmentEngine(problem)
        engine.solve("Greedy")
        reviewer_id, paper_id = next(iter(engine.assignment.pairs()))
        engine.problem.conflicts.add(reviewer_id, paper_id)
        with pytest.raises(InfeasibleAssignmentError):
            engine.add_paper(_late_paper(engine.problem))

    def test_one_scoring_pass_per_pooled_add(self):
        """add_paper(pool_size=...) scores the new column exactly once."""
        from repro.core.scoring import ScoringFunction

        problem = _instance(seed=14)
        engine = AssignmentEngine(problem)
        engine.warm()
        engine.solve("Greedy")
        calls: list[tuple[int, int]] = []
        original = ScoringFunction.score_matrix

        def counting(self, reviewer_matrix, paper_matrix, parallel=None):
            calls.append((reviewer_matrix.shape[0], paper_matrix.shape[0]))
            return original(self, reviewer_matrix, paper_matrix)

        try:
            ScoringFunction.score_matrix = counting
            engine.add_paper(_late_paper(engine.problem), pool_size=6)
        finally:
            ScoringFunction.score_matrix = original
        num_reviewers = engine.problem.num_reviewers
        assert calls == [(num_reviewers, 1)]
        _assert_pair_scores_match_oracle(engine.problem)

    def test_unpruned_greedy_reports_no_prune_activity(self):
        problem = _instance(seed=8)
        result = GreedySolver(prune=False).solve(problem)
        assert result.stats["pruned"] is False
        assert result.stats["prune_certified"] == 0
        assert result.stats["prune_fallbacks"] == 0


class TestJraCacheConflictStaleness:
    def test_journal_query_tracks_live_conflict_edits(self):
        """Found during the invalidation audit: the JRA sub-problem cache
        keyed on (paper, group size, pool) only, so conflict edits kept
        serving stale exclusion sets."""
        problem = _instance(seed=2, conflict_ratio=0.0)
        engine = AssignmentEngine(problem)
        paper_id = problem.paper_ids[0]
        first = engine.journal_query(paper_id)
        best_reviewer = first.best.reviewer_ids[0]

        engine.problem.conflicts.add(best_reviewer, paper_id)
        second = engine.journal_query(paper_id)
        assert best_reviewer not in second.best.reviewer_ids

    def test_pruned_journal_query_is_exact_and_counted(self):
        problem = _instance(seed=9, conflict_ratio=0.0)
        engine = AssignmentEngine(problem)
        paper_id = problem.paper_ids[1]
        full = engine.journal_query(paper_id, top_k=2)
        before = engine.problem.view_stats.prune_certified + (
            engine.problem.view_stats.prune_fallbacks
        )
        pruned = engine.journal_query(paper_id, top_k=2, prune=6)
        stats = engine.problem.view_stats
        assert stats.prune_certified + stats.prune_fallbacks == before + 1
        assert [g.score for g in pruned.groups] == [g.score for g in full.groups]
        assert [g.reviewer_ids for g in pruned.groups] == [
            g.reviewer_ids for g in full.groups
        ]
