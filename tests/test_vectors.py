"""Unit tests for :mod:`repro.core.vectors`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.vectors import TopicVector, as_topic_vector, stack_vectors
from repro.exceptions import ConfigurationError, DimensionMismatchError


class TestConstruction:
    def test_from_list(self):
        vector = TopicVector([0.2, 0.3, 0.5])
        assert vector.num_topics == 3
        assert vector[1] == pytest.approx(0.3)

    def test_from_numpy_array_copies(self):
        source = np.array([0.1, 0.9])
        vector = TopicVector(source)
        source[0] = 5.0
        assert vector[0] == pytest.approx(0.1)

    def test_from_mapping_requires_num_topics(self):
        with pytest.raises(ConfigurationError):
            TopicVector({0: 0.5})

    def test_from_mapping(self):
        vector = TopicVector({1: 0.7, 3: 0.3}, num_topics=5)
        assert vector.to_list() == pytest.approx([0.0, 0.7, 0.0, 0.3, 0.0])

    def test_from_mapping_out_of_range(self):
        with pytest.raises(ConfigurationError):
            TopicVector({7: 1.0}, num_topics=5)

    def test_rejects_negative_weights(self):
        with pytest.raises(ConfigurationError):
            TopicVector([0.5, -0.1])

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            TopicVector([0.5, float("nan")])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            TopicVector([])

    def test_rejects_matrix(self):
        with pytest.raises(ConfigurationError):
            TopicVector(np.ones((2, 2)))

    def test_values_are_read_only(self):
        vector = TopicVector([0.5, 0.5])
        with pytest.raises(ValueError):
            vector.values[0] = 1.0

    def test_from_existing_vector(self):
        first = TopicVector([0.4, 0.6])
        second = TopicVector(first)
        assert first == second


class TestFactories:
    def test_zeros(self):
        assert TopicVector.zeros(4).total() == 0.0

    def test_zeros_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            TopicVector.zeros(0)

    def test_uniform(self):
        vector = TopicVector.uniform(5)
        assert vector.total() == pytest.approx(1.0)
        assert vector[0] == pytest.approx(0.2)

    def test_single_topic(self):
        vector = TopicVector.single_topic(2, num_topics=4, weight=0.8)
        assert vector.to_dict() == {2: pytest.approx(0.8)}

    def test_group_maximum(self):
        group = TopicVector.group_maximum(
            [TopicVector([0.1, 0.7]), TopicVector([0.6, 0.2])]
        )
        assert group.to_list() == pytest.approx([0.6, 0.7])

    def test_group_maximum_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            TopicVector.group_maximum([])


class TestAlgebra:
    def test_minimum_and_maximum(self):
        first = TopicVector([0.2, 0.8, 0.0])
        second = TopicVector([0.5, 0.1, 0.4])
        assert first.minimum(second).to_list() == pytest.approx([0.2, 0.1, 0.0])
        assert first.maximum(second).to_list() == pytest.approx([0.5, 0.8, 0.4])

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            TopicVector([0.5, 0.5]).minimum(TopicVector([1.0]))

    def test_dot(self):
        assert TopicVector([0.5, 0.5]).dot(TopicVector([0.2, 0.6])) == pytest.approx(0.4)

    def test_normalized(self):
        vector = TopicVector([2.0, 2.0]).normalized()
        assert vector.total() == pytest.approx(1.0)
        assert vector.is_normalized()

    def test_normalized_zero_vector_unchanged(self):
        assert TopicVector.zeros(3).normalized() == TopicVector.zeros(3)

    def test_scaled(self):
        assert TopicVector([0.2, 0.4]).scaled(2.0).to_list() == pytest.approx([0.4, 0.8])

    def test_scaled_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            TopicVector([0.2]).scaled(-1.0)

    def test_top_topics(self):
        vector = TopicVector([0.1, 0.5, 0.4])
        assert vector.top_topics(2) == [1, 2]
        assert vector.top_topics(0) == []
        assert vector.top_topics(10) == [1, 2, 0]

    def test_dominates(self):
        assert TopicVector([0.5, 0.5]).dominates(TopicVector([0.4, 0.5]))
        assert not TopicVector([0.5, 0.3]).dominates(TopicVector([0.4, 0.5]))


class TestContainerBehaviour:
    def test_equality_and_hash(self):
        first = TopicVector([0.3, 0.7])
        second = TopicVector([0.3, 0.7])
        assert first == second
        assert hash(first) == hash(second)
        assert first != TopicVector([0.7, 0.3])

    def test_equality_with_other_type(self):
        assert TopicVector([0.3]) != "not a vector"

    def test_len_and_iter(self):
        vector = TopicVector([0.1, 0.9])
        assert len(vector) == 2
        assert list(vector) == pytest.approx([0.1, 0.9])

    def test_repr(self):
        assert "TopicVector" in repr(TopicVector([0.25, 0.75]))

    def test_to_dict_skips_zeros(self):
        assert TopicVector([0.0, 0.4, 0.0]).to_dict() == {1: pytest.approx(0.4)}
        assert len(TopicVector([0.0, 0.4, 0.0]).to_dict(include_zeros=True)) == 3


class TestHelpers:
    def test_as_topic_vector_passthrough(self):
        vector = TopicVector([0.5, 0.5])
        assert as_topic_vector(vector) is vector

    def test_as_topic_vector_converts(self):
        assert isinstance(as_topic_vector([0.5, 0.5]), TopicVector)

    def test_stack_vectors(self):
        stacked = stack_vectors([TopicVector([0.1, 0.9]), TopicVector([0.4, 0.6])])
        assert stacked.shape == (2, 2)
        assert stacked[1, 0] == pytest.approx(0.4)

    def test_stack_vectors_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            stack_vectors([])

    def test_stack_vectors_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            stack_vectors([TopicVector([0.1]), TopicVector([0.2, 0.8])])
