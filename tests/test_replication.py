"""Unit and server-level tests for :mod:`repro.replication`.

The bitwise failover regime lives in
``tests/conformance/test_failover_conformance.py``; this module pins the
building blocks: the frame codec, the standby replica's
idempotent/prefix-consistent replay rule (chain adjacency via ``prev``,
property-tested with Hypothesis under duplicated and reordered
delivery), standby crash recovery, the replication failpoints
(``repl_send``, ``repl_apply``, ``heartbeat``), promotion semantics,
sender detach, and :class:`~repro.net.client.RetryingClient` failover
with exactly-once application across the switch.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.io import problem_to_dict
from repro.data.synthetic import make_problem
from repro.durability import DurabilityConfig, TenantJournal, read_checkpoint
from repro.exceptions import RequestError
from repro.fault import get_failpoints
from repro.net.client import RetryPolicy, RetryingClient
from repro.obs.metrics import get_registry
from repro.replication import REPLICATION_KINDS
from repro.replication.standby import StandbyReplica, record_from_body
from repro.service.engine import AssignmentEngine
from repro.service.requests import request_from_dict
from repro.service.session import EngineSession

from tests.net_utils import ServerHarness, wait_until


@pytest.fixture(autouse=True)
def _clean_failpoints():
    get_failpoints().reset()
    yield
    get_failpoints().reset()


def small_problem():
    return make_problem(
        num_papers=8, num_reviewers=8, num_topics=6, group_size=2,
        reviewer_workload=5, conflict_ratio=0.0, seed=21,
    )


def small_engine() -> AssignmentEngine:
    return AssignmentEngine(small_problem())


def late_paper_payload(tag: str, topics: int = 6) -> dict:
    vector = [1.0 if i == 0 else 0.0 for i in range(topics)]
    return {"id": tag, "vector": vector, "title": f"late {tag}"}


def snapshot_of(engine: AssignmentEngine) -> str:
    return json.dumps(engine.to_snapshot(), sort_keys=True)


# ----------------------------------------------------------------------
# The shared WAL chain: seqs deliberately skip numbers (queries and
# dedup hits consume an envelope seq without appending), so replay must
# chain on ``prev``, not on seq arithmetic.
# ----------------------------------------------------------------------
CHAIN_SEQS = [1, 2, 4, 7, 8]


def build_chain(root: Path):
    """A primary-side journal with ``CHAIN_SEQS`` appended.

    Returns ``(checkpoint_body, frames, oracle_snapshot)`` where each
    frame is ``(record, prev_seq)`` exactly as the sender would ship it.
    """
    journal = TenantJournal(DurabilityConfig(root=root), "conf")
    engine = small_engine()
    journal.initialise(engine)
    session = EngineSession(engine)
    rid, pid = engine.problem.reviewer_ids, engine.problem.paper_ids
    for index, seq in enumerate(CHAIN_SEQS):
        request = request_from_dict({
            "kind": "update_bids",
            "bids": [[rid[index % len(rid)], pid[index % len(pid)],
                      round(0.1 * (index + 1), 3)]],
            "seq": seq,
        })
        journal.append(seq, request)
        response = session.dispatch(request)
        assert response.ok, response.error
    journal.sync_batch()
    checkpoint = read_checkpoint(journal.directory)
    from repro.durability import read_wal

    scan = read_wal(journal.directory)
    assert [r.seq for r in scan.records] == CHAIN_SEQS
    prevs = [0] + CHAIN_SEQS[:-1]
    frames = list(zip(scan.records, prevs))
    journal.close()
    return checkpoint, frames, snapshot_of(engine)


_CHAIN_CACHE: dict[str, object] = {}


def chain_fixture():
    """Build the chain once per process (Hypothesis runs many examples)."""
    if not _CHAIN_CACHE:
        root = Path(tempfile.mkdtemp(prefix="repl-chain-"))
        checkpoint, frames, oracle = build_chain(root / "wal")
        _CHAIN_CACHE.update(
            checkpoint=checkpoint, frames=frames, oracle=oracle
        )
    return (
        _CHAIN_CACHE["checkpoint"],
        _CHAIN_CACHE["frames"],
        _CHAIN_CACHE["oracle"],
    )


def fresh_replica(root: Path) -> StandbyReplica:
    checkpoint, _frames, _oracle = chain_fixture()
    replica = StandbyReplica(DurabilityConfig(root=root), "conf")
    replica.install_snapshot(dict(checkpoint))
    return replica


class TestFrameCodec:
    def test_record_round_trips_through_its_body(self):
        _checkpoint, frames, _oracle = chain_fixture()
        for record, _prev in frames:
            assert record_from_body(record.to_body()) == record

    @pytest.mark.parametrize("body", [
        None, "not an object", {}, {"seq": "x", "kind": "solve", "request": {}},
        {"seq": 1, "kind": "solve", "request": "not an object"},
    ])
    def test_malformed_bodies_are_request_errors(self, body):
        with pytest.raises(RequestError):
            record_from_body(body)

    def test_replication_kinds_are_documented(self):
        assert set(REPLICATION_KINDS) == {
            "repl_hello", "repl_snapshot", "repl_record", "repl_heartbeat",
        }


class TestStandbyReplica:
    def test_in_order_replay_matches_the_oracle_bitwise(self, tmp_path):
        _checkpoint, frames, oracle = chain_fixture()
        replica = fresh_replica(tmp_path / "standby")
        for record, prev in frames:
            status, applied = replica.apply_record(record, prev)
            assert status == "applied"
            assert applied == record.seq
        assert snapshot_of(replica.engine) == oracle
        replica.journal.close()

    def test_seq_gaps_in_the_chain_are_not_gaps(self, tmp_path):
        """The regression behind ``prev``: CHAIN_SEQS skips 3, 5 and 6 —
        a replica holding seq 2 must accept seq 4 when ``prev`` says 2."""
        _checkpoint, frames, _oracle = chain_fixture()
        replica = fresh_replica(tmp_path / "standby")
        for record, prev in frames[:2]:
            replica.apply_record(record, prev)
        record, prev = frames[2]
        assert (record.seq, prev) == (4, 2)
        assert replica.apply_record(record, prev) == ("applied", 4)
        replica.journal.close()

    def test_duplicates_are_skipped_without_side_effects(self, tmp_path):
        _checkpoint, frames, _oracle = chain_fixture()
        replica = fresh_replica(tmp_path / "standby")
        record, prev = frames[0]
        assert replica.apply_record(record, prev) == ("applied", 1)
        before = snapshot_of(replica.engine)
        assert replica.apply_record(record, prev) == ("duplicate", 1)
        assert snapshot_of(replica.engine) == before
        replica.journal.close()

    def test_out_of_order_frames_are_refused_as_gaps(self, tmp_path):
        _checkpoint, frames, _oracle = chain_fixture()
        replica = fresh_replica(tmp_path / "standby")
        before = snapshot_of(replica.engine)
        record, prev = frames[2]  # needs prev=2, replica is at 0
        assert replica.apply_record(record, prev) == ("gap", 0)
        assert snapshot_of(replica.engine) == before
        replica.journal.close()

    def test_records_before_a_snapshot_are_gaps(self, tmp_path):
        """A replica with no snapshot yet refuses everything."""
        _checkpoint, frames, _oracle = chain_fixture()
        replica = StandbyReplica(
            DurabilityConfig(root=tmp_path / "standby"), "conf"
        )
        assert not replica.resident
        record, prev = frames[0]
        assert replica.apply_record(record, prev) == ("gap", 0)

    def test_repl_apply_failpoint_answers_gap_without_state_change(
        self, tmp_path
    ):
        _checkpoint, frames, _oracle = chain_fixture()
        replica = fresh_replica(tmp_path / "standby")
        get_failpoints().configure("repl_apply", "once")
        record, prev = frames[0]
        assert replica.apply_record(record, prev) == ("gap", 0)
        # Disarmed: the re-shipped record applies.
        assert replica.apply_record(record, prev) == ("applied", 1)
        replica.journal.close()

    def test_standby_restart_resumes_from_its_own_journal(self, tmp_path):
        """The standby journals before it replays: a crashed standby
        recovers to its applied seq like any durable tenant."""
        _checkpoint, frames, oracle = chain_fixture()
        root = tmp_path / "standby"
        replica = fresh_replica(root)
        for record, prev in frames[:3]:
            replica.apply_record(record, prev)
        replica.journal.abort()  # crash: no final checkpoint

        reborn = StandbyReplica(DurabilityConfig(root=root), "conf")
        reborn.recover_local()
        assert reborn.applied_seq == frames[2][0].seq
        for record, prev in frames[3:]:
            assert reborn.apply_record(record, prev)[0] == "applied"
        assert snapshot_of(reborn.engine) == oracle
        reborn.journal.close()


class TestReplayProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        order=st.lists(
            st.integers(min_value=0, max_value=len(CHAIN_SEQS) - 1),
            min_size=0, max_size=18,
        )
    )
    def test_duplicated_reordered_delivery_never_corrupts(self, order):
        """Deliver frames in any order, with repetition, then finish
        with one in-order sweep (what catch-up does after a gap ack).
        Replay must be idempotent and prefix-consistent: every record
        applies exactly once, in chain order, and the final engine is
        bitwise-equal to the oracle."""
        _checkpoint, frames, oracle = chain_fixture()
        with tempfile.TemporaryDirectory(prefix="repl-prop-") as tmp:
            replica = fresh_replica(Path(tmp) / "standby")
            applied_per_seq: dict[int, int] = {}
            for index in order + list(range(len(frames))):
                record, prev = frames[index]
                before = replica.applied_seq
                status, after = replica.apply_record(record, prev)
                if status == "applied":
                    assert prev == before and after == record.seq
                    applied_per_seq[record.seq] = (
                        applied_per_seq.get(record.seq, 0) + 1
                    )
                elif status == "duplicate":
                    assert record.seq <= before and after == before
                else:
                    assert status == "gap"
                    assert prev != before and after == before
                assert after >= before  # applied_seq is monotone
            assert applied_per_seq == {seq: 1 for seq in CHAIN_SEQS}
            assert snapshot_of(replica.engine) == oracle
            replica.journal.close()


# ----------------------------------------------------------------------
# Server-level: live primary/standby harnesses.
# ----------------------------------------------------------------------
def _standby(tmp_path, **kwargs) -> ServerHarness:
    return ServerHarness(
        durability=DurabilityConfig(root=tmp_path / "wal-s", checkpoint_every=3),
        standby=True,
        **kwargs,
    ).start()


def _primary(tmp_path, standby_port: int) -> ServerHarness:
    harness = ServerHarness(
        durability=DurabilityConfig(root=tmp_path / "wal-p", checkpoint_every=3),
        replicate_to=("127.0.0.1", standby_port),
    )
    harness.add_tenant("conf", small_engine(), default=True)
    return harness.start()


def _caught_up(primary: ServerHarness) -> bool:
    status = primary.call({"kind": "replication_status"})
    return bool(status["payload"]["replication"]["caught_up"])


def _applied_seq(standby: ServerHarness, tenant: str = "conf"):
    status = standby.call({"kind": "replication_status"})
    entry = status["payload"]["standby"]["tenants"].get(tenant)
    return entry["applied_seq"] if entry else None


class TestStandbyServer:
    def test_unpromoted_standby_refuses_engine_traffic(self, tmp_path):
        standby = _standby(tmp_path)
        try:
            response = standby.call({"kind": "stats"})
            assert not response["ok"]
            assert response["error_type"] == "standby"
            created = standby.call({
                "kind": "create_tenant", "tenant": "x",
                "problem": problem_to_dict(small_problem()),
            })
            assert not created["ok"]
            assert created["error_type"] == "standby"
            # Introspection still works.
            status = standby.call({"kind": "replication_status"})
            assert status["ok"]
            assert status["payload"]["role"] == "standby"
            assert status["payload"]["standby"]["promoted"] is False
        finally:
            standby.stop()

    def test_replication_frames_on_a_non_standby_are_refused(self, tmp_path):
        harness = ServerHarness(
            durability=DurabilityConfig(root=tmp_path / "wal")
        )
        harness.add_tenant("conf", small_engine(), default=True)
        harness.start()
        try:
            hello = harness.call({"kind": "repl_hello", "primary": "x:1"})
            assert not hello["ok"]
            assert hello["error_type"] == "configuration"
            promote = harness.call({"kind": "promote"})
            assert not promote["ok"]
            assert promote["error_type"] == "configuration"
            status = harness.call({"kind": "replication_status"})
            assert status["payload"]["role"] == "standalone"
        finally:
            harness.stop()

    def test_promote_is_idempotent(self, tmp_path):
        standby = _standby(tmp_path)
        primary = _primary(tmp_path, standby.port)
        try:
            assert primary.call(
                {"kind": "solve", "solver": "Greedy", "seq": 1}
            )["ok"]
            wait_until(lambda: _caught_up(primary))
            first = standby.call({"kind": "promote"})
            assert first["ok"] and first["payload"]["tenants"] == ["conf"]
            second = standby.call({"kind": "promote"})
            assert second["ok"]
            assert second["payload"]["already_promoted"] is True
            assert second["payload"]["tenants"] == ["conf"]
            # The promoted standby serves engine traffic.
            assert standby.call({"kind": "stats"})["ok"]
        finally:
            standby.stop()
            primary.stop()


class TestReplicationStream:
    def test_tenant_created_after_attach_is_replicated(self, tmp_path):
        standby = _standby(tmp_path)
        primary = _primary(tmp_path, standby.port)
        try:
            created = primary.call({
                "kind": "create_tenant", "tenant": "late",
                "problem": problem_to_dict(small_problem()),
            })
            assert created["ok"], created
            wait_until(lambda: _applied_seq(standby, "late") == 0)
            response = primary.call({
                "kind": "add_paper", "tenant": "late",
                "paper": late_paper_payload("l-1"), "seq": 1,
            })
            assert response["ok"], response
            wait_until(lambda: _applied_seq(standby, "late") is not None
                       and _applied_seq(standby, "late") >= 1)
            replica = standby.server.standby.replicas["late"]
            live = primary.server.tenants.get("late").engine
            wait_until(lambda: _caught_up(primary))
            assert snapshot_of(replica.engine) == snapshot_of(live)
        finally:
            standby.stop()
            primary.stop()

    def test_repl_send_failpoint_reconnects_and_catches_up(self, tmp_path):
        reconnects = get_registry().counter("replication.reconnects", "")
        standby = _standby(tmp_path)
        primary = _primary(tmp_path, standby.port)
        try:
            assert primary.call(
                {"kind": "solve", "solver": "Greedy", "seq": 1}
            )["ok"]
            wait_until(lambda: _caught_up(primary))
            before = reconnects.value
            get_failpoints().configure("repl_send", "once")
            assert primary.call({
                "kind": "add_paper", "paper": late_paper_payload("l-2"),
                "seq": 2,
            })["ok"]
            # The dropped link reconnects (fresh handshake + catch-up)
            # and the standby still converges on everything journaled.
            wait_until(lambda: reconnects.value > before)
            wait_until(lambda: _caught_up(primary))
            replica = standby.server.standby.replicas["conf"]
            assert replica.engine.problem.num_papers == 9
        finally:
            standby.stop()
            primary.stop()

    def test_repl_apply_failpoint_heals_via_gap_resync(self, tmp_path):
        gaps = get_registry().counter("replication.gaps", "")
        resyncs = get_registry().counter("replication.resyncs", "")
        standby = _standby(tmp_path)
        primary = _primary(tmp_path, standby.port)
        try:
            wait_until(lambda: _caught_up(primary))
            gaps_before, resyncs_before = gaps.value, resyncs.value
            get_failpoints().configure("repl_apply", "once")
            assert primary.call({
                "kind": "add_paper", "paper": late_paper_payload("l-3"),
                "seq": 1,
            })["ok"]
            wait_until(lambda: _caught_up(primary))
            assert gaps.value > gaps_before
            assert resyncs.value > resyncs_before
            replica = standby.server.standby.replicas["conf"]
            assert replica.engine.problem.num_papers == 9
        finally:
            standby.stop()
            primary.stop()

    def test_heartbeat_silence_auto_promotes_and_detaches_the_sender(
        self, tmp_path
    ):
        standby = _standby(tmp_path, auto_promote_after=0.3)
        primary = _primary(tmp_path, standby.port)
        try:
            assert primary.call(
                {"kind": "solve", "solver": "Greedy", "seq": 1}
            )["ok"]
            wait_until(lambda: _caught_up(primary))
            # Silence every heartbeat; the primary is "alive but mute".
            get_failpoints().configure("heartbeat", "always")
            wait_until(
                lambda: standby.call({"kind": "replication_status"})[
                    "payload"]["standby"]["promoted"]
            )
            assert standby.call({"kind": "stats"})["ok"]
            # The old primary's next shipped record is refused by the
            # promoted standby and the sender stands down for good.
            assert primary.call({
                "kind": "add_paper", "paper": late_paper_payload("l-4"),
                "seq": 2,
            })["ok"]
            wait_until(
                lambda: primary.call({"kind": "replication_status"})[
                    "payload"]["replication"]["detached"]
            )
        finally:
            standby.stop()
            primary.stop()


class TestClientFailover:
    def test_standby_first_endpoint_rotates_to_the_primary(self, tmp_path):
        standby = _standby(tmp_path)
        primary = _primary(tmp_path, standby.port)
        try:
            async def drive():
                client = RetryingClient(
                    endpoints=[
                        ("127.0.0.1", standby.port),
                        ("127.0.0.1", primary.port),
                    ],
                    policy=RetryPolicy(attempts=6, base_delay=0.01, seed=3),
                )
                try:
                    return await client.request({
                        "kind": "add_paper",
                        "paper": late_paper_payload("l-5"),
                    })
                finally:
                    await client.close()

            response = primary.run(drive())
            assert response["ok"], response
            assert response["payload"]["num_papers"] == 9
        finally:
            standby.stop()
            primary.stop()

    def test_lost_answer_after_failover_applies_exactly_once(self, tmp_path):
        """The satellite scenario: primary dead, standby promoted, and
        the ``socket_write`` failpoint eats the promoted standby's first
        answer mid-pipeline.  The retry rides the endpoint rotation back
        to the standby and is answered from the replicated applied map —
        applied exactly once across crash, promotion and lost answer."""
        deduped = get_registry().counter("durability.deduped", "")
        standby = _standby(tmp_path)
        primary = _primary(tmp_path, standby.port)
        primary_port = primary.port
        try:
            assert primary.call({
                "kind": "add_paper", "paper": late_paper_payload("l-6"),
                "seq": 1,
            })["ok"]
            wait_until(lambda: _caught_up(primary))
            primary.abort()
            assert standby.call({"kind": "promote"})["ok"]

            before = deduped.value
            get_failpoints().configure("socket_write", "once")

            async def drive():
                client = RetryingClient(
                    endpoints=[
                        ("127.0.0.1", primary_port),  # dead
                        ("127.0.0.1", standby.port),
                    ],
                    policy=RetryPolicy(attempts=6, base_delay=0.01, seed=5),
                    idempotency_start=50,  # disjoint from the seq=1 above
                    connect_attempts=2,
                )
                try:
                    return await client.request({
                        "kind": "add_paper",
                        "paper": late_paper_payload("l-7"),
                    })
                finally:
                    await client.close()

            response = standby.run(drive())
            assert response["ok"], response
            assert response["payload"]["num_papers"] == 10
            assert deduped.value - before == 1
            tenant = standby.server.tenants.get("conf")
            assert tenant.engine.problem.num_papers == 10
        finally:
            standby.stop()
