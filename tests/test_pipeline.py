"""Unit tests for the end-to-end topic-extraction pipeline (Appendix A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.entities import Paper, Reviewer
from repro.core.problem import WGRAPProblem
from repro.data.synthetic import SyntheticCorpusGenerator
from repro.exceptions import ConfigurationError, SolverError
from repro.topics.pipeline import TopicExtractionPipeline


@pytest.fixture(scope="module")
def fitted_pipeline():
    generator = SyntheticCorpusGenerator(
        num_topics=4, words_per_topic=10, background_words=8, seed=23
    )
    corpus = generator.generate(
        num_authors=10,
        publications_per_author=(2, 3),
        num_submissions=6,
        tokens_per_document=(30, 60),
    )
    pipeline = TopicExtractionPipeline(num_topics=4, atm_iterations=30, seed=0)
    pipeline.fit(corpus.publications)
    return pipeline, corpus


class TestPipelineLifecycle:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            TopicExtractionPipeline(num_topics=1)

    def test_requires_fit_before_use(self):
        pipeline = TopicExtractionPipeline(num_topics=3)
        assert not pipeline.is_fitted
        with pytest.raises(SolverError):
            pipeline.reviewers()
        with pytest.raises(SolverError):
            pipeline.infer_paper("p", "some abstract text")
        with pytest.raises(SolverError):
            _ = pipeline.model

    def test_fit_exposes_model_and_keywords(self, fitted_pipeline):
        pipeline, _ = fitted_pipeline
        assert pipeline.is_fitted
        assert pipeline.num_topics == 4
        assert pipeline.model.num_topics == 4
        keywords = pipeline.topic_keywords(0, count=5)
        assert len(keywords) == 5


class TestReviewerAndPaperExtraction:
    def test_reviewer_vectors_are_normalised(self, fitted_pipeline):
        pipeline, corpus = fitted_pipeline
        reviewers = pipeline.reviewers()
        assert len(reviewers) == len(corpus.publications.authors)
        for reviewer in reviewers:
            assert isinstance(reviewer, Reviewer)
            assert reviewer.vector.total() == pytest.approx(1.0, abs=1e-6)

    def test_reviewer_subset_and_metadata(self, fitted_pipeline):
        pipeline, corpus = fitted_pipeline
        author = corpus.publications.authors[0]
        reviewer = pipeline.reviewer(author, name="Prof. Zero", h_index=15)
        assert reviewer.name == "Prof. Zero"
        assert reviewer.h_index == 15
        subset = pipeline.reviewers([author])
        assert len(subset) == 1 and subset[0].id == author

    def test_paper_inference_from_raw_text(self, fitted_pipeline):
        pipeline, _ = fitted_pipeline
        paper = pipeline.infer_paper(
            "p-1", "topic00word001 topic00word002 topic00word003", title="Focused"
        )
        assert isinstance(paper, Paper)
        assert paper.title == "Focused"
        assert paper.vector.total() == pytest.approx(1.0, abs=1e-6)

    def test_paper_batch_inference(self, fitted_pipeline):
        pipeline, corpus = fitted_pipeline
        papers = pipeline.infer_papers(list(corpus.submissions[:3]))
        assert len(papers) == 3
        for paper in papers:
            assert paper.vector.total() == pytest.approx(1.0, abs=1e-6)


class TestProblemAssembly:
    def test_build_problem(self, fitted_pipeline):
        pipeline, corpus = fitted_pipeline
        problem = pipeline.build_problem(
            submissions=list(corpus.submissions),
            group_size=2,
        )
        assert isinstance(problem, WGRAPProblem)
        assert problem.num_papers == len(corpus.submissions)
        assert problem.num_reviewers == len(corpus.publications.authors)
        assert problem.num_topics == 4

    def test_build_problem_with_conflicts(self, fitted_pipeline):
        pipeline, corpus = fitted_pipeline
        author = corpus.publications.authors[0]
        submission = corpus.submissions[0]
        problem = pipeline.build_problem(
            submissions=list(corpus.submissions),
            group_size=2,
            conflicts=[(author, submission.id)],
        )
        assert problem.conflicts.is_conflict(author, submission.id)

    def test_expert_reviewer_scores_higher_on_matching_paper(self, fitted_pipeline):
        """A paper written in topic-block words should prefer reviewers whose
        own publications concentrate on that block."""
        pipeline, corpus = fitted_pipeline
        model = pipeline.model
        # Build a paper purely from topic block 0's signature words.
        signature = " ".join(f"topic00word{index:03d}" for index in range(8))
        paper = pipeline.infer_paper("pure-topic-0", signature)
        learned_topic = int(np.argmax(paper.vector.values))
        reviewers = pipeline.reviewers()
        scores = [
            problem_scoring.score(reviewer.vector, paper.vector)
            for reviewer in reviewers
            for problem_scoring in [pipeline_scoring()]
        ]
        best_reviewer = reviewers[int(np.argmax(scores))]
        assert best_reviewer.vector.values[learned_topic] >= np.median(
            model.author_topic[:, learned_topic]
        )


def pipeline_scoring():
    from repro.core.scoring import WeightedCoverage

    return WeightedCoverage()
