"""Unit tests for conflicts of interest and workload constraints."""

from __future__ import annotations

import pytest

from repro.core.constraints import ConflictOfInterest, WorkloadConstraints
from repro.exceptions import ConfigurationError


class TestConflictOfInterest:
    def test_add_and_query(self):
        conflicts = ConflictOfInterest([("r1", "p1")])
        assert conflicts.is_conflict("r1", "p1")
        assert not conflicts.is_conflict("r1", "p2")
        assert conflicts.papers_conflicting_with("r1") == frozenset({"p1"})
        assert conflicts.reviewers_conflicting_with("p1") == frozenset({"r1"})
        assert len(conflicts) == 1
        assert ("r1", "p1") in conflicts

    def test_add_is_idempotent(self):
        conflicts = ConflictOfInterest()
        conflicts.add("r1", "p1")
        conflicts.add("r1", "p1")
        assert len(conflicts) == 1

    def test_add_rejects_empty_ids(self):
        with pytest.raises(ConfigurationError):
            ConflictOfInterest().add("", "p1")

    def test_discard(self):
        conflicts = ConflictOfInterest([("r1", "p1")])
        conflicts.discard("r1", "p1")
        conflicts.discard("r1", "p1")  # no error on absent pair
        assert not conflicts.is_conflict("r1", "p1")

    def test_iteration_is_sorted(self):
        conflicts = ConflictOfInterest([("r2", "p1"), ("r1", "p2"), ("r1", "p1")])
        assert list(conflicts) == [("r1", "p1"), ("r1", "p2"), ("r2", "p1")]

    def test_copy_is_independent(self):
        original = ConflictOfInterest([("r1", "p1")])
        clone = original.copy()
        clone.add("r2", "p2")
        assert len(original) == 1
        assert original == ConflictOfInterest([("r1", "p1")])

    def test_bool(self):
        assert not ConflictOfInterest()
        assert ConflictOfInterest([("r", "p")])

    def test_from_coauthorship(self):
        conflicts = ConflictOfInterest.from_coauthorship(
            paper_authors={"p1": ["alice", "bob"], "p2": ["carol"]},
            reviewer_ids=["alice", "carol", "dave"],
        )
        assert conflicts.is_conflict("alice", "p1")
        assert conflicts.is_conflict("carol", "p2")
        assert not conflicts.is_conflict("bob", "p1")  # bob is not a reviewer
        assert len(conflicts) == 2


class TestWorkloadConstraints:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadConstraints(group_size=0, reviewer_workload=1)
        with pytest.raises(ConfigurationError):
            WorkloadConstraints(group_size=1, reviewer_workload=0)

    def test_stage_workload_is_ceiling(self):
        assert WorkloadConstraints(group_size=3, reviewer_workload=6).stage_workload == 2
        assert WorkloadConstraints(group_size=3, reviewer_workload=7).stage_workload == 3
        assert WorkloadConstraints(group_size=5, reviewer_workload=3).stage_workload == 1

    def test_integral_case_detection(self):
        assert WorkloadConstraints(group_size=3, reviewer_workload=6).is_integral
        assert not WorkloadConstraints(group_size=3, reviewer_workload=7).is_integral

    def test_capacity_accounting(self):
        constraints = WorkloadConstraints(group_size=3, reviewer_workload=4)
        assert constraints.total_capacity(num_reviewers=10) == 40
        assert constraints.total_demand(num_papers=12) == 36
        assert constraints.is_satisfiable(num_reviewers=10, num_papers=12)
        assert not constraints.is_satisfiable(num_reviewers=5, num_papers=12)
