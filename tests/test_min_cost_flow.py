"""Unit tests for the successive-shortest-path min-cost-flow solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.assignment.hungarian import solve_assignment
from repro.assignment.min_cost_flow import MinCostFlowSolver
from repro.exceptions import ConfigurationError, SolverError


class TestConstruction:
    def test_requires_nodes(self):
        with pytest.raises(ConfigurationError):
            MinCostFlowSolver(0)

    def test_add_node(self):
        solver = MinCostFlowSolver(2)
        new_node = solver.add_node()
        assert new_node == 2
        assert solver.num_nodes == 3

    def test_add_edge_validation(self):
        solver = MinCostFlowSolver(2)
        with pytest.raises(ConfigurationError):
            solver.add_edge(0, 5, capacity=1.0, cost=0.0)
        with pytest.raises(ConfigurationError):
            solver.add_edge(0, 1, capacity=-1.0, cost=0.0)

    def test_source_equals_sink_rejected(self):
        solver = MinCostFlowSolver(2)
        solver.add_edge(0, 1, capacity=1.0, cost=1.0)
        with pytest.raises(ConfigurationError):
            solver.solve(0, 0, required_flow=1.0)


class TestSimpleNetworks:
    def test_single_path(self):
        solver = MinCostFlowSolver(3)
        solver.add_edge(0, 1, capacity=2.0, cost=1.0)
        solver.add_edge(1, 2, capacity=2.0, cost=2.0)
        result = solver.solve(0, 2, required_flow=2.0)
        assert result.flow_value == pytest.approx(2.0)
        assert result.total_cost == pytest.approx(6.0)

    def test_prefers_cheaper_path(self):
        solver = MinCostFlowSolver(4)
        cheap = solver.add_edge(0, 1, capacity=1.0, cost=1.0)
        solver.add_edge(1, 3, capacity=1.0, cost=1.0)
        expensive = solver.add_edge(0, 2, capacity=1.0, cost=10.0)
        solver.add_edge(2, 3, capacity=1.0, cost=10.0)
        result = solver.solve(0, 3, required_flow=1.0)
        assert result.total_cost == pytest.approx(2.0)
        assert result.edge_flows[cheap] == pytest.approx(1.0)
        assert result.edge_flows[expensive] == pytest.approx(0.0)

    def test_splits_across_paths_when_needed(self):
        solver = MinCostFlowSolver(4)
        solver.add_edge(0, 1, capacity=1.0, cost=1.0)
        solver.add_edge(1, 3, capacity=1.0, cost=1.0)
        solver.add_edge(0, 2, capacity=1.0, cost=3.0)
        solver.add_edge(2, 3, capacity=1.0, cost=3.0)
        result = solver.solve(0, 3, required_flow=2.0)
        assert result.total_cost == pytest.approx(2.0 + 6.0)

    def test_negative_costs_are_supported(self):
        solver = MinCostFlowSolver(3)
        solver.add_edge(0, 1, capacity=1.0, cost=-5.0)
        solver.add_edge(1, 2, capacity=1.0, cost=1.0)
        result = solver.solve(0, 2, required_flow=1.0)
        assert result.total_cost == pytest.approx(-4.0)

    def test_infeasible_flow_raises(self):
        solver = MinCostFlowSolver(3)
        solver.add_edge(0, 1, capacity=1.0, cost=0.0)
        solver.add_edge(1, 2, capacity=1.0, cost=0.0)
        with pytest.raises(SolverError):
            solver.solve(0, 2, required_flow=2.0)

    def test_allow_partial_returns_max_flow(self):
        solver = MinCostFlowSolver(3)
        solver.add_edge(0, 1, capacity=1.0, cost=0.0)
        solver.add_edge(1, 2, capacity=1.0, cost=0.0)
        result = solver.solve(0, 2, required_flow=5.0, allow_partial=True)
        assert result.flow_value == pytest.approx(1.0)


class TestAgainstHungarian:
    def test_assignment_via_flow_matches_hungarian(self):
        """A unit-capacity bipartite min-cost flow is a linear assignment."""
        rng = np.random.default_rng(5)
        for size in (3, 4, 6):
            cost = rng.random((size, size)) * 4.0
            hungarian = solve_assignment(cost)

            source, sink = 0, 2 * size + 1
            solver = MinCostFlowSolver(2 * size + 2)
            for row in range(size):
                solver.add_edge(source, 1 + row, capacity=1.0, cost=0.0)
                for col in range(size):
                    solver.add_edge(
                        1 + row, 1 + size + col, capacity=1.0, cost=float(cost[row, col])
                    )
            for col in range(size):
                solver.add_edge(1 + size + col, sink, capacity=1.0, cost=0.0)
            flow = solver.solve(source, sink, required_flow=float(size))
            assert flow.total_cost == pytest.approx(hungarian.total_cost)
