"""Unit tests for the theoretical approximation ratios (Figure 7)."""

from __future__ import annotations

import math

import pytest

from repro.cra.ratio import (
    GREEDY_RATIO,
    approximation_ratio_table,
    general_case_ratio,
    integral_case_ratio,
    sdga_ratio,
)
from repro.exceptions import ConfigurationError


class TestFormulas:
    def test_integral_case_values(self):
        assert integral_case_ratio(2) == pytest.approx(0.75)
        assert integral_case_ratio(3) == pytest.approx(1 - (2 / 3) ** 3)
        # As delta_p grows the bound approaches 1 - 1/e from above.
        assert integral_case_ratio(1000) == pytest.approx(1 - 1 / math.e, abs=1e-3)

    def test_general_case_values(self):
        """The paper quotes 1/2 for delta_p=2, 5/9 for 3 and 0.5904 for 5."""
        assert general_case_ratio(2) == pytest.approx(0.5)
        assert general_case_ratio(3) == pytest.approx(5.0 / 9.0)
        assert general_case_ratio(5) == pytest.approx(0.5904, abs=1e-4)

    def test_general_case_is_at_least_one_half(self):
        for group_size in range(2, 30):
            assert general_case_ratio(group_size) >= 0.5 - 1e-12

    def test_general_case_is_monotonically_increasing(self):
        values = [general_case_ratio(k) for k in range(2, 20)]
        assert values == sorted(values)

    def test_integral_dominates_general_dominates_greedy(self):
        for group_size in range(2, 12):
            assert integral_case_ratio(group_size) > general_case_ratio(group_size)
            assert general_case_ratio(group_size) > GREEDY_RATIO

    def test_sdga_ratio_picks_the_right_case(self):
        assert sdga_ratio(3, 6) == pytest.approx(integral_case_ratio(3))
        assert sdga_ratio(3, 7) == pytest.approx(general_case_ratio(3))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            integral_case_ratio(1)
        with pytest.raises(ConfigurationError):
            general_case_ratio(0)
        with pytest.raises(ConfigurationError):
            sdga_ratio(3, 0)


class TestFigure7Table:
    def test_default_range(self):
        table = approximation_ratio_table()
        assert [point.group_size for point in table] == list(range(2, 11))
        assert all(point.greedy_baseline == pytest.approx(1 / 3) for point in table)
        assert all(
            point.integral_case > point.general_case >= 0.5 - 1e-12 for point in table
        )
        assert table[0].limit_one_minus_inverse_e == pytest.approx(1 - 1 / math.e)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            approximation_ratio_table(min_group_size=1)
        with pytest.raises(ConfigurationError):
            approximation_ratio_table(min_group_size=5, max_group_size=4)
