"""Property-based tests for the linear-assignment substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst
from scipy.optimize import linear_sum_assignment

from repro.assignment.hungarian import solve_assignment, solve_max_assignment
from repro.assignment.transportation import solve_capacitated_assignment


def cost_matrices(max_rows=7, max_cols=7):
    shapes = st.tuples(
        st.integers(min_value=1, max_value=max_rows),
        st.integers(min_value=1, max_value=max_cols),
    )
    return shapes.flatmap(
        lambda shape: npst.arrays(
            dtype=np.float64,
            shape=shape,
            elements=st.floats(min_value=0.0, max_value=100.0,
                               allow_nan=False, allow_infinity=False),
        )
    )


@settings(max_examples=80, deadline=None)
@given(cost_matrices())
def test_hungarian_matches_scipy_optimum(cost):
    ours = solve_assignment(cost)
    rows, cols = linear_sum_assignment(cost)
    assert np.isclose(ours.total_cost, cost[rows, cols].sum(), atol=1e-8)


@settings(max_examples=80, deadline=None)
@given(cost_matrices())
def test_hungarian_matching_is_valid(cost):
    result = solve_assignment(cost)
    assigned_cols = [col for col in result.row_to_col if col >= 0]
    # Every column used at most once, every row at most one column.
    assert len(assigned_cols) == len(set(assigned_cols))
    assert len(assigned_cols) == min(cost.shape)
    # The reported cost equals the sum of the selected cells.
    recomputed = sum(cost[row, col] for row, col in enumerate(result.row_to_col) if col >= 0)
    assert np.isclose(result.total_cost, recomputed)


@settings(max_examples=80, deadline=None)
@given(cost_matrices())
def test_max_assignment_is_negated_min_assignment(profit):
    maximised = solve_max_assignment(profit)
    minimised = solve_assignment(-profit)
    assert np.isclose(maximised.total_cost, -minimised.total_cost, atol=1e-8)


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=10_000),
)
def test_capacitated_backends_agree_and_respect_capacities(rows, cols, capacity, seed):
    rng = np.random.default_rng(seed)
    profit = rng.random((rows, cols))
    capacities = rng.integers(0, capacity + 1, size=cols)
    if capacities.sum() < rows:
        capacities[rng.integers(0, cols)] += rows - capacities.sum()

    hungarian = solve_capacitated_assignment(profit, capacities, backend="hungarian")
    flow = solve_capacitated_assignment(profit, capacities, backend="flow")
    assert np.isclose(hungarian.total_profit, flow.total_profit, atol=1e-8)

    usage = np.bincount(np.array(hungarian.row_to_col), minlength=cols)
    assert np.all(usage <= capacities)
    assert len(hungarian.row_to_col) == rows
