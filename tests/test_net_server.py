"""Integration tests for the asyncio multi-tenant server (:mod:`repro.net`).

Each test runs a *live* TCP server on a background event loop
(:class:`tests.net_utils.ServerHarness`) and talks to it over real
sockets, so the full path — accept, frame parse, tenant routing,
admission, worker-thread execution, FIFO write-back — is exercised, not
mocked.  Deterministic overload/batching tests gate the tenant's session
drain on a :class:`threading.Event` instead of racing wall clocks.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.data.io import problem_to_dict
from repro.data.synthetic import make_problem
from repro.net import AdmissionController
from repro.obs.metrics import get_registry
from repro.service.engine import AssignmentEngine

from tests.net_utils import HARD_TIMEOUT, ServerHarness, wait_until


def small_engine(seed: int = 0, num_papers: int = 12, num_reviewers: int = 10) -> AssignmentEngine:
    return AssignmentEngine(
        make_problem(num_papers, num_reviewers, num_topics=6, group_size=2, seed=seed)
    )


@pytest.fixture()
def harness():
    h = ServerHarness()
    h.add_tenant("sigmod", small_engine(seed=0), default=True)
    h.start()
    yield h
    h.stop()


class GatedSession:
    """Wraps a tenant's session so its drain blocks until released."""

    def __init__(self, tenant) -> None:
        self.gate = threading.Event()
        self._orig_drain = tenant.session.drain
        tenant.session.drain = self._gated_drain

    def _gated_drain(self):
        assert self.gate.wait(HARD_TIMEOUT), "gate never released"
        return self._orig_drain()

    def release(self) -> None:
        self.gate.set()


# ----------------------------------------------------------------------
# Basics: envelope, ordering, per-frame error isolation
# ----------------------------------------------------------------------
class TestProtocolBasics:
    def test_response_carries_tenant_and_seq(self, harness):
        response = harness.call({"kind": "stats", "id": 7})
        assert response["ok"] is True
        assert response["id"] == 7
        assert response["tenant"] == "sigmod"
        assert response["seq"] >= 1

    def test_pipelined_responses_keep_request_order(self, harness):
        with harness.client() as client:
            for i in range(20):
                client.send({"kind": "evaluate" if i % 2 else "stats", "id": i})
            ids = [client.recv()["id"] for i in range(20)]
        assert ids == list(range(20))

    def test_seq_is_the_tenant_total_order(self, harness):
        with harness.client() as client:
            for i in range(10):
                client.send({"kind": "stats", "id": i})
            seqs = [client.recv()["seq"] for _ in range(10)]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 10

    @pytest.mark.parametrize(
        "frame, fragment",
        [
            (b"\xff\xfe{}\n", "invalid UTF-8"),
            (b"{not json}\n", "invalid JSON"),
            (b"[1, 2, 3]\n", "JSON object"),
            (b'{"kind": "warp"}\n', "unknown request kind"),
            (b'{"kind": 42}\n', "string 'kind'"),
            (b'{"kind": "journal"}\n', "exactly one of"),
        ],
    )
    def test_malformed_frames_get_one_structured_error(self, harness, frame, fragment):
        with harness.client() as client:
            client.send_raw(frame)
            response = client.recv()
            assert response["ok"] is False
            assert response["error_type"] == "request"
            assert fragment in response["error"]
            assert "Traceback" not in response["error"]
            # the connection survives and serves the next request
            assert client.request({"kind": "stats"})["ok"] is True

    def test_oversized_line_is_answered_and_resynced(self):
        harness = ServerHarness(max_line_bytes=4096)
        harness.add_tenant("sigmod", small_engine(seed=0))
        harness.start()
        try:
            with harness.client() as client:
                client.send_raw(b'{"kind": "solve", "pad": "' + b"x" * 50_000 + b'"}\n')
                response = client.recv()
                assert response["ok"] is False
                assert "byte limit" in response["error"]
                assert client.request({"kind": "stats"})["ok"] is True
        finally:
            harness.stop()

    def test_blank_lines_are_skipped(self, harness):
        with harness.client() as client:
            client.send_raw(b"\n   \n")
            assert client.request({"kind": "stats", "id": 1})["id"] == 1


# ----------------------------------------------------------------------
# Multi-tenancy
# ----------------------------------------------------------------------
class TestTenancy:
    def test_requests_route_by_tenant_field(self, harness):
        harness.add_tenant("vldb", small_engine(seed=9, num_papers=7, num_reviewers=8))
        a = harness.call({"kind": "solve", "solver": "Greedy", "tenant": "sigmod"})
        b = harness.call({"kind": "solve", "solver": "Greedy", "tenant": "vldb"})
        assert a["ok"] and b["ok"]
        assert a["tenant"] == "sigmod" and b["tenant"] == "vldb"
        assert len(a["payload"]["assignment"]) == 12
        assert len(b["payload"]["assignment"]) == 7

    def test_default_tenant_serves_unrouted_requests(self, harness):
        harness.add_tenant("vldb", small_engine(seed=9))
        assert harness.call({"kind": "stats"})["tenant"] == "sigmod"

    def test_unknown_tenant_is_unknown_id(self, harness):
        response = harness.call({"kind": "stats", "tenant": "icde"})
        assert response["ok"] is False
        assert response["error_type"] == "unknown_id"
        assert "icde" in response["error"]

    def test_non_string_tenant_is_a_request_error(self, harness):
        response = harness.call({"kind": "stats", "tenant": 3})
        assert response["ok"] is False
        assert response["error_type"] == "request"

    def test_tenant_state_is_isolated(self, harness):
        harness.add_tenant("vldb", small_engine(seed=9))
        harness.call({"kind": "solve", "solver": "Greedy", "tenant": "vldb"})
        stats = harness.call({"kind": "stats", "tenant": "sigmod"})
        assert stats["payload"]["engine"]["has_assignment"] is False

    def test_create_list_evict_roundtrip(self, harness, tmp_path):
        problem = make_problem(6, 8, num_topics=5, group_size=2, seed=4)
        created = harness.call(
            {
                "kind": "create_tenant",
                "tenant": "kdd",
                "problem": problem_to_dict(problem),
                "warm": True,
            }
        )
        assert created["ok"] is True
        assert created["payload"]["num_papers"] == 6

        listed = harness.call({"kind": "list_tenants"})
        assert set(listed["payload"]["tenants"]) == {"sigmod", "kdd"}

        solved = harness.call({"kind": "solve", "solver": "Greedy", "tenant": "kdd"})
        assert solved["ok"] is True

        snapshot_path = tmp_path / "kdd.json"
        evicted = harness.call(
            {"kind": "evict_tenant", "tenant": "kdd", "snapshot_path": str(snapshot_path)}
        )
        assert evicted["ok"] is True
        assert snapshot_path.exists()
        gone = harness.call({"kind": "stats", "tenant": "kdd"})
        assert gone["error_type"] == "unknown_id"

        # resurrect from the snapshot: the installed assignment survives
        revived = harness.call(
            {"kind": "create_tenant", "tenant": "kdd", "snapshot_path": str(snapshot_path)}
        )
        assert revived["ok"] is True
        assert revived["payload"]["has_assignment"] is True

    def test_create_tenant_validates_input(self, harness):
        assert (
            harness.call({"kind": "create_tenant", "tenant": "x"})["error_type"]
            == "request"
        )
        assert (
            harness.call(
                {"kind": "create_tenant", "tenant": "sigmod", "problem": {}}
            )["error_type"]
            == "configuration"
        )
        bad = harness.call({"kind": "create_tenant", "tenant": "y", "problem": {"nope": 1}})
        assert bad["ok"] is False
        assert "Traceback" not in bad["error"]

    def test_evict_unknown_tenant_is_unknown_id(self, harness):
        assert (
            harness.call({"kind": "evict_tenant", "tenant": "icde"})["error_type"]
            == "unknown_id"
        )


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmissionController:
    def test_bounds_are_validated(self):
        with pytest.raises(ValueError):
            AdmissionController(max_pending=0)
        with pytest.raises(ValueError):
            AdmissionController(max_pending=10, max_total_pending=5)

    def test_per_tenant_and_total_bounds(self):
        admission = AdmissionController(max_pending=2, max_total_pending=3)
        assert admission.try_admit("a") is None
        assert admission.try_admit("a") is None
        assert "backlog is full" in admission.try_admit("a")  # per-tenant bound
        assert admission.try_admit("b") is None
        assert "backlog is full" in admission.try_admit("b")  # total bound
        admission.release("a")
        assert admission.try_admit("b") is None
        assert admission.total_pending == 3

    def test_drain_refuses_everything(self):
        admission = AdmissionController(max_pending=4)
        assert admission.try_admit("a") is None
        admission.drain()
        assert "draining" in admission.try_admit("a")
        assert admission.total_pending == 1  # in-flight work is untouched

    def test_forget_clears_a_tenant(self):
        admission = AdmissionController(max_pending=2)
        admission.try_admit("a")
        admission.try_admit("a")
        admission.forget("a")
        assert admission.total_pending == 0
        assert admission.try_admit("a") is None


class TestOverload:
    def test_excess_requests_are_refused_as_overloaded(self):
        harness = ServerHarness(max_pending=2)
        tenant = harness.add_tenant("sigmod", small_engine(seed=0))
        harness.start()
        gate = GatedSession(tenant)
        refusals = get_registry().counter("service.net.overloaded").value
        try:
            with harness.client() as client:
                for i in range(5):
                    client.send({"kind": "stats", "id": i})
                # wait until the server has parsed (and refused) the excess
                # before releasing the gate, so the count is deterministic
                wait_until(
                    lambda: get_registry().counter("service.net.overloaded").value
                    >= refusals + 3
                )
                gate.release()
                responses = [client.recv() for _ in range(5)]
            admitted = [r for r in responses if r["ok"]]
            refused = [r for r in responses if not r["ok"]]
            assert len(admitted) == 2
            assert len(refused) == 3
            for response in refused:
                assert response["error_type"] == "overloaded"
                assert "retry later" in response["error"]
                assert response["kind"] == "stats"  # the kind is still echoed
        finally:
            harness.stop()

    def test_admission_recovers_after_drain(self):
        harness = ServerHarness(max_pending=1)
        harness.add_tenant("sigmod", small_engine(seed=0))
        harness.start()
        try:
            # closed-loop: one in flight at a time never trips the bound
            with harness.client() as client:
                for i in range(10):
                    assert client.request({"kind": "stats", "id": i})["ok"] is True
        finally:
            harness.stop()


# ----------------------------------------------------------------------
# Cross-client batching
# ----------------------------------------------------------------------
class TestBatching:
    def test_queued_journal_queries_coalesce_into_one_drain(self):
        harness = ServerHarness()
        tenant = harness.add_tenant("sigmod", small_engine(seed=0))
        paper_ids = tenant.engine.problem.paper_ids
        harness.start()
        gate = GatedSession(tenant)
        before = get_registry().counter("service.net.batched_requests").value
        try:
            clients = [harness.client() for _ in range(4)]
            try:
                # Wake the worker with one query, then queue 8 compatible
                # ones from four different connections while it is gated.
                clients[0].send({"kind": "journal", "paper_id": paper_ids[0]})
                for i in range(8):
                    clients[i % 4].send(
                        {"kind": "journal", "paper_id": paper_ids[i % len(paper_ids)]}
                    )
                wait_until(lambda: tenant.pending == 9)
                gate.release()
                for i, client in enumerate(clients):
                    expected = 3 if i == 0 else 2
                    for _ in range(expected):
                        assert client.recv()["ok"] is True
            finally:
                for client in clients:
                    client.close()
            stats = harness.call({"kind": "stats"})["payload"]["session"]
            # the 8 gated queries arrived as one drain => one journal batch
            assert stats["journal_batches"] >= 1
            assert stats["batched_queries"] >= 2
            after = get_registry().counter("service.net.batched_requests").value
            assert after - before >= 9
        finally:
            harness.stop()


# ----------------------------------------------------------------------
# Graceful shutdown
# ----------------------------------------------------------------------
class TestShutdown:
    def test_shutdown_drains_in_flight_work_then_answers(self):
        harness = ServerHarness()
        tenant = harness.add_tenant("sigmod", small_engine(seed=0))
        harness.start()
        gate = GatedSession(tenant)
        try:
            worker = harness.client()
            controller = harness.client()
            late = harness.client()  # connected before the listener closes
            try:
                worker.send({"kind": "solve", "solver": "Greedy", "id": "slow"})
                wait_until(lambda: tenant.pending == 1)
                controller.send({"kind": "shutdown", "id": "bye"})
                # late arrivals during the drain are refused, not queued
                wait_until(lambda: harness.server.admission.draining)
                late.send({"kind": "stats", "id": "late"})
                gate.release()
                solved = worker.recv()
                assert solved["ok"] is True and solved["id"] == "slow"
                goodbye = controller.recv()
                assert goodbye["ok"] is True
                assert goodbye["payload"]["shutdown"] is True
                refused = late.recv()
                assert refused["error_type"] == "overloaded"
                assert "draining" in refused["error"]
            finally:
                worker.close()
                controller.close()
                late.close()
        finally:
            harness.stop()

    def test_shutdown_closes_the_listener(self, harness):
        assert harness.call({"kind": "shutdown"})["ok"] is True
        with pytest.raises(OSError):
            harness.client()


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
class TestNetObservability:
    def test_net_metrics_reach_the_global_registry(self, harness):
        registry = get_registry()
        before = registry.counter("service.net.requests").value
        harness.call({"kind": "stats"})
        harness.call({"kind": "stats"})
        assert registry.counter("service.net.requests").value >= before + 2
        snapshot = harness.call({"kind": "metrics"})["payload"]["metrics"]
        assert "service.net.connections" in snapshot
        assert "service.net.request.seconds" in snapshot

    def test_protocol_errors_are_counted(self, harness):
        registry = get_registry()
        before = registry.counter("service.net.protocol_errors").value
        harness.call({"kind": "definitely-not-a-kind"})
        assert registry.counter("service.net.protocol_errors").value == before + 1
