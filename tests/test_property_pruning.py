"""Property tests for the exact pruned candidate generation layer.

Two families of guarantees keep :mod:`repro.core.delta` honest:

* the **upper bound is admissible** — the marginal gain of any reviewer
  for any group never exceeds their pair score (to float rounding), for
  every registered scoring function, random instance and ``delta_p``;
* the **pruned answers are bitwise-exact** — the generator's column
  argmax equals the full masked scan (tie order included), and every
  solver wired onto pruning (Greedy, LocalSearch replace moves, JRA
  top-k) returns the identical result with pruning on and off, across
  random instances, widths and ``delta_p`` values.
"""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.assignment import Assignment
from repro.core.delta import PRUNE_MARGIN, PrunedCandidateGenerator
from repro.core.scoring import available_scoring_functions
from repro.cra.greedy import GreedySolver
from repro.cra.local_search import LocalSearchRefiner
from repro.cra.sdga import StageDeepeningGreedySolver
from repro.data.synthetic import make_problem
from repro.jra.topk import find_top_k_groups


@st.composite
def wgrap_instances(draw):
    """A random WGRAP instance plus a seeded partial assignment."""
    num_papers = draw(st.integers(min_value=4, max_value=12))
    num_reviewers = draw(st.integers(min_value=8, max_value=26))
    group_size = draw(st.integers(min_value=1, max_value=4))
    num_topics = draw(st.integers(min_value=3, max_value=10))
    scoring = draw(st.sampled_from(available_scoring_functions()))
    conflict_ratio = draw(st.sampled_from([0.0, 0.05, 0.15]))
    seed = draw(st.integers(min_value=0, max_value=100_000))
    try:
        problem = make_problem(
            num_papers=num_papers,
            num_reviewers=num_reviewers,
            num_topics=num_topics,
            group_size=group_size,
            seed=seed,
            conflict_ratio=conflict_ratio,
            scoring=scoring,
        )
    except Exception:  # dense conflicts can make a small instance infeasible
        assume(False)
    per_paper = draw(st.integers(min_value=0, max_value=group_size))
    width = draw(st.integers(min_value=1, max_value=num_reviewers))
    return problem, per_paper, width, seed


def _partial_assignment(problem, seed: int, per_paper: int) -> Assignment:
    rng = np.random.default_rng(seed)
    assignment = Assignment()
    loads = {rid: 0 for rid in problem.reviewer_ids}
    for paper_id in problem.paper_ids:
        candidates = [
            rid
            for rid in problem.candidate_reviewers(paper_id)
            if loads[rid] < problem.reviewer_workload
        ]
        count = min(per_paper, len(candidates))
        for index in rng.choice(len(candidates), size=count, replace=False):
            assignment.add(candidates[int(index)], paper_id)
            loads[candidates[int(index)]] += 1
    return assignment


@settings(max_examples=40, deadline=None)
@given(wgrap_instances())
def test_pair_score_bound_is_admissible(instance):
    """``gain(r | G, p) <= c(r, p)`` for every pair, group and scoring."""
    problem, per_paper, _, seed = instance
    dense = problem.dense_view()
    assignment = _partial_assignment(problem, seed, per_paper)
    group_vectors = dense.group_vectors(assignment)
    scores = dense.pair_scores()
    for paper_idx in range(problem.num_papers):
        gains = dense.gains_for_paper(group_vectors[paper_idx], paper_idx)
        assert np.all(gains <= scores[:, paper_idx] + PRUNE_MARGIN)


@settings(max_examples=40, deadline=None)
@given(wgrap_instances())
def test_pruned_column_argmax_equals_full_scan(instance):
    """Generator answers == full masked max/argmax, bitwise, any width."""
    problem, per_paper, width, seed = instance
    dense = problem.dense_view()
    assignment = _partial_assignment(problem, seed, per_paper)
    group_vectors = dense.group_vectors(assignment)
    generator = PrunedCandidateGenerator(dense, width=width)
    rng = np.random.default_rng(seed + 1)
    for paper_idx in range(problem.num_papers):
        eligible = dense.feasible[:, paper_idx] & (
            rng.random(problem.num_reviewers) < 0.8
        )
        value, row = generator.column_argmax(
            paper_idx, group_vectors[paper_idx], eligible
        )
        column = np.where(
            eligible,
            dense.gains_for_paper(group_vectors[paper_idx], paper_idx),
            -np.inf,
        )
        if not eligible.any():
            assert value == -np.inf and row == -1
            continue
        assert value == column.max()
        assert row == int(column.argmax())


@settings(max_examples=25, deadline=None)
@given(wgrap_instances())
def test_pruned_greedy_equals_unpruned(instance):
    problem, _, width, _ = instance
    pruned = GreedySolver(prune=True, prune_width=width).solve(problem)
    full = GreedySolver(prune=False).solve(problem)
    assert pruned.assignment == full.assignment
    assert pruned.score == full.score
    assert pruned.stats["iterations"] == full.stats["iterations"]


@settings(max_examples=15, deadline=None)
@given(wgrap_instances(), st.sampled_from(["all", "replace"]))
def test_pruned_local_search_equals_unpruned(instance, moves):
    problem, _, _, _ = instance
    base = StageDeepeningGreedySolver().solve(problem).assignment
    pruned, pruned_stats = LocalSearchRefiner(
        max_rounds=3, moves=moves, prune=True
    ).refine(problem, base)
    full, full_stats = LocalSearchRefiner(
        max_rounds=3, moves=moves, prune=False
    ).refine(problem, base)
    assert pruned == full
    assert pruned_stats["final_score"] == full_stats["final_score"]
    assert pruned_stats["moves_applied"] == full_stats["moves_applied"]


@settings(max_examples=20, deadline=None)
@given(wgrap_instances(), st.integers(min_value=1, max_value=3),
       st.sampled_from(["bba", "bfs"]))
def test_pruned_topk_equals_full_pool(instance, k, method):
    problem, _, width, _ = instance
    jra = problem.to_jra(problem.papers[0])
    pruned = find_top_k_groups(jra, k, method=method, prune=width)
    full = find_top_k_groups(jra, k, method=method)
    # Scores are bitwise-identical, and every reported score is honest.
    assert [entry.score for entry in pruned] == [entry.score for entry in full]
    for entry in pruned:
        assert jra.group_score(entry.reviewer_ids) == entry.score
    # Group identity is pinned whenever the top k+1 scores are pairwise
    # distinct (every rank then has a unique group); on exact ties branch
    # and bound keeps the first-discovered optimum and the pool
    # restriction may change discovery order among the tied groups (see
    # the module docstring of repro.jra.topk).
    boundary = [entry.score for entry in find_top_k_groups(jra, k + 1, method=method)]
    if len(set(boundary)) == len(boundary):
        assert [entry.reviewer_ids for entry in pruned] == [
            entry.reviewer_ids for entry in full
        ]
