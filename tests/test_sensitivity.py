"""Tests for the sensitivity-sweep experiments."""

from __future__ import annotations

from repro.experiments.runner import ExperimentConfig
from repro.experiments.sensitivity import (
    run_interdisciplinarity_sweep,
    run_topic_granularity_sweep,
)

_TINY = ExperimentConfig(scale=0.05, seed=23, num_topics=12, refinement_omega=3)
_FAST = ("SM", "SDGA", "SDGA-SRA")


class TestTopicGranularitySweep:
    def test_table_shape_and_bounds(self):
        table = run_topic_granularity_sweep(
            topic_counts=(6, 12), num_papers=15, num_reviewers=8,
            methods=_FAST, config=_TINY,
        )
        assert table.column("T") == [6, 12]
        for method in _FAST:
            for value in table.column(method):
                assert 0.0 < value <= 1.0 + 1e-9
        for gap in table.column("SDGA-SRA minus SM"):
            assert gap >= -1e-9


class TestInterdisciplinaritySweep:
    def test_table_shape_and_bounds(self):
        table = run_interdisciplinarity_sweep(
            ratios_of_interdisciplinary_papers=(0.0, 1.0),
            num_papers=15, num_reviewers=8, methods=_FAST, config=_TINY,
        )
        assert table.column("interdisciplinary ratio") == [0.0, 1.0]
        for gap in table.column("SDGA-SRA minus SM"):
            assert gap >= -1e-9
