"""Integration tests: end-to-end workflows and the runnable examples."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

from repro.cra.sra import SDGAWithRefinementSolver
from repro.data.io import load_problem, save_problem
from repro.data.synthetic import SyntheticCorpusGenerator
from repro.experiments.runner import run_cra_methods
from repro.metrics.quality import optimality_ratio, superiority_ratio
from repro.topics.pipeline import TopicExtractionPipeline

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestTextToAssignmentPipeline:
    """Raw abstracts -> ATM -> EM -> WGRAP -> SDGA-SRA, all in one go."""

    @pytest.fixture(scope="class")
    def solved(self):
        generator = SyntheticCorpusGenerator(
            num_topics=5, words_per_topic=12, background_words=10, seed=31
        )
        corpus = generator.generate(
            num_authors=14,
            publications_per_author=(2, 4),
            num_submissions=18,
            tokens_per_document=(40, 80),
        )
        pipeline = TopicExtractionPipeline(num_topics=5, atm_iterations=40, seed=0)
        pipeline.fit(corpus.publications)
        problem = pipeline.build_problem(
            submissions=list(corpus.submissions), group_size=2
        )
        result = SDGAWithRefinementSolver().solve(problem)
        return problem, result

    def test_pipeline_produces_a_feasible_assignment(self, solved):
        problem, result = solved
        problem.validate_assignment(result.assignment)
        assert result.score > 0.0

    def test_pipeline_assignment_quality_is_reasonable(self, solved):
        problem, result = solved
        ratio = optimality_ratio(problem, result.assignment)
        assert ratio > 0.7  # loose: the topic model is fitted on a tiny corpus

    def test_round_trip_through_json_preserves_evaluation(self, solved, tmp_path):
        problem, result = solved
        loaded = load_problem(save_problem(problem, tmp_path / "problem.json"))
        assert loaded.assignment_score(result.assignment) == pytest.approx(result.score)


class TestMethodComparisonWorkflow:
    def test_paper_shape_on_a_scaled_conference(self, medium_problem):
        """SM <= Greedy-family <= SDGA-SRA, and SDGA-SRA wins most papers."""
        results = run_cra_methods(
            medium_problem, methods=("SM", "Greedy", "SDGA", "SDGA-SRA")
        )
        assert results["SDGA-SRA"].score >= results["SDGA"].score - 1e-9
        assert results["SDGA-SRA"].score >= results["SM"].score - 1e-9
        breakdown = superiority_ratio(
            medium_problem,
            results["SDGA-SRA"].assignment,
            results["SM"].assignment,
        )
        assert breakdown.superiority >= 0.5


class TestExamples:
    """Every example script must run to completion as-is."""

    @pytest.mark.parametrize(
        "script",
        [
            "quickstart.py",
            "journal_assignment.py",
            "conference_assignment.py",
            "compare_baselines.py",
            "case_study_report.py",
            "bidding_and_maintenance.py",
        ],
    )
    def test_example_runs(self, script, capsys, monkeypatch, tmp_path):
        path = EXAMPLES_DIR / script
        assert path.exists(), f"missing example {script}"
        # Keep example artefacts (JSON outputs) inside the temp directory.
        monkeypatch.chdir(tmp_path)
        monkeypatch.setattr(sys, "argv", [str(path)])
        runpy.run_path(str(path), run_name="__main__")
        output = capsys.readouterr().out
        assert output.strip(), f"example {script} produced no output"
