"""Tests for the retrieval-based (RRAP) strawman of Definition 4."""

from __future__ import annotations

import pytest

from repro.core.entities import Paper, Reviewer
from repro.core.problem import WGRAPProblem
from repro.core.vectors import TopicVector
from repro.cra.retrieval import solve_retrieval_assignment
from repro.data.synthetic import make_problem
from repro.exceptions import ConfigurationError


class TestRetrievalAssignment:
    def test_every_reviewer_gets_their_top_papers(self, small_problem):
        result = solve_retrieval_assignment(small_problem)
        for reviewer_id in small_problem.reviewer_ids:
            assert result.assignment.load(reviewer_id) <= small_problem.reviewer_workload
        # The RRAP objective equals the sum of the selected pair scores.
        recomputed = sum(
            small_problem.pair_score(reviewer_id, paper_id)
            for reviewer_id, paper_id in result.assignment.pairs()
        )
        assert result.pairwise_score == pytest.approx(recomputed)

    def test_respects_conflicts(self):
        problem = make_problem(
            num_papers=10, num_reviewers=6, num_topics=8, conflict_ratio=0.1, seed=3
        )
        result = solve_retrieval_assignment(problem)
        for reviewer_id, paper_id in result.assignment.pairs():
            assert problem.is_feasible_pair(reviewer_id, paper_id)

    def test_workload_override_and_validation(self, small_problem):
        result = solve_retrieval_assignment(small_problem, reviews_per_reviewer=1)
        for reviewer_id in small_problem.reviewer_ids:
            assert result.assignment.load(reviewer_id) <= 1
        with pytest.raises(ConfigurationError):
            solve_retrieval_assignment(small_problem, reviews_per_reviewer=0)

    def test_figure_1a_imbalance(self):
        """The motivating example: popular topics pile up, other papers starve."""
        # Three papers: two on "spatial" (topic 0), one on "social networks"
        # (topic 1).  Both reviewers work on spatial topics.
        papers = [
            Paper(id="spatial-1", vector=TopicVector([1.0, 0.0])),
            Paper(id="spatial-2", vector=TopicVector([0.9, 0.1])),
            Paper(id="social", vector=TopicVector([0.0, 1.0])),
        ]
        reviewers = [
            Reviewer(id="r1", vector=TopicVector([0.95, 0.05])),
            Reviewer(id="r2", vector=TopicVector([0.85, 0.15])),
        ]
        problem = WGRAPProblem(
            papers=papers, reviewers=reviewers, group_size=1, reviewer_workload=2
        )
        result = solve_retrieval_assignment(problem)
        # The social-networks paper is nobody's top pick: it goes unreviewed.
        assert "social" in result.unreviewed_papers
        # While the spatial papers accumulate every review.
        assert result.assignment.group_size("spatial-1") + result.assignment.group_size(
            "spatial-2"
        ) == len(result.assignment)

    def test_group_constrained_methods_fix_the_imbalance(self):
        """Any feasible WGRAP solver reviews every paper — unlike RRAP."""
        from repro.cra.sdga import StageDeepeningGreedySolver

        problem = make_problem(num_papers=12, num_reviewers=6, num_topics=6,
                               group_size=2, seed=9)
        retrieval = solve_retrieval_assignment(problem)
        sdga = StageDeepeningGreedySolver().solve(problem)
        for paper_id in problem.paper_ids:
            assert sdga.assignment.group_size(paper_id) == problem.group_size
        # RRAP's pairwise objective can be high even when papers starve,
        # which is exactly why the paper rejects it as an objective.
        assert isinstance(retrieval.unreviewed_papers, tuple)
