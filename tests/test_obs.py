"""Tests for :mod:`repro.obs` — metrics math, span tracing, name contract.

Three layers of guarantees:

* the fixed-bucket histogram's arithmetic (boundary placement,
  interpolated percentiles, shard merges) is pinned with exact values;
* the tracer builds correct trees under nesting, exceptions and
  concurrency — including through the real portfolio racer;
* every span opened and metric registered anywhere in the source tree
  matches the contract of :mod:`repro.obs.names` (so the docs tables,
  checked by ``tests/test_docs.py``, cannot silently rot).
"""

from __future__ import annotations

import re
import threading
from pathlib import Path

import pytest

from repro.data.synthetic import make_problem
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.names import METRIC_NAMES, SPAN_NAMES, matches_name
from repro.obs.trace import NOOP_SPAN, Tracer, get_tracer

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


@pytest.fixture
def tracer():
    """A private enabled tracer (never the shared process-global one)."""
    tracer = Tracer(capacity=8)
    tracer.enabled = True
    return tracer


class TestHistogramMath:
    def test_bounds_must_be_non_empty_and_ascending(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_upper_bounds_are_inclusive(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 3.0))
        histogram.observe(1.0)   # exactly on a bound -> that bucket
        histogram.observe(1.5)
        histogram.observe(3.0)
        buckets = histogram.snapshot()["buckets"]
        assert buckets == {"1": 1, "2": 1, "3": 1, "+Inf": 0}

    def test_overflow_bucket_catches_values_above_the_last_bound(self):
        histogram = Histogram("h", buckets=(1.0,))
        histogram.observe(5.0)
        assert histogram.snapshot()["buckets"] == {"1": 0, "+Inf": 1}

    def test_percentiles_interpolate_linearly_within_the_bucket(self):
        histogram = Histogram("h", buckets=(10.0,))
        histogram.observe(1.0)
        histogram.observe(9.0)
        # rank(p50) = 1 of 2 in the [0, 10] bucket -> 0 + (1/2) * 10.
        assert histogram.percentile(50.0) == pytest.approx(5.0)

    def test_percentiles_clamp_to_the_observed_range(self):
        histogram = Histogram("h", buckets=(10.0,))
        histogram.observe(1.0)
        histogram.observe(9.0)
        # Raw interpolation says 9.9; nothing above 9.0 was ever seen.
        assert histogram.percentile(99.0) == pytest.approx(9.0)
        assert histogram.percentile(1.0) == pytest.approx(1.0)

    def test_percentile_of_the_overflow_bucket_is_the_exact_max(self):
        histogram = Histogram("h", buckets=(1.0,))
        histogram.observe(5.0)
        histogram.observe(7.0)
        assert histogram.percentile(99.0) == 7.0

    def test_empty_histogram_reports_zero(self):
        histogram = Histogram("h")
        assert histogram.percentile(50.0) == 0.0
        snap = histogram.snapshot()
        assert snap["count"] == 0
        assert "p50" not in snap

    def test_percentile_rejects_out_of_range_q(self):
        histogram = Histogram("h")
        with pytest.raises(ValueError):
            histogram.percentile(0.0)
        with pytest.raises(ValueError):
            histogram.percentile(101.0)

    def test_merge_of_shard_local_histograms(self):
        left = Histogram("left", buckets=(1.0, 10.0))
        right = Histogram("right", buckets=(1.0, 10.0))
        for value in (0.5, 2.0):
            left.observe(value)
        for value in (4.0, 20.0):
            right.observe(value)
        left.merge_from(right)
        snap = left.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(26.5)
        assert snap["min"] == 0.5
        assert snap["max"] == 20.0
        assert snap["buckets"] == {"1": 1, "10": 2, "+Inf": 1}
        # p99 ranks into the overflow bucket -> the merged exact max.
        assert left.percentile(99.0) == 20.0

    def test_merge_rejects_mismatched_bounds(self):
        left = Histogram("left", buckets=(1.0, 10.0))
        right = Histogram("right", buckets=(1.0, 5.0))
        with pytest.raises(ValueError):
            left.merge_from(right)

    def test_default_buckets_are_ascending(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestCountersAndRegistry:
    def test_counter_accepts_negative_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(-1)
        assert counter.value == 0

    def test_gauge_set_and_inc(self):
        gauge = Gauge("g")
        gauge.set(3.5)
        gauge.inc(0.5)
        assert gauge.value == 4.0

    def test_get_or_create_returns_the_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.get("a") is registry.counter("a")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.histogram("a")

    def test_snapshot_shapes(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["c"] == 2
        assert snap["g"] == 1.5
        assert snap["h"]["count"] == 1
        assert snap["h"]["p99"] == pytest.approx(0.5)

    def test_prometheus_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("service.requests", "requests dispatched").inc(3)
        histogram = registry.histogram("req.seconds", buckets=(1.0, 10.0))
        histogram.observe(0.5)
        histogram.observe(20.0)
        text = registry.to_prometheus()
        assert "# TYPE service_requests counter" in text
        assert "service_requests 3" in text
        assert "# HELP service_requests requests dispatched" in text
        assert "# TYPE req_seconds histogram" in text
        # Bucket counts are cumulative in the exposition format.
        assert 'req_seconds_bucket{le="1"} 1' in text
        assert 'req_seconds_bucket{le="10"} 1' in text
        assert 'req_seconds_bucket{le="+Inf"} 2' in text
        assert "req_seconds_sum 20.5" in text
        assert "req_seconds_count 2" in text

    def test_global_registry_is_a_singleton(self):
        assert get_registry() is get_registry()


class TestTracer:
    def test_disabled_tracer_hands_out_the_shared_noop_span(self):
        tracer = Tracer()
        assert tracer.enabled is False
        span = tracer.span("anything", attr=1)
        assert span is NOOP_SPAN
        with span as entered:
            entered.set(more=2)  # no-ops, records nothing
        assert tracer.last_trace() is None

    def test_nesting_builds_a_tree(self, tracer):
        with tracer.span("root", depth=0):
            with tracer.span("child-a") as a:
                a.set(n=1)
            with tracer.span("child-b"):
                with tracer.span("grandchild"):
                    pass
        trace_id, root = tracer.last_trace()
        assert root.name == "root"
        assert root.trace_id == trace_id
        assert [child.name for child in root.children] == ["child-a", "child-b"]
        assert root.children[1].children[0].name == "grandchild"
        assert root.children[0].attrs == {"n": 1}
        assert root.seconds >= root.children[0].seconds

    def test_to_dict_and_format_tree(self, tracer):
        with tracer.span("root"):
            with tracer.span("child", k="v"):
                pass
        _, root = tracer.last_trace()
        node = root.to_dict()
        assert node["name"] == "root"
        assert node["children"][0]["attrs"] == {"k": "v"}
        rendered = root.format_tree()
        assert "root" in rendered and "└─ child" in rendered and "k=v" in rendered

    def test_exceptions_are_recorded_and_propagate(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("root"):
                with tracer.span("child"):
                    raise RuntimeError("boom")
        _, root = tracer.last_trace()
        assert root.attrs["error"] == "RuntimeError"
        assert root.children[0].attrs["error"] == "RuntimeError"

    def test_leaked_children_are_unwound_defensively(self, tracer):
        root = tracer.span("root")
        root.__enter__()
        tracer.span("leaked").__enter__()  # never exited
        root.__exit__(None, None, None)
        assert tracer._stack() == []
        assert tracer.last_trace()[1].name == "root"

    def test_ring_buffer_trims_to_capacity(self, tracer):
        for index in range(20):
            with tracer.span(f"root-{index}"):
                pass
        ids = tracer.trace_ids()
        assert len(ids) == tracer.capacity == 8
        # The survivors are the most recent traces, oldest first.
        assert tracer.get_trace(ids[-1]).name == "root-19"
        assert tracer.get_trace(ids[0]).name == "root-12"

    def test_explicit_trace_ids_are_honoured(self, tracer):
        with tracer.span("root", trace_id="t-custom"):
            pass
        assert tracer.get_trace("t-custom").name == "root"

    def test_thread_safety_under_concurrent_nested_traces(self):
        tracer = Tracer(capacity=1024)
        tracer.enabled = True
        num_threads, traces_per_thread = 8, 25
        errors: list[str] = []

        def worker(worker_id: int) -> None:
            for index in range(traces_per_thread):
                with tracer.span(f"root-{worker_id}"):
                    with tracer.span("inner"):
                        with tracer.span("leaf"):
                            pass
                    with tracer.span("sibling"):
                        pass
                if tracer._stack():
                    errors.append(f"worker {worker_id}: stack not empty at {index}")

        threads = [
            threading.Thread(target=worker, args=(worker_id,))
            for worker_id in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        ids = tracer.trace_ids()
        assert len(ids) == num_threads * traces_per_thread
        for trace_id in ids:
            root = tracer.get_trace(trace_id)
            # Every tree is intact: no cross-thread children leaked in.
            assert [child.name for child in root.children] == ["inner", "sibling"]
            assert [leaf.name for leaf in root.children[0].children] == ["leaf"]

    def test_tracing_through_concurrent_portfolio_races(self):
        from repro.parallel.portfolio import run_portfolio

        problem_a = make_problem(num_reviewers=10, num_papers=5, num_topics=4, seed=1)
        problem_b = make_problem(num_reviewers=10, num_papers=5, num_topics=4, seed=2)
        tracer = get_tracer()
        tracer.clear()
        tracer.enabled = True
        failures: list[BaseException] = []

        def race(problem) -> None:
            try:
                run_portfolio(problem, solvers=("Greedy", "SDGA"))
            except BaseException as exc:  # surfaced after join
                failures.append(exc)

        try:
            threads = [
                threading.Thread(target=race, args=(problem,))
                for problem in (problem_a, problem_b)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not failures
            roots = [tracer.get_trace(trace_id) for trace_id in tracer.trace_ids()]
            races = [root for root in roots if root.name == "portfolio.race"]
            assert len(races) == 2
            for race_root in races:
                solver_spans = [
                    child for child in race_root.children
                    if child.name.startswith("solver.")
                ]
                assert len(solver_spans) == 2
                assert race_root.attrs["best"]
        finally:
            tracer.enabled = False
            tracer.clear()


class TestNameContract:
    def test_matches_name_examples(self):
        assert matches_name("engine.solves")
        assert matches_name("service.request.solve.seconds")
        assert matches_name("solver.SDGA-SRA.seconds")
        assert not matches_name("engine.unheard_of")
        assert matches_name("request.journal", kind="span")
        assert matches_name("sdga.stage", kind="span")
        assert not matches_name("nonexistent.span", kind="span")

    def test_every_span_call_site_matches_the_contract(self):
        """Grep the source tree: every ``.span("...")`` literal is registered."""
        call = re.compile(r"\.span\(\s*\n?\s*f?\"([^\"]+)\"")
        found: dict[str, str] = {}
        for path in sorted(SRC_ROOT.rglob("*.py")):
            if path.parent.name == "obs":
                continue  # the contract module documents the pattern itself
            for match in call.finditer(path.read_text(encoding="utf-8")):
                literal = match.group(1)
                # f-string holes stand for one dynamic path segment.
                name = re.sub(r"\{[^}]*\}", "x", literal)
                found[name] = str(path)
        assert found, "no span call sites found — did the grep pattern rot?"
        unregistered = {
            name: where
            for name, where in found.items()
            if not matches_name(name, kind="span")
        }
        assert not unregistered, (
            f"span names missing from repro.obs.names.SPAN_NAMES: {unregistered}"
        )

    def test_span_contract_has_no_dead_entries(self):
        """Every SPAN_NAMES entry corresponds to a real call site."""
        source = "\n".join(
            path.read_text(encoding="utf-8") for path in sorted(SRC_ROOT.rglob("*.py"))
        )
        for pattern in SPAN_NAMES:
            prefix = pattern.split("<")[0].rstrip(".")
            assert f'"{prefix}' in source or f'f"{prefix}' in source, (
                f"SPAN_NAMES entry {pattern!r} has no call site in src/"
            )

    def test_every_registered_metric_matches_the_contract(self):
        """Exercise the engine + session, then audit every live metric name."""
        from repro.service.engine import AssignmentEngine
        from repro.service.requests import request_from_dict
        from repro.service.session import EngineSession

        problem = make_problem(num_reviewers=10, num_papers=5, num_topics=4, seed=3)
        engine = AssignmentEngine(problem)
        session = EngineSession(engine)
        for payload in (
            {"kind": "solve", "solver": "Greedy"},
            {"kind": "portfolio", "solvers": ["Greedy", "SDGA"]},
            {"kind": "journal", "paper_id": problem.papers[0].id},
            {"kind": "evaluate"},
            {"kind": "withdraw_reviewer", "reviewer_id": "missing"},  # fails
            {"kind": "metrics"},
            {"kind": "stats"},
        ):
            session.dispatch(request_from_dict(payload))
        names = list(engine.metrics_snapshot())
        offenders = [name for name in names if not matches_name(name)]
        assert not offenders, (
            f"metric names missing from repro.obs.names.METRIC_NAMES: {offenders}"
        )
        # The audit saw both registries and the absorbed gauges.
        assert "solver.Greedy.seconds" in names
        assert any(name.startswith("cache.") for name in names)
        assert any(name.startswith("delta.") for name in names)
        assert "service.errors.unknown_id" in names


class TestEngineMetricsIntegration:
    def test_stats_keeps_flat_counters_and_adds_a_metrics_block(self):
        from repro.service.engine import AssignmentEngine

        problem = make_problem(num_reviewers=10, num_papers=5, num_topics=4, seed=4)
        engine = AssignmentEngine(problem)
        engine.solve(solver="Greedy")
        engine.journal_query(problem.papers[0].id)
        stats = engine.stats()
        assert stats["solves"] == 1
        assert stats["journal_queries"] == 1
        metrics = stats["metrics"]
        assert metrics["engine.solves"] == 1
        assert metrics["engine.solve.seconds"]["count"] == 1
        assert metrics["engine.journal.seconds"]["count"] == 1
        assert "p99" in metrics["engine.solve.seconds"]

    def test_engine_registries_are_isolated(self):
        from repro.service.engine import AssignmentEngine

        problem = make_problem(num_reviewers=10, num_papers=5, num_topics=4, seed=5)
        first = AssignmentEngine(problem)
        second = AssignmentEngine(
            make_problem(num_reviewers=10, num_papers=5, num_topics=4, seed=6)
        )
        first.solve(solver="Greedy")
        assert first.metrics_registry.counter("engine.solves").value == 1
        assert second.metrics_registry.counter("engine.solves").value == 0

    def test_journal_answer_elapsed_feeds_the_histogram(self):
        from repro.service.engine import AssignmentEngine

        problem = make_problem(num_reviewers=10, num_papers=5, num_topics=4, seed=7)
        engine = AssignmentEngine(problem)
        answer = engine.journal_query(problem.papers[0].id)
        snap = engine.metrics_registry.get("engine.journal.seconds").snapshot()
        assert snap["count"] == 1
        assert snap["sum"] == pytest.approx(answer.elapsed_seconds, rel=1e-6)


class TestStoreObservability:
    """``store.*`` spans and gauges of the pluggable storage layer."""

    def _store_engine(self, tmp_path):
        from repro.service.engine import AssignmentEngine
        from repro.store import SqliteProblemStore

        problem = make_problem(
            num_reviewers=12, num_papers=6, num_topics=4, reviewer_workload=4, seed=8
        )
        store = SqliteProblemStore.create(
            tmp_path / "obs.db", problem, blocks=True, block_cols=2
        )
        return store, AssignmentEngine.from_store(store)

    def test_store_spans_are_emitted_and_registered(self, tmp_path):
        from repro.core.entities import Paper

        import numpy as np

        tracer = get_tracer()
        previously = tracer.enabled
        tracer.enabled = True
        try:
            store, engine = self._store_engine(tmp_path)
            engine.solve("Greedy")
            engine.add_paper(
                Paper(id="obs-late", vector=np.full(4, 0.25, dtype=np.float64))
            )
            names = set()
            for trace_id in tracer.trace_ids():
                stack = [tracer.get_trace(trace_id)]
                while stack:
                    node = stack.pop()
                    names.add(node.name)
                    stack.extend(node.children)
            store.close()
        finally:
            tracer.enabled = previously
        for expected in ("store.open", "store.compile", "store.index_update"):
            assert expected in names, f"missing span {expected!r} in {sorted(names)}"
            assert matches_name(expected, kind="span")
        assert any(name == "store.block_io" for name in names)

    def test_store_gauges_are_absorbed_into_metrics(self, tmp_path):
        store, engine = self._store_engine(tmp_path)
        try:
            engine.solve("Greedy")
            names = list(engine.metrics_snapshot())
            store_gauges = [name for name in names if name.startswith("store.")]
            assert "store.reviewer_rows" in store_gauges
            assert "store.index_rows" in store_gauges
            assert any(name.startswith("store.blocks_") for name in store_gauges)
            offenders = [name for name in store_gauges if not matches_name(name)]
            assert not offenders, f"unregistered store metrics: {offenders}"
        finally:
            store.close()

    def test_stats_exposes_the_store_block(self, tmp_path):
        store, engine = self._store_engine(tmp_path)
        try:
            stats = engine.stats()
            assert stats["store"]["kind"] == "sqlite"
            assert stats["store"]["reviewer_rows"] == 12
        finally:
            store.close()

    def test_memory_backend_also_reports(self):
        from repro.service.engine import AssignmentEngine

        problem = make_problem(num_reviewers=8, num_papers=4, num_topics=4, seed=9)
        engine = AssignmentEngine(problem)
        stats = engine.stats()
        assert stats["store"]["kind"] == "memory"
