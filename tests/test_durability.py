"""Unit tests for :mod:`repro.durability` — WAL codec, segments,
checkpointing, recovery, and the atomic-write crash contract.

The network-level crash/recovery behaviour lives in
``tests/test_net_durability.py``; the end-to-end bitwise conformance
regime in ``tests/conformance/test_recovery_conformance.py``.  This
module pins the building blocks: a WAL record survives its codec
bitwise, a torn tail of *any* length recovers to the last complete
record without raising (property-tested with Hypothesis), rotation
keeps exactly one segment, and a crash injected between the atomic
write's fsync and its rename leaves the old file intact.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.io import atomic_write_text
from repro.durability import (
    DurabilityConfig,
    FSYNC_POLICIES,
    TenantJournal,
    WalRecord,
    WriteAheadLog,
    decode_line,
    encode_record,
    read_wal,
    segment_paths,
)
from repro.exceptions import ConfigurationError
from repro.fault import FaultInjected, get_failpoints
from repro.obs.metrics import get_registry
from repro.data.synthetic import make_problem
from repro.service.engine import AssignmentEngine
from repro.service.requests import request_from_dict
from repro.service.session import EngineSession

from tests.net_utils import strip_volatile


@pytest.fixture(autouse=True)
def _clean_failpoints():
    get_failpoints().reset()
    yield
    get_failpoints().reset()


def small_engine() -> AssignmentEngine:
    problem = make_problem(
        num_papers=8, num_reviewers=8, num_topics=6, group_size=2,
        reviewer_workload=5, conflict_ratio=0.0, seed=11,
    )
    return AssignmentEngine(problem)


def record(seq: int, *, cseq: int | None = None) -> WalRecord:
    return WalRecord(
        seq=seq,
        kind="update_bids",
        request={"kind": "update_bids", "bids": [["r", "p", 0.5]], "seq": cseq},
        client_seq=cseq,
    )


class TestWalCodec:
    def test_round_trip_is_exact(self):
        original = record(7, cseq=3)
        decoded = decode_line(encode_record(original))
        assert decoded == original

    def test_missing_newline_is_incomplete(self):
        line = encode_record(record(1))
        assert decode_line(line[:-1]) is None

    @pytest.mark.parametrize("mangle", [
        lambda line: line[: len(line) // 2] + b"\n",          # torn mid-record
        lambda line: line.replace(b'"seq"', b'"sqe"', 1),      # CRC mismatch
        lambda line: b"not json at all\n",
        lambda line: b"[1, 2, 3]\n",                           # non-object
        lambda line: b"\xff\xfe garbage \n",                   # invalid UTF-8
    ])
    def test_corruption_yields_none_never_raises(self, mangle):
        assert decode_line(mangle(encode_record(record(1)))) is None

    def test_wrong_version_is_rejected(self):
        body = record(1).to_body()
        body["v"] = 999
        import zlib
        canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
        body["crc"] = zlib.crc32(canonical.encode("utf-8"))
        line = (json.dumps(body, sort_keys=True, separators=(",", ":")) + "\n").encode()
        assert decode_line(line) is None


class TestWriteAheadLog:
    def test_append_and_read_back(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.open_segment(1)
        for seq in (1, 2, 3):
            wal.append(record(seq))
        wal.sync()
        wal.close()
        result = read_wal(tmp_path)
        assert [r.seq for r in result.records] == [1, 2, 3]
        assert result.dropped_bytes == 0
        assert result.segments == 1

    def test_unknown_fsync_policy_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            WriteAheadLog(tmp_path, fsync="sometimes")

    def test_always_policy_fsyncs_per_record(self, tmp_path):
        counter = get_registry().counter("durability.wal.fsyncs", "")
        before = counter.value
        wal = WriteAheadLog(tmp_path, fsync="always")
        wal.open_segment(1)
        wal.append(record(1))
        wal.append(record(2))
        wal.close()
        assert counter.value - before == 2

    def test_rotation_deletes_old_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.open_segment(1)
        wal.append(record(1))
        wal.rotate(2)
        wal.append(record(2))
        wal.close()
        assert [p.name for p in segment_paths(tmp_path)] == ["wal-000000000002.jsonl"]
        assert [r.seq for r in read_wal(tmp_path).records] == [2]

    def test_non_ascending_seq_breaks_the_scan(self, tmp_path):
        data = encode_record(record(5)) + encode_record(record(5))
        (tmp_path / "wal-000000000005.jsonl").write_bytes(data)
        result = read_wal(tmp_path)
        assert [r.seq for r in result.records] == [5]
        assert result.dropped_bytes == len(encode_record(record(5)))

    def test_torn_first_segment_drops_later_segments_entirely(self, tmp_path):
        (tmp_path / "wal-000000000001.jsonl").write_bytes(
            encode_record(record(1)) + b'{"torn": '
        )
        later = encode_record(record(2))
        (tmp_path / "wal-000000000002.jsonl").write_bytes(later)
        result = read_wal(tmp_path)
        assert [r.seq for r in result.records] == [1]
        assert result.dropped_bytes == len(b'{"torn": ') + len(later)
        assert result.segments == 2


class TestArbitraryTruncation:
    """Satellite: a WAL cut anywhere recovers cleanly, never raises."""

    LINES = [encode_record(record(seq, cseq=seq)) for seq in range(1, 7)]
    BLOB = b"".join(LINES)

    @settings(max_examples=60, deadline=None)
    @given(cut=st.integers(min_value=0, max_value=len(BLOB)))
    def test_any_cut_recovers_to_the_last_complete_record(self, cut, tmp_path_factory):
        directory = tmp_path_factory.mktemp("torn")
        (directory / "wal-000000000001.jsonl").write_bytes(self.BLOB[:cut])
        result = read_wal(directory)  # must not raise, whatever the cut
        consumed = 0
        expected = []
        for seq, line in enumerate(self.LINES, start=1):
            if consumed + len(line) > cut:
                break
            consumed += len(line)
            expected.append(seq)
        assert [r.seq for r in result.records] == expected
        assert result.dropped_bytes == cut - consumed


class TestDurabilityConfig:
    def test_rejects_unknown_policy_and_bad_intervals(self, tmp_path):
        with pytest.raises(ConfigurationError):
            DurabilityConfig(root=tmp_path, fsync="sometimes")
        with pytest.raises(ConfigurationError):
            DurabilityConfig(root=tmp_path, checkpoint_every=0)
        with pytest.raises(ConfigurationError):
            DurabilityConfig(root=tmp_path, applied_limit=0)

    def test_policy_vocabulary_is_closed(self):
        assert set(FSYNC_POLICIES) == {"never", "batch", "always"}


class TestTenantJournal:
    def churn(self, journal: TenantJournal, session: EngineSession, engine):
        """Apply a deterministic mutation stream through the journal."""
        problem = engine.problem
        payloads = [
            {"kind": "solve", "solver": "Greedy", "seq": 1},
            {
                "kind": "update_bids", "seq": 2,
                "bids": [[problem.reviewer_ids[0], problem.paper_ids[0], 1.0]],
            },
            {"kind": "withdraw_reviewer", "reviewer_id": problem.reviewer_ids[-1], "seq": 3},
            {"kind": "solve", "solver": "Greedy", "seq": 4},
        ]
        responses = []
        for seq, payload in enumerate(payloads, start=1):
            request = request_from_dict(payload)
            journal.append(seq, request)
            response = session.dispatch(request)
            assert response.ok, response.error
            if request.client_seq is not None:
                journal.record_applied(request.client_seq, response)
            responses.append(response)
        journal.sync_batch()
        return responses

    def test_crash_recovery_is_bitwise(self, tmp_path):
        config = DurabilityConfig(root=tmp_path)
        journal = TenantJournal(config, "conf")
        engine = small_engine()
        journal.initialise(engine)
        session = EngineSession(engine)
        self.churn(journal, session, engine)
        journal.abort()  # crash: no checkpoint, WAL tail only

        recovered = TenantJournal(config, "conf").recover()
        assert json.dumps(recovered.engine.to_snapshot(), sort_keys=True) == (
            json.dumps(engine.to_snapshot(), sort_keys=True)
        )
        assert recovered.engine.revision == engine.revision
        stats = recovered.stats
        assert stats.replayed_records == 4
        assert stats.checkpoint_seq == 0
        assert stats.last_seq == 4
        assert stats.dropped_bytes == 0
        assert sorted(recovered.replayed) == [1, 2, 3, 4]
        assert recovered.next_seq == 5

    def test_recovery_rebuilds_the_applied_map(self, tmp_path):
        config = DurabilityConfig(root=tmp_path)
        journal = TenantJournal(config, "conf")
        engine = small_engine()
        journal.initialise(engine)
        responses = self.churn(journal, EngineSession(engine), engine)
        journal.abort()

        fresh = TenantJournal(config, "conf")
        outcome = fresh.recover()
        assert sorted(fresh.applied) == [1, 2, 3, 4]
        for cseq, original in zip((1, 2, 3, 4), responses):
            # Replay recomputes, so wall-clock fields differ; the semantic
            # content must be identical.
            assert strip_volatile(fresh.applied[cseq].to_dict()) == (
                strip_volatile(original.to_dict())
            )
        assert outcome.stats.restored_applied == 0  # all came from replay

    def test_checkpoint_collapses_the_wal(self, tmp_path):
        config = DurabilityConfig(root=tmp_path)
        journal = TenantJournal(config, "conf")
        engine = small_engine()
        journal.initialise(engine)
        self.churn(journal, EngineSession(engine), engine)
        journal.checkpoint(engine)
        assert read_wal(journal.directory).records == ()
        journal.close()

        outcome = TenantJournal(config, "conf").recover()
        assert outcome.stats.replayed_records == 0
        assert outcome.stats.checkpoint_seq == 4
        assert json.dumps(outcome.engine.to_snapshot(), sort_keys=True) == (
            json.dumps(engine.to_snapshot(), sort_keys=True)
        )

    def test_recovery_reports_and_survives_a_torn_tail(self, tmp_path):
        config = DurabilityConfig(root=tmp_path)
        journal = TenantJournal(config, "conf")
        engine = small_engine()
        journal.initialise(engine)
        self.churn(journal, EngineSession(engine), engine)
        journal.abort()
        segment = segment_paths(journal.directory)[-1]
        segment.write_bytes(segment.read_bytes() + b'{"half-a-record": ')

        outcome = TenantJournal(config, "conf").recover()
        assert outcome.stats.replayed_records == 4
        assert outcome.stats.dropped_bytes == len(b'{"half-a-record": ')

    def test_should_checkpoint_counts_appends(self, tmp_path):
        config = DurabilityConfig(root=tmp_path, checkpoint_every=2)
        journal = TenantJournal(config, "conf")
        engine = small_engine()
        journal.initialise(engine)
        request = request_from_dict({"kind": "solve", "solver": "Greedy"})
        journal.append(1, request)
        assert not journal.should_checkpoint
        journal.append(2, request)
        assert journal.should_checkpoint
        journal.checkpoint(engine)
        assert not journal.should_checkpoint
        journal.close()

    def test_applied_map_is_bounded_fifo(self, tmp_path):
        config = DurabilityConfig(root=tmp_path, applied_limit=3)
        journal = TenantJournal(config, "conf")
        from repro.service.requests import Response

        evicted = get_registry().counter("durability.applied_evicted", "")
        before = evicted.value
        for cseq in range(1, 6):
            journal.record_applied(cseq, Response(kind="solve", ok=True))
        assert sorted(journal.applied) == [3, 4, 5]
        assert evicted.value - before == 2

    def test_bad_tenant_ids_are_refused(self, tmp_path):
        config = DurabilityConfig(root=tmp_path)
        for bad in ("", "a/b", ".", ".."):
            with pytest.raises(ConfigurationError):
                TenantJournal(config, bad)

    def test_initialise_twice_and_recover_nothing_raise(self, tmp_path):
        config = DurabilityConfig(root=tmp_path)
        journal = TenantJournal(config, "conf")
        engine = small_engine()
        journal.initialise(engine)
        journal.close()
        with pytest.raises(ConfigurationError):
            TenantJournal(config, "conf").initialise(engine)
        with pytest.raises(ConfigurationError):
            TenantJournal(config, "virgin").recover()


class TestAtomicWrites:
    """Satellite: the torn-write regression for ``atomic_write_text``."""

    def test_replaces_atomically(self, tmp_path):
        path = tmp_path / "snap.json"
        atomic_write_text(path, "old")
        atomic_write_text(path, "new")
        assert path.read_text(encoding="utf-8") == "new"
        assert [p.name for p in tmp_path.iterdir()] == ["snap.json"]

    def test_crash_before_rename_keeps_the_old_file(self, tmp_path):
        path = tmp_path / "snap.json"
        atomic_write_text(path, "old")
        get_failpoints().configure("snapshot_write", "once")
        with pytest.raises(FaultInjected):
            atomic_write_text(path, "new")
        # The old content is intact and no temp file litters the dir —
        # a crashed checkpoint can never leave a half-written snapshot.
        assert path.read_text(encoding="utf-8") == "old"
        assert [p.name for p in tmp_path.iterdir()] == ["snap.json"]

    def test_crashed_checkpoint_recovers_from_the_previous_one(self, tmp_path):
        config = DurabilityConfig(root=tmp_path)
        journal = TenantJournal(config, "conf")
        engine = small_engine()
        journal.initialise(engine)
        session = EngineSession(engine)
        request = request_from_dict({"kind": "solve", "solver": "Greedy", "seq": 1})
        journal.append(1, request)
        assert session.dispatch(request).ok
        journal.sync_batch()
        get_failpoints().configure("snapshot_write", "once")
        with pytest.raises(FaultInjected):
            journal.checkpoint(engine)
        journal.abort()

        outcome = TenantJournal(config, "conf").recover()
        assert outcome.stats.checkpoint_seq == 0  # the old base survived
        assert outcome.stats.replayed_records == 1
        assert json.dumps(outcome.engine.to_snapshot(), sort_keys=True) == (
            json.dumps(engine.to_snapshot(), sort_keys=True)
        )
