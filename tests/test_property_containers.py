"""Property-based tests for the Assignment container and problem invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import Assignment
from repro.core.constraints import ConflictOfInterest
from repro.data.synthetic import make_problem

REVIEWER_IDS = [f"r{i}" for i in range(6)]
PAPER_IDS = [f"p{i}" for i in range(5)]


def pair_lists():
    return st.lists(
        st.tuples(st.sampled_from(REVIEWER_IDS), st.sampled_from(PAPER_IDS)),
        max_size=25,
    )


@settings(max_examples=150, deadline=None)
@given(pair_lists())
def test_assignment_size_matches_distinct_pairs(pairs):
    assignment = Assignment(pairs)
    assert len(assignment) == len(set(pairs))
    assert set(assignment.pairs()) == set(pairs)


@settings(max_examples=150, deadline=None)
@given(pair_lists())
def test_assignment_two_way_indexes_are_consistent(pairs):
    assignment = Assignment(pairs)
    # Every pair visible from the paper side is visible from the reviewer
    # side and vice versa, and the loads/group sizes add up to the total.
    total_from_papers = sum(assignment.group_size(p) for p in PAPER_IDS)
    total_from_reviewers = sum(assignment.load(r) for r in REVIEWER_IDS)
    assert total_from_papers == len(assignment) == total_from_reviewers
    for reviewer_id, paper_id in assignment.pairs():
        assert reviewer_id in assignment.reviewers_of(paper_id)
        assert paper_id in assignment.papers_of(reviewer_id)


@settings(max_examples=150, deadline=None)
@given(pair_lists())
def test_assignment_round_trips_through_dict(pairs):
    assignment = Assignment(pairs)
    assert Assignment.from_dict(assignment.to_dict()) == assignment


@settings(max_examples=100, deadline=None)
@given(pair_lists(), pair_lists())
def test_assignment_set_algebra_laws(first_pairs, second_pairs):
    first = Assignment(first_pairs)
    second = Assignment(second_pairs)
    union = first.union(second)
    difference = first.difference(second)
    symmetric = first.symmetric_difference(second)
    assert set(union.pairs()) == set(first.pairs()) | set(second.pairs())
    assert set(difference.pairs()) == set(first.pairs()) - set(second.pairs())
    assert set(symmetric.pairs()) == set(first.pairs()) ^ set(second.pairs())


@settings(max_examples=100, deadline=None)
@given(pair_lists())
def test_removal_restores_the_empty_assignment(pairs):
    assignment = Assignment(pairs)
    for reviewer_id, paper_id in list(assignment.pairs()):
        assignment.remove(reviewer_id, paper_id)
    assert len(assignment) == 0
    assert not assignment.papers()
    assert not assignment.reviewers()


@settings(max_examples=150, deadline=None)
@given(pair_lists())
def test_conflicts_container_mirrors_pairs(pairs):
    conflicts = ConflictOfInterest(pairs)
    assert len(conflicts) == len(set(pairs))
    for reviewer_id, paper_id in pairs:
        assert conflicts.is_conflict(reviewer_id, paper_id)
        assert paper_id in conflicts.papers_conflicting_with(reviewer_id)
        assert reviewer_id in conflicts.reviewers_conflicting_with(paper_id)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=3, max_value=10),
    st.integers(min_value=3, max_value=8),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=1_000),
)
def test_generated_problems_always_satisfy_their_own_capacity_check(
    num_papers, num_reviewers, group_size, seed
):
    group_size = min(group_size, num_reviewers)
    problem = make_problem(
        num_papers=num_papers,
        num_reviewers=num_reviewers,
        num_topics=6,
        group_size=group_size,
        seed=seed,
    )
    constraints = problem.constraints
    assert constraints.is_satisfiable(problem.num_reviewers, problem.num_papers)
    assert problem.reviewer_workload >= 1
    # Pair score matrix is consistent with the scoring function bounds.
    scores = problem.pair_score_matrix()
    assert scores.min() >= 0.0
    assert scores.max() <= 1.0 + 1e-9
