"""The memmap block score store vs a plain RAM ndarray — bitwise.

:class:`repro.store.blocks.MemmapScoreStore` replaces the in-RAM score
matrix for out-of-core engines, so it is held to an exact oracle: every
mutation sequence (column appends, row drops, in-place column patches)
applied to the blocks must leave the mapped file bitwise-identical to the
same sequence applied to a ``numpy`` array — including after closing the
store and reopening it from ``meta.json`` mid-sequence.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import MemmapScoreStore


def _rng(seed=0):
    return np.random.default_rng(seed)


def _fresh(tmp_path, rows=6, cols=5, block_cols=2, seed=0):
    oracle = _rng(seed).random((rows, cols))
    store = MemmapScoreStore(tmp_path / "blocks", block_cols=block_cols)
    store.write_all(oracle.copy())
    return store, oracle


class TestBasicOps:
    def test_write_all_round_trips_bitwise(self, tmp_path):
        store, oracle = _fresh(tmp_path)
        np.testing.assert_array_equal(np.asarray(store.view()), oracle)
        assert store.rows == 6 and store.cols == 5

    def test_append_column_matches_concatenate(self, tmp_path):
        store, oracle = _fresh(tmp_path)
        for i in range(5):  # crosses the block_cols=2 capacity boundary twice
            column = _rng(100 + i).random(store.rows)
            view = store.append_column(column.copy())
            oracle = np.concatenate([oracle, column[:, None]], axis=1)
            np.testing.assert_array_equal(np.asarray(view), oracle)

    def test_append_placeholder_is_zeros(self, tmp_path):
        store, oracle = _fresh(tmp_path)
        view = store.append_column(None)
        oracle = np.concatenate([oracle, np.zeros((store.rows, 1))], axis=1)
        np.testing.assert_array_equal(np.asarray(view), oracle)

    def test_drop_row_matches_delete(self, tmp_path):
        store, oracle = _fresh(tmp_path)
        for pick in (3, 0, -1):
            row = pick if pick >= 0 else store.rows - 1
            view = store.drop_row(row)
            oracle = np.delete(oracle, row, axis=0)
            np.testing.assert_array_equal(np.asarray(view), oracle)

    def test_patch_column_in_place(self, tmp_path):
        store, oracle = _fresh(tmp_path)
        view = store.view(writable=True)
        patch = _rng(9).random(store.rows)
        view[:, 2] = patch
        oracle[:, 2] = patch
        np.testing.assert_array_equal(np.asarray(store.view()), oracle)

    def test_out_of_core_build_matches_scorer(self, tmp_path):
        rows, cols = 7, 11
        dense = _rng(3).random((rows, cols))
        store = MemmapScoreStore(tmp_path / "b", block_cols=3)
        view = store.build(rows, cols, lambda start, stop: dense[:, start:stop])
        np.testing.assert_array_equal(np.asarray(view), dense)
        # the build walked ceil(11/3) = 4 blocks
        assert store.block_writes >= 4

    def test_drop_row_rolls_the_generation_file(self, tmp_path):
        store, _ = _fresh(tmp_path)
        before = store.generation
        store.drop_row(0)
        assert store.generation > before

    def test_appends_extend_in_place_within_capacity(self, tmp_path):
        store, _ = _fresh(tmp_path, block_cols=8)
        generation = store.generation
        store.append_column(np.zeros(store.rows))
        assert store.generation == generation  # reserved capacity, no copy


class TestReopen:
    def test_reopen_mid_sequence_is_bitwise(self, tmp_path):
        directory = tmp_path / "blocks"
        store, oracle = _fresh(tmp_path, block_cols=3)
        column = _rng(50).random(store.rows)
        store.append_column(column.copy())
        oracle = np.concatenate([oracle, column[:, None]], axis=1)
        store.flush()
        store.close()

        reopened = MemmapScoreStore(directory, block_cols=3)
        assert (reopened.rows, reopened.cols) == oracle.shape
        np.testing.assert_array_equal(np.asarray(reopened.view()), oracle)
        # continue the sequence on the reopened store
        reopened.drop_row(1)
        oracle = np.delete(oracle, 1, axis=0)
        column = _rng(51).random(reopened.rows)
        view = reopened.append_column(column.copy())
        oracle = np.concatenate([oracle, column[:, None]], axis=1)
        np.testing.assert_array_equal(np.asarray(view), oracle)

    def test_meta_survives_for_cold_readers(self, tmp_path):
        store, oracle = _fresh(tmp_path)
        store.flush()
        description = store.describe()
        assert description["rows"] == 6 and description["cols"] == 5
        assert description["bytes_mapped"] == 6 * store.capacity * 8


@st.composite
def mutation_sequences(draw):
    """Random op sequences; values come from a seeded rng, not Hypothesis,
    so shrinking explores the *structure* (op order) rather than floats."""
    return draw(
        st.lists(
            st.sampled_from(["append", "placeholder", "drop", "patch", "reopen"]),
            min_size=1,
            max_size=12,
        )
    )


@settings(max_examples=60, deadline=None)
@given(ops=mutation_sequences(), data=st.data())
def test_random_mutation_sequences_match_ram(tmp_path_factory, ops, data):
    tmp_path = tmp_path_factory.mktemp("memmap-prop")
    oracle = _rng(7).random((5, 4))
    store = MemmapScoreStore(tmp_path / "blocks", block_cols=2)
    store.write_all(oracle.copy())
    fill = _rng(8)
    for op in ops:
        if op == "append":
            column = fill.random(store.rows)
            store.append_column(column.copy())
            oracle = np.concatenate([oracle, column[:, None]], axis=1)
        elif op == "placeholder":
            store.append_column(None)
            oracle = np.concatenate([oracle, np.zeros((store.rows, 1))], axis=1)
        elif op == "drop":
            if store.rows <= 1:
                continue
            row = data.draw(st.integers(0, store.rows - 1), label="row")
            store.drop_row(row)
            oracle = np.delete(oracle, row, axis=0)
        elif op == "patch":
            column = data.draw(st.integers(0, store.cols - 1), label="col")
            patch = fill.random(store.rows)
            store.view(writable=True)[:, column] = patch
            oracle[:, column] = patch
        else:  # reopen from disk mid-sequence
            store.flush()
            store.close()
            store = MemmapScoreStore(tmp_path / "blocks", block_cols=2)
        np.testing.assert_array_equal(np.asarray(store.view()), oracle)
    store.close()
