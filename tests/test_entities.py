"""Unit tests for :mod:`repro.core.entities`."""

from __future__ import annotations

import pytest

from repro.core.entities import Paper, Reviewer, ReviewerGroup
from repro.core.vectors import TopicVector
from repro.exceptions import ConfigurationError


class TestReviewer:
    def test_basic_construction(self):
        reviewer = Reviewer(id="r1", vector=TopicVector([0.5, 0.5]))
        assert reviewer.name == "r1"
        assert reviewer.num_topics == 2
        assert reviewer.expertise_on(0) == pytest.approx(0.5)

    def test_from_weights(self):
        reviewer = Reviewer.from_weights("r1", [0.2, 0.8], name="Alice", h_index=12)
        assert reviewer.name == "Alice"
        assert reviewer.h_index == 12

    def test_requires_id(self):
        with pytest.raises(ConfigurationError):
            Reviewer(id="", vector=TopicVector([1.0]))

    def test_rejects_negative_h_index(self):
        with pytest.raises(ConfigurationError):
            Reviewer(id="r1", vector=TopicVector([1.0]), h_index=-1)

    def test_with_vector(self):
        reviewer = Reviewer(id="r1", vector=TopicVector([0.5, 0.5]), h_index=3)
        replaced = reviewer.with_vector([0.1, 0.9])
        assert replaced.id == "r1"
        assert replaced.h_index == 3
        assert replaced.vector.to_list() == pytest.approx([0.1, 0.9])

    def test_accepts_raw_weights(self):
        reviewer = Reviewer(id="r1", vector=[0.3, 0.7])
        assert isinstance(reviewer.vector, TopicVector)


class TestPaper:
    def test_basic_construction(self):
        paper = Paper(id="p1", vector=TopicVector([0.4, 0.6]), abstract="about joins")
        assert paper.title == "p1"
        assert paper.relevance_to(1) == pytest.approx(0.6)
        assert paper.abstract == "about joins"

    def test_from_weights(self):
        paper = Paper.from_weights("p1", {2: 1.0}, num_topics=4, title="Query processing")
        assert paper.title == "Query processing"
        assert paper.vector[2] == pytest.approx(1.0)

    def test_requires_id(self):
        with pytest.raises(ConfigurationError):
            Paper(id="", vector=TopicVector([1.0]))

    def test_with_vector(self):
        paper = Paper(id="p1", vector=TopicVector([1.0, 0.0]), title="T")
        replaced = paper.with_vector([0.0, 1.0])
        assert replaced.title == "T"
        assert replaced.vector[1] == pytest.approx(1.0)


class TestReviewerGroup:
    def _reviewers(self):
        return [
            Reviewer(id="a", vector=TopicVector([0.9, 0.1, 0.0])),
            Reviewer(id="b", vector=TopicVector([0.0, 0.8, 0.2])),
            Reviewer(id="c", vector=TopicVector([0.1, 0.1, 0.7])),
        ]

    def test_group_vector_is_elementwise_maximum(self):
        group = ReviewerGroup(self._reviewers()[:2])
        assert group.vector.to_list() == pytest.approx([0.9, 0.8, 0.2])

    def test_add_is_idempotent(self):
        reviewers = self._reviewers()
        group = ReviewerGroup([reviewers[0]])
        group.add(reviewers[0])
        assert len(group) == 1

    def test_remove(self):
        reviewers = self._reviewers()
        group = ReviewerGroup(reviewers)
        removed = group.remove("b")
        assert removed.id == "b"
        assert "b" not in group
        with pytest.raises(KeyError):
            group.remove("b")

    def test_empty_group_vector_rejected(self):
        with pytest.raises(ConfigurationError):
            _ = ReviewerGroup().vector

    def test_vector_or_zero(self):
        assert ReviewerGroup().vector_or_zero(3).total() == 0.0

    def test_membership_by_reviewer_or_id(self):
        reviewers = self._reviewers()
        group = ReviewerGroup(reviewers[:1])
        assert reviewers[0] in group
        assert "a" in group
        assert "z" not in group

    def test_union_and_with_member(self):
        reviewers = self._reviewers()
        first = ReviewerGroup(reviewers[:1])
        second = ReviewerGroup(reviewers[1:2])
        union = first.union(second)
        assert union.ids() == frozenset({"a", "b"})
        extended = first.with_member(reviewers[2])
        assert extended.ids() == frozenset({"a", "c"})
        assert first.ids() == frozenset({"a"})  # originals untouched

    def test_without_member(self):
        group = ReviewerGroup(self._reviewers())
        smaller = group.without_member("a")
        assert smaller.ids() == frozenset({"b", "c"})

    def test_mixed_dimensions_rejected(self):
        group = ReviewerGroup([Reviewer(id="a", vector=TopicVector([1.0, 0.0]))])
        with pytest.raises(ConfigurationError):
            group.add(Reviewer(id="b", vector=TopicVector([1.0])))

    def test_equality(self):
        reviewers = self._reviewers()
        assert ReviewerGroup(reviewers[:2]) == ReviewerGroup(list(reversed(reviewers[:2])))
        assert ReviewerGroup(reviewers[:1]) != ReviewerGroup(reviewers[1:2])
