"""Shared harness for the :mod:`repro.net` server tests.

:class:`ServerHarness` runs an :class:`~repro.net.server.AssignmentServer`
on a private event loop in a background thread, so synchronous pytest
tests can talk to a *live* TCP server with plain blocking sockets — no
pytest-asyncio required — while asyncio-side helpers (load drives, many
concurrent clients) run on the harness loop via :meth:`run`.

Every blocking operation carries a hard timeout: a wedged server turns
into a loud test failure in seconds, never a hung CI job.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from typing import Any

from repro.durability import DurabilityConfig
from repro.net import AdmissionController, AssignmentServer, TenantManager
from repro.service.engine import AssignmentEngine

#: Hard ceiling on any single blocking wait in the harness.
HARD_TIMEOUT = 30.0


class BlockingClient:
    """A plain-socket JSON-lines client with per-call timeouts."""

    def __init__(self, host: str, port: int, timeout: float = HARD_TIMEOUT) -> None:
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.settimeout(timeout)
        self._file = self.sock.makefile("rb")

    def send_raw(self, data: bytes) -> None:
        self.sock.sendall(data)

    def send(self, payload: dict[str, Any]) -> None:
        self.send_raw(json.dumps(payload).encode("utf-8") + b"\n")

    def recv(self) -> dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        self.send(payload)
        return self.recv()

    def close(self) -> None:
        try:
            self._file.close()
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "BlockingClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ServerHarness:
    """A live server on a background event-loop thread.

    Usage::

        harness = ServerHarness()
        harness.add_tenant("sigmod", engine)
        harness.start()
        try:
            response = harness.call({"kind": "stats"})
        finally:
            harness.stop()
    """

    def __init__(
        self,
        max_pending: int = 256,
        max_total_pending: int | None = None,
        max_batch: int = 128,
        max_line_bytes: int = 1 << 20,
        durability: DurabilityConfig | None = None,
        replicate_to: tuple[str, int] | None = None,
        standby: bool = False,
        auto_promote_after: float | None = None,
        heartbeat_interval: float = 0.05,
    ) -> None:
        self.server = AssignmentServer(
            tenants=TenantManager(max_batch=max_batch),
            admission=AdmissionController(
                max_pending=max_pending, max_total_pending=max_total_pending
            ),
            max_line_bytes=max_line_bytes,
            durability=durability,
            replicate_to=replicate_to,
            standby=standby,
            auto_promote_after=auto_promote_after,
            heartbeat_interval=heartbeat_interval,
        )
        self.host: str | None = None
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()

    # -- lifecycle -----------------------------------------------------
    def add_tenant(self, tenant_id: str, engine: AssignmentEngine, default: bool = False):
        return self.server.add_tenant(tenant_id, engine, default=default)

    def start(self) -> "ServerHarness":
        self._thread = threading.Thread(
            target=self._thread_main, name="net-test-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=HARD_TIMEOUT):
            raise TimeoutError("server did not come up within the hard timeout")
        return self

    def _thread_main(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def _start() -> None:
            self.host, self.port = await self.server.start()
            self._ready.set()

        try:
            self._loop.run_until_complete(_start())
            self._loop.run_forever()
        finally:
            self._ready.set()  # unblock start() even on bind failure
            self._loop.close()

    def stop(self) -> None:
        self._shut_down(self.server.stop)

    def abort(self) -> None:
        """Crash-stop the server — no drain, no final checkpoints.

        The recovery tests' kill switch: simulates the process dying with
        work possibly in flight, leaving only the durable state on disk.
        """
        self._shut_down(self.server.abort)

    def _shut_down(self, how) -> None:
        if self._loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(how(), self._loop)
        try:
            future.result(timeout=HARD_TIMEOUT)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            assert self._thread is not None
            self._thread.join(timeout=HARD_TIMEOUT)
        if self._thread.is_alive():  # pragma: no cover — would mean a wedged loop
            raise TimeoutError("server thread did not exit within the hard timeout")

    # -- client helpers ------------------------------------------------
    def run(self, coro, timeout: float = HARD_TIMEOUT):
        """Run a coroutine on the server's loop; blocks with a hard timeout."""
        assert self._loop is not None
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(timeout=timeout)

    def client(self, timeout: float = HARD_TIMEOUT) -> BlockingClient:
        assert self.host is not None and self.port is not None
        return BlockingClient(self.host, self.port, timeout=timeout)

    def call(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One-shot request over a fresh connection."""
        with self.client() as client:
            return client.request(payload)


def wait_until(predicate, timeout: float = HARD_TIMEOUT, interval: float = 0.005) -> None:
    """Poll ``predicate`` until true; raises on timeout.

    The deterministic alternative to sleeping: tests gate on observable
    server state (admission depth, counters) instead of wall clocks.
    """
    import time

    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise TimeoutError("condition not reached within the hard timeout")
        time.sleep(interval)


def strip_volatile(response: dict[str, Any]) -> dict[str, Any]:
    """Drop wall-clock and transport fields, keeping semantic content.

    ``seconds``/``elapsed_seconds`` (any nesting) are timings; ``trace``
    is a random id; ``tenant``/``seq`` are network-layer envelope fields
    absent from a serial in-process replay.
    """

    def scrub(value: Any) -> Any:
        if isinstance(value, dict):
            return {
                key: scrub(entry)
                for key, entry in value.items()
                if key not in {"seconds", "elapsed_seconds"}
            }
        if isinstance(value, list):
            return [scrub(entry) for entry in value]
        return value

    return {
        key: scrub(value)
        for key, value in response.items()
        if key not in {"seconds", "trace", "tenant", "seq"}
    }
