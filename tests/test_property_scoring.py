"""Property-based tests (hypothesis) for the scoring functions.

These verify the two conditions of Lemma 4 (Appendix B) — per-topic
decomposition and monotonicity in the reviewer vector — plus the
submodularity of the group objective that the SDGA approximation proof
relies on, for *every* registered scoring function.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scoring import get_scoring_function
from repro.core.vectors import TopicVector

SCORING_NAMES = ["weighted_coverage", "reviewer_coverage", "paper_coverage", "dot_product"]


def weight_lists(min_size=2, max_size=6):
    return st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False),
        min_size=min_size,
        max_size=max_size,
    )


@st.composite
def scoring_instances(draw, num_vectors=3):
    """A scoring function plus several reviewer vectors and one paper vector."""
    name = draw(st.sampled_from(SCORING_NAMES))
    num_topics = draw(st.integers(min_value=2, max_value=6))
    vectors = [
        TopicVector(
            draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                    min_size=num_topics,
                    max_size=num_topics,
                )
            )
        )
        for _ in range(num_vectors)
    ]
    paper_weights = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
            min_size=num_topics,
            max_size=num_topics,
        )
    )
    return get_scoring_function(name), vectors, TopicVector(paper_weights)


@settings(max_examples=120, deadline=None)
@given(scoring_instances())
def test_scores_are_non_negative_and_bounded_for_coverage_functions(case):
    scoring, vectors, paper = case
    for vector in vectors:
        score = scoring.score(vector, paper)
        assert score >= 0.0
        if scoring.name in ("weighted_coverage", "paper_coverage"):
            assert score <= 1.0 + 1e-9


@settings(max_examples=120, deadline=None)
@given(scoring_instances())
def test_group_score_is_monotone_in_group_membership(case):
    """Adding a reviewer to a group never lowers the group score (C.2)."""
    scoring, vectors, paper = case
    single = scoring.group_score([vectors[0]], paper)
    pair = scoring.group_score([vectors[0], vectors[1]], paper)
    triple = scoring.group_score(vectors, paper)
    assert pair >= single - 1e-9
    assert triple >= pair - 1e-9


@settings(max_examples=120, deadline=None)
@given(scoring_instances())
def test_marginal_gains_are_non_negative(case):
    scoring, vectors, paper = case
    group_vector = vectors[0]
    for vector in vectors[1:]:
        assert scoring.marginal_gain(group_vector, vector, paper) >= -1e-9


@settings(max_examples=120, deadline=None)
@given(scoring_instances())
def test_submodularity_diminishing_returns(case):
    """gain(g, r) >= gain(g ∪ {r'}, r): the key inequality behind Theorem 1."""
    scoring, vectors, paper = case
    base, extra, new = vectors
    small_group = base
    large_group = base.maximum(extra)
    gain_small = scoring.marginal_gain(small_group, new, paper)
    gain_large = scoring.marginal_gain(large_group, new, paper)
    assert gain_small >= gain_large - 1e-9


@settings(max_examples=120, deadline=None)
@given(scoring_instances())
def test_per_topic_decomposition(case):
    """The numerator is the sum of independent per-topic contributions (C.1)."""
    scoring, vectors, paper = case
    vector = vectors[0]
    total = scoring.numerator(vector, paper)
    per_topic = sum(
        float(
            scoring.topic_contribution(
                np.array([vector[t]]), np.array([paper[t]])
            )[0]
        )
        for t in range(paper.num_topics)
    )
    assert total == np.float64(per_topic) or abs(total - per_topic) < 1e-9


@settings(max_examples=120, deadline=None)
@given(scoring_instances())
def test_group_score_equals_score_of_max_vector(case):
    """Definition 2: the group behaves exactly like its per-topic maximum."""
    scoring, vectors, paper = case
    aggregated = TopicVector.group_maximum(vectors)
    assert scoring.group_score(vectors, paper) == float(
        np.float64(scoring.score(aggregated, paper))
    )


@settings(max_examples=120, deadline=None)
@given(weight_lists(), weight_lists())
def test_weighted_coverage_symmetry_bound(reviewer_weights, paper_weights):
    """min() is symmetric, so c(r, p) * sum(p) == c(p, r) * sum(r)."""
    size = min(len(reviewer_weights), len(paper_weights))
    reviewer = TopicVector(reviewer_weights[:size])
    paper = TopicVector(paper_weights[:size])
    scoring = get_scoring_function("weighted_coverage")
    assert scoring.numerator(reviewer, paper) == scoring.numerator(paper, reviewer)


@settings(max_examples=120, deadline=None)
@given(scoring_instances())
def test_gain_vector_matches_scalar_definition(case):
    scoring, vectors, paper = case
    group = vectors[0]
    matrix = np.vstack([vector.values for vector in vectors])
    gains = scoring.gain_vector(group.values, matrix, paper.values)
    for index, vector in enumerate(vectors):
        expected = scoring.marginal_gain(group, vector, paper)
        assert abs(gains[index] - expected) < 1e-9
