"""Unit tests for the Hungarian (Kuhn-Munkres) solver."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from scipy.optimize import linear_sum_assignment

from repro.assignment.hungarian import solve_assignment, solve_max_assignment
from repro.exceptions import ConfigurationError


class TestBasicCases:
    def test_identity_matrix(self):
        cost = np.array([[0.0, 1.0], [1.0, 0.0]])
        result = solve_assignment(cost)
        assert result.row_to_col == (0, 1)
        assert result.total_cost == 0.0

    def test_known_three_by_three(self):
        cost = np.array([[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]])
        result = solve_assignment(cost)
        assert result.total_cost == pytest.approx(5.0)
        assert sorted(result.row_to_col) == [0, 1, 2]

    def test_rectangular_more_columns(self):
        cost = np.array([[5.0, 1.0, 9.0], [9.0, 5.0, 1.0]])
        result = solve_assignment(cost)
        assert result.row_to_col == (1, 2)
        assert result.total_cost == pytest.approx(2.0)

    def test_rectangular_more_rows(self):
        cost = np.array([[1.0, 9.0], [2.0, 1.0], [0.5, 8.0]])
        result = solve_assignment(cost)
        assigned = [col for col in result.row_to_col if col >= 0]
        assert len(assigned) == 2
        assert len(set(assigned)) == 2
        assert result.total_cost == pytest.approx(1.5)
        assert result.row_to_col[0] == -1  # row 0 loses to row 2 on column 0

    def test_single_cell(self):
        result = solve_assignment(np.array([[3.0]]))
        assert result.row_to_col == (0,)
        assert result.total_cost == pytest.approx(3.0)

    def test_as_pairs(self):
        result = solve_assignment(np.array([[1.0, 2.0], [2.0, 1.0]]))
        assert result.as_pairs() == [(0, 0), (1, 1)]

    def test_max_assignment(self):
        profit = np.array([[1.0, 5.0], [5.0, 1.0]])
        result = solve_max_assignment(profit)
        assert result.total_cost == pytest.approx(10.0)
        assert result.row_to_col == (1, 0)


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            solve_assignment(np.zeros((0, 3)))

    def test_rejects_non_2d(self):
        with pytest.raises(ConfigurationError):
            solve_assignment(np.zeros(4))

    def test_rejects_infinite_entries(self):
        with pytest.raises(ConfigurationError):
            solve_assignment(np.array([[1.0, np.inf]]))

    def test_rejects_empty_profit(self):
        with pytest.raises(ConfigurationError):
            solve_max_assignment(np.zeros((0, 0)))


class TestAgainstReferences:
    def test_matches_scipy_on_random_square_matrices(self):
        rng = np.random.default_rng(1)
        for size in (2, 3, 5, 8, 13):
            cost = rng.random((size, size)) * 10.0
            ours = solve_assignment(cost)
            rows, cols = linear_sum_assignment(cost)
            assert ours.total_cost == pytest.approx(cost[rows, cols].sum())

    def test_matches_scipy_on_random_rectangular_matrices(self):
        rng = np.random.default_rng(2)
        for shape in ((3, 7), (7, 3), (5, 6), (10, 4)):
            cost = rng.random(shape) * 5.0
            ours = solve_assignment(cost)
            rows, cols = linear_sum_assignment(cost)
            assert ours.total_cost == pytest.approx(cost[rows, cols].sum())

    def test_matches_brute_force_on_tiny_matrices(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            cost = rng.integers(0, 20, size=(4, 4)).astype(float)
            ours = solve_assignment(cost)
            best = min(
                sum(cost[row, col] for row, col in enumerate(permutation))
                for permutation in itertools.permutations(range(4))
            )
            assert ours.total_cost == pytest.approx(best)

    def test_handles_ties_consistently(self):
        cost = np.ones((4, 4))
        result = solve_assignment(cost)
        assert sorted(result.row_to_col) == [0, 1, 2, 3]
        assert result.total_cost == pytest.approx(4.0)
