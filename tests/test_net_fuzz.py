"""Property-based fuzzing of the network wire protocol (ISSUE-7 satellite).

The server's robustness contract, driven with hypothesis-generated
hostile input against a *live* TCP server:

* every non-blank frame — truncated JSON, invalid UTF-8, random bytes,
  non-object JSON, unknown kinds, oversized lines — yields **exactly one**
  structured response;
* a failed response always carries an ``error_type`` from the closed
  :data:`repro.service.session.ERROR_TYPES` vocabulary and never leaks a
  traceback;
* the connection (and the accept loop) survives: a well-formed probe
  request right after any garbage is answered normally.

The harness is module-scoped on purpose: statefulness across examples is
exactly the robustness being tested (one poisoned frame must not degrade
service for the next thousand).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.synthetic import make_problem
from repro.service.engine import AssignmentEngine
from repro.service.session import ERROR_TYPES

from tests.net_utils import ServerHarness

MAX_LINE_BYTES = 8192

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")


@pytest.fixture(scope="module")
def harness():
    h = ServerHarness(max_line_bytes=MAX_LINE_BYTES)
    h.add_tenant(
        "fuzz",
        AssignmentEngine(make_problem(8, 8, num_topics=5, group_size=2, seed=1)),
        default=True,
    )
    h.start()
    yield h
    h.stop()


def _is_one_frame(raw: bytes) -> bool:
    """A single non-blank frame: no embedded newline, not whitespace-only."""
    return b"\n" not in raw and raw.strip() != b""


def _request_dicts() -> st.SearchStrategy[dict]:
    json_values = st.recursive(
        st.none() | st.booleans() | st.integers() | st.floats(allow_nan=False) | st.text(max_size=20),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=10), children, max_size=4),
        max_leaves=10,
    )
    return st.dictionaries(
        st.sampled_from(
            ["kind", "id", "tenant", "solver", "paper_id", "paper", "top_k", "bids", "path", "x"]
        ),
        json_values,
        max_size=6,
    )


def frames() -> st.SearchStrategy[bytes]:
    """Hostile single-line frames, all within the line-size limit."""
    raw_bytes = st.binary(min_size=1, max_size=200)
    raw_text = st.text(min_size=1, max_size=200).map(lambda s: s.encode("utf-8"))
    json_like = _request_dicts().map(lambda d: json.dumps(d).encode("utf-8"))
    truncated = st.tuples(_request_dicts(), st.floats(0.1, 0.9)).map(
        lambda pair: json.dumps(pair[0]).encode("utf-8")[
            : max(1, int(len(json.dumps(pair[0])) * pair[1]))
        ]
    )
    non_objects = st.sampled_from(
        [b"[1, 2]", b'"kind"', b"42", b"null", b"true", b"{}{}", b"}{"]
    )
    invalid_utf8 = st.binary(min_size=1, max_size=50).map(lambda b: b"\xff\xfe" + b)
    return st.one_of(
        raw_bytes, raw_text, json_like, truncated, non_objects, invalid_utf8
    ).filter(_is_one_frame)


def assert_structured(response: dict) -> None:
    assert isinstance(response, dict)
    assert "kind" in response and "ok" in response
    if not response["ok"]:
        assert response["error_type"] in ERROR_TYPES
        assert "Traceback" not in response.get("error", "")


@settings(
    deadline=None,
    max_examples=60,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(frame=frames())
def test_any_single_frame_gets_one_structured_response(harness, frame):
    with harness.client() as client:
        client.send_raw(frame + b"\n")
        assert_structured(client.recv())
        probe = client.request({"kind": "stats", "id": "probe"})
        assert probe["ok"] is True
        assert probe["id"] == "probe"


@settings(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(batch=st.lists(frames(), min_size=1, max_size=20))
def test_a_pipelined_garbage_stream_gets_exactly_one_response_per_frame(harness, batch):
    with harness.client() as client:
        client.send_raw(b"".join(frame + b"\n" for frame in batch))
        for _ in batch:
            assert_structured(client.recv())
        probe = client.request({"kind": "stats", "id": "after"})
        assert probe["ok"] is True


@settings(
    deadline=None,
    max_examples=15,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    overshoot=st.integers(min_value=1, max_value=3 * MAX_LINE_BYTES),
    terminated=st.booleans(),
)
def test_oversized_lines_are_refused_and_resynced(harness, overshoot, terminated):
    pad = b"x" * (MAX_LINE_BYTES + overshoot)
    frame = b'{"kind": "solve", "pad": "' + pad + b'"}'
    with harness.client() as client:
        if terminated:
            client.send_raw(frame + b"\n")
            response = client.recv()
            assert response["ok"] is False
            assert response["error_type"] == "request"
            assert "byte limit" in response["error"]
            # the stream is resynced: the next frame parses cleanly
            probe = client.request({"kind": "stats", "id": "next"})
            assert probe["ok"] is True
        else:
            # oversized frame, then EOF before its newline ever arrives:
            # the server must still answer and must not wedge the loop
            client.send_raw(frame)
            client.sock.shutdown(1)  # SHUT_WR
            response = client.recv()
            assert response["ok"] is False
            assert "byte limit" in response["error"]


def test_fuzzing_left_the_server_healthy(harness):
    """Run after the hypothesis batteries: the server still serves."""
    response = harness.call({"kind": "solve", "solver": "Greedy"})
    assert response["ok"] is True
    assert harness.call({"kind": "list_tenants"})["ok"] is True
