"""The cross-solver differential conformance tests.

Every registered solver runs on the shared grid (see the package
docstring) under three strict invariants: dense == object bitwise,
delta-maintained == cold-recompile bitwise, and validity under a cold
clone.  CI runs this file at smoke scale (the grid as defined); the
assertions themselves are never relaxed.
"""

from __future__ import annotations

import pytest

from repro.service.registry import available_solver_specs, available_solvers, create_solver
from tests.conformance import (
    CHAINS,
    GRID,
    TINY,
    apply_chain,
    cold_clone,
    make_instance,
)

CRA_SPECS = available_solver_specs("cra")
JRA_SPECS = available_solver_specs("jra")
FAST_CRA = [spec for spec in CRA_SPECS if "exponential" not in spec.tags]
EXPONENTIAL_CRA = [spec for spec in CRA_SPECS if "exponential" in spec.tags]
DENSE_CRA = [spec for spec in CRA_SPECS if "dense" in spec.tags]


def _ids(specs):
    return [spec.name for spec in specs]


class TestRegistryCoverage:
    """The harness must cover the whole registry — by construction."""

    def test_every_cra_solver_is_in_exactly_one_speed_class(self):
        assert sorted(_ids(FAST_CRA) + _ids(EXPONENTIAL_CRA)) == available_solvers("cra")

    def test_every_dense_tagged_solver_accepts_the_oracle_switch(self):
        problem = make_instance(TINY)
        for spec in DENSE_CRA:
            solver = create_solver("cra", spec.name, use_dense=False)
            result = solver.solve(problem)
            cold_clone(problem).validate_assignment(result.assignment)

    def test_jra_dense_tagged_solver_accepts_the_oracle_switch(self):
        problem = make_instance(TINY).to_jra(make_instance(TINY).paper_ids[0])
        for spec in JRA_SPECS:
            if "dense" in spec.tags:
                create_solver("jra", spec.name, use_dense=False).solve(problem)


class TestDenseEqualsObjectBitwise:
    """Every dense-tagged CRA solver: fast path == object oracle, bitwise."""

    @pytest.mark.parametrize("instance_id", sorted(GRID))
    @pytest.mark.parametrize("spec", DENSE_CRA, ids=_ids(DENSE_CRA))
    def test_cra_dense_object_equivalence(self, spec, instance_id):
        problem = make_instance(GRID[instance_id])
        dense = create_solver("cra", spec.name, use_dense=True).solve(problem)
        oracle = create_solver("cra", spec.name, use_dense=False).solve(problem)
        assert dense.assignment == oracle.assignment, (
            f"{spec.name} diverged from its object oracle on {instance_id!r}"
        )
        assert dense.score == oracle.score  # bitwise, not approx

    @pytest.mark.parametrize("instance_id", sorted(GRID))
    def test_bba_dense_object_equivalence(self, instance_id):
        problem = make_instance(GRID[instance_id])
        for paper_id in (problem.paper_ids[0], problem.paper_ids[-1]):
            jra = problem.to_jra(paper_id)
            dense = create_solver("jra", "BBA", use_dense=True, top_k=3).solve(jra)
            oracle = create_solver("jra", "BBA", use_dense=False, top_k=3).solve(jra)
            assert dense.reviewer_ids == oracle.reviewer_ids
            assert dense.score == oracle.score
            # identical search tree: node counts and the ranked top-k too
            assert dict(dense.stats) == dict(oracle.stats)


class TestDeltaEqualsColdRecompileBitwise:
    """Solving on delta-maintained state == solving on a cold recompile."""

    @pytest.mark.parametrize("chain_id", [c for c in sorted(CHAINS) if c != "unmutated"])
    @pytest.mark.parametrize("instance_id", ["compact", "wide-groups", "tie-heavy-reviewer-coverage"])
    @pytest.mark.parametrize("spec", FAST_CRA, ids=_ids(FAST_CRA))
    def test_cra_chain_equals_cold(self, spec, instance_id, chain_id):
        mutated = apply_chain(make_instance(GRID[instance_id]), chain_id)
        cold = cold_clone(mutated)
        fast = create_solver("cra", spec.name).solve(mutated)
        reference = create_solver("cra", spec.name).solve(cold)
        assert fast.assignment == reference.assignment, (
            f"{spec.name} result depends on delta-maintained state "
            f"({instance_id!r}, chain {chain_id!r})"
        )
        assert fast.score == reference.score
        # Validity under cold semantics (not just the delta-patched view).
        cold.validate_assignment(fast.assignment, require_complete=True)

    @pytest.mark.parametrize("chain_id", [c for c in sorted(CHAINS) if c != "unmutated"])
    @pytest.mark.parametrize("spec", EXPONENTIAL_CRA, ids=_ids(EXPONENTIAL_CRA))
    def test_exponential_cra_chain_equals_cold(self, spec, chain_id):
        mutated = apply_chain(make_instance(TINY), chain_id)
        cold = cold_clone(mutated)
        fast = create_solver("cra", spec.name).solve(mutated)
        reference = create_solver("cra", spec.name).solve(cold)
        assert fast.assignment == reference.assignment
        assert fast.score == reference.score
        cold.validate_assignment(fast.assignment, require_complete=True)

    @pytest.mark.parametrize("chain_id", [c for c in sorted(CHAINS) if c != "unmutated"])
    @pytest.mark.parametrize("spec", JRA_SPECS, ids=_ids(JRA_SPECS))
    def test_jra_chain_equals_cold(self, spec, chain_id):
        mutated = apply_chain(
            make_instance(
                dict(
                    num_papers=6, num_reviewers=11, num_topics=6, group_size=3,
                    reviewer_workload=5, conflict_ratio=0.1, seed=7,
                )
            ),
            chain_id,
        )
        cold = cold_clone(mutated)
        for paper_id in (mutated.paper_ids[0], mutated.paper_ids[-1]):
            fast = create_solver("jra", spec.name).solve(mutated.to_jra(paper_id))
            reference = create_solver("jra", spec.name).solve(cold.to_jra(paper_id))
            assert fast.reviewer_ids == reference.reviewer_ids
            assert fast.score == reference.score


class TestCrossSolverAgreement:
    """All exact JRA solvers find the same optimum on every grid cell."""

    @pytest.mark.parametrize("instance_id", sorted(GRID))
    def test_exact_jra_solvers_agree_on_the_optimum(self, instance_id):
        problem = make_instance(GRID[instance_id])
        for paper_id in (problem.paper_ids[0], problem.paper_ids[-1]):
            jra = problem.to_jra(paper_id)
            reference = jra.group_score(
                create_solver("jra", "BFS").solve(jra).reviewer_ids
            )
            for spec in JRA_SPECS:
                result = create_solver("jra", spec.name).solve(jra)
                value = jra.group_score(result.reviewer_ids)
                # The solver's reported score must match its own group...
                assert result.score == pytest.approx(value, abs=1e-12)
                # ...and every solver claiming optimality must reach the
                # BFS optimum (CP-FIRST reports is_optimal=False by design).
                if result.is_optimal:
                    assert value == pytest.approx(reference, abs=1e-12), (
                        f"{spec.name} returned a sub-optimal group on "
                        f"{instance_id!r}/{paper_id!r}"
                    )
