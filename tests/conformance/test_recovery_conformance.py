"""Crash-recovery conformance: a crashed-and-recovered server is
bitwise-equal to one that never crashed.

The regime: drive one deterministic churn stream — solves, journal
queries, paper adds, reviewer withdrawals, bid updates, evaluations —
against a *durable* TCP server, crash-stopping it
(:meth:`~repro.net.server.AssignmentServer.abort`: no drain, no final
checkpoint) at seeded random points and recovering into a fresh server
over the same WAL root.  Every response, and the final engine snapshot,
must equal a serial, never-crashed oracle
(:class:`~repro.service.session.EngineSession` over the same instance)
**bitwise** — identical assignments, identical float scores.  After
each crash the just-answered mutation is re-sent under its original
idempotency key and must come back semantically identical without
re-applying (exactly-once across a crash).

Only wall-clock fields, transport envelope fields and ``cache_hit``
flags are normalised away: recovery legitimately restarts with cold
caches, and the conformance contract is about *state*, not cache luck.

``REPRO_CHAOS_CRASH_POINTS`` scales how many crash points are sampled
(default 3; CI smoke runs fewer).
"""

from __future__ import annotations

import itertools
import json
import os
import random
from typing import Any

import pytest

from repro.durability import DurabilityConfig
from repro.service.engine import AssignmentEngine
from repro.service.requests import (
    paper_to_payload,
    request_from_dict,
)
from repro.service.session import EngineSession

from tests.conformance import GRID, late_paper, make_instance
from tests.net_utils import ServerHarness, strip_volatile

TENANT = "chaos"
SPEC = GRID["compact"]
CRASH_POINTS = int(os.environ.get("REPRO_CHAOS_CRASH_POINTS", "3"))
SEED = 20260808


def churn_stream() -> list[dict[str, Any]]:
    """The deterministic request stream (mutations carry ``seq`` keys)."""
    problem = make_instance(SPEC)
    rid, pid = problem.reviewer_ids, problem.paper_ids
    key = itertools.count(1)
    return [
        {"kind": "solve", "solver": "Greedy", "seq": next(key)},
        {"kind": "journal", "paper_id": pid[0], "top_k": 2},
        {
            "kind": "update_bids", "seq": next(key),
            "bids": [[rid[0], pid[1], 1.0], [rid[1], pid[2], 0.5]],
        },
        {"kind": "solve", "solver": "SDGA", "seq": next(key)},
        {
            "kind": "add_paper", "seq": next(key),
            "paper": paper_to_payload(late_paper(problem, "chaos-a")),
        },
        {"kind": "evaluate", "include_ratio": True},
        {"kind": "withdraw_reviewer", "reviewer_id": rid[3], "seq": next(key)},
        {"kind": "solve", "solver": "Greedy", "seq": next(key)},
        {"kind": "journal", "paper_id": "chaos-a", "top_k": 2},
        {
            "kind": "add_paper", "seq": next(key),
            "paper": paper_to_payload(late_paper(problem, "chaos-b")),
        },
        {"kind": "solve", "solver": "SDGA-LS", "seq": next(key)},
        {"kind": "evaluate", "include_per_paper": True},
    ]


def normalise(response: dict[str, Any]) -> dict[str, Any]:
    """Drop wall clocks, envelope fields and cache luck — keep state."""

    def scrub(value: Any) -> Any:
        if isinstance(value, dict):
            return {k: scrub(v) for k, v in value.items() if k != "cache_hit"}
        if isinstance(value, list):
            return [scrub(v) for v in value]
        return value

    return scrub(strip_volatile(response))


def oracle_run(stream: list[dict[str, Any]]):
    """The never-crashed baseline: one serial session, same instance."""
    engine = AssignmentEngine(make_instance(SPEC))
    session = EngineSession(engine)
    responses = []
    for payload in stream:
        response = session.dispatch(request_from_dict(payload))
        assert response.ok, f"oracle refused {payload}: {response.error}"
        responses.append(normalise(response.to_dict()))
    return engine, responses


class TestRecoveryConformance:
    def test_crashed_server_is_bitwise_equal_to_the_oracle(self, tmp_path):
        stream = churn_stream()
        oracle_engine, oracle_responses = oracle_run(stream)

        # Seeded crash points (never after the final request): determinism
        # makes any failure replayable with the same seed and env.
        rng = random.Random(SEED)
        count = max(0, min(CRASH_POINTS, len(stream) - 1))
        crash_after = set(rng.sample(range(len(stream) - 1), count))

        def boot() -> ServerHarness:
            return ServerHarness(
                durability=DurabilityConfig(
                    root=tmp_path / "wal", checkpoint_every=3
                )
            )

        harness = boot()
        harness.add_tenant(TENANT, AssignmentEngine(make_instance(SPEC)), default=True)
        harness.start()
        crashes = 0
        try:
            client = harness.client()
            for index, payload in enumerate(stream):
                response = client.request(payload)
                assert response["ok"], f"server refused {payload}: {response}"
                assert normalise(response) == oracle_responses[index], (
                    f"response {index} ({payload['kind']}) diverged from the oracle"
                )
                if index not in crash_after:
                    continue
                # Crash-stop with only the durable state left behind, then
                # recover into a brand-new server over the same WAL root.
                client.close()
                harness.abort()
                crashes += 1
                harness = boot()
                assert harness.server.recover_tenants() == [TENANT]
                harness.start()
                client = harness.client()
                if "seq" in payload:
                    # Exactly-once across the crash: re-sending the last
                    # mutation under its original key must be answered
                    # from the recovered idempotency map, unchanged.
                    replay = client.request(payload)
                    assert replay["ok"], replay
                    assert normalise(replay) == oracle_responses[index]
            client.close()
            assert crashes == count

            # The final engine state — assignment, bids, problem, metadata
            # (revision, last solver, exact float score) — is bitwise equal
            # to the never-crashed oracle's.
            survivor = harness.server.tenants.get(TENANT).engine
            assert json.dumps(survivor.to_snapshot(), sort_keys=True) == (
                json.dumps(oracle_engine.to_snapshot(), sort_keys=True)
            )
        finally:
            harness.stop()

    @pytest.mark.parametrize("crash_index", [0, 4, 6])
    def test_single_crash_points_pin_the_regression_surface(
        self, tmp_path, crash_index
    ):
        """Named single-crash cases: after the first solve, after the
        first add_paper, after the withdraw — the three mutations whose
        replay exercises distinct engine repair paths."""
        stream = churn_stream()
        oracle_engine, oracle_responses = oracle_run(stream)

        config = DurabilityConfig(root=tmp_path / "wal", checkpoint_every=3)
        harness = ServerHarness(durability=config)
        harness.add_tenant(TENANT, AssignmentEngine(make_instance(SPEC)), default=True)
        harness.start()
        try:
            client = harness.client()
            for index, payload in enumerate(stream):
                response = client.request(payload)
                assert response["ok"], response
                assert normalise(response) == oracle_responses[index]
                if index == crash_index:
                    client.close()
                    harness.abort()
                    harness = ServerHarness(
                        durability=DurabilityConfig(
                            root=tmp_path / "wal", checkpoint_every=3
                        )
                    )
                    assert harness.server.recover_tenants() == [TENANT]
                    harness.start()
                    client = harness.client()
            client.close()
            survivor = harness.server.tenants.get(TENANT).engine
            assert json.dumps(survivor.to_snapshot(), sort_keys=True) == (
                json.dumps(oracle_engine.to_snapshot(), sort_keys=True)
            )
        finally:
            harness.stop()
