"""Cross-solver conformance harness (the PR-5 correctness regime).

Every solver registered in :mod:`repro.service.registry` — CRA and JRA —
is run over a shared grid of instances (sizes x delta_p x group widths x
scoring functions) and live mutation chains mixing all three mutation
kinds (``with_additional_paper``, ``without_reviewer``, conflict edits),
and held to three invariants:

* **dense == object, bitwise** — solvers tagged ``"dense"`` expose a
  ``use_dense=False`` object-path oracle; both paths must produce the
  identical assignment and score.
* **delta-maintained == cold recompile, bitwise** — solving on a problem
  whose compiled caches were carried along a mutation chain must equal
  solving the same instance rebuilt from its entities with every cache
  cold.
* **feasibility/validity** — every result must validate under a cold
  clone of the problem (group sizes, workloads, conflicts).

Bugs the harness shakes out get a *named* regression test in
``test_regressions.py`` pinning the exact instance that exposed them.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.core.entities import Paper
from repro.core.problem import WGRAPProblem
from repro.data.synthetic import make_problem

__all__ = [
    "GRID",
    "TINY",
    "CHAINS",
    "apply_chain",
    "cold_clone",
    "late_paper",
    "make_instance",
]

#: The shared instance grid: id -> make_problem keyword arguments.
#: Sizes, group widths, workload slack and scoring functions are varied;
#: the "tie-heavy" entries use the discrete winner-takes-all scorings
#: whose abundant exact ties historically exposed tie-order divergence.
GRID: dict[str, dict] = {
    "compact": dict(
        num_papers=10, num_reviewers=8, num_topics=6, group_size=2,
        reviewer_workload=5, conflict_ratio=0.05, seed=0,
    ),
    "wide-groups": dict(
        num_papers=8, num_reviewers=12, num_topics=5, group_size=3,
        reviewer_workload=5, conflict_ratio=0.12, seed=1,
    ),
    "tie-heavy-reviewer-coverage": dict(
        num_papers=12, num_reviewers=10, num_topics=7, group_size=3,
        reviewer_workload=6, conflict_ratio=0.0, seed=2,
        scoring="reviewer_coverage",
    ),
    "tie-heavy-paper-coverage": dict(
        num_papers=9, num_reviewers=9, num_topics=6, group_size=2,
        reviewer_workload=4, conflict_ratio=0.08, seed=3,
        scoring="paper_coverage",
    ),
    "dot-product": dict(
        num_papers=9, num_reviewers=9, num_topics=6, group_size=2,
        reviewer_workload=4, conflict_ratio=0.08, seed=4,
        scoring="dot_product",
    ),
}

#: A tiny instance for the exponential-time solvers (Exhaustive, ILP).
TINY: dict = dict(
    num_papers=4, num_reviewers=6, num_topics=4, group_size=2,
    reviewer_workload=4, conflict_ratio=0.1, seed=0,
)


def make_instance(spec: dict) -> WGRAPProblem:
    """Build one grid instance."""
    return make_problem(**spec)


def cold_clone(problem: WGRAPProblem) -> WGRAPProblem:
    """The same instance rebuilt from its entities, with every cache cold."""
    return WGRAPProblem(
        papers=problem.papers,
        reviewers=problem.reviewers,
        group_size=problem.group_size,
        reviewer_workload=problem.reviewer_workload,
        conflicts=problem.conflicts,
        scoring=problem.scoring,
        validate_capacity=False,
    )


def late_paper(problem: WGRAPProblem, tag: str) -> Paper:
    """A deterministic late submission named ``tag``.

    Seeded from a stable digest of the tag — *not* ``hash()``, which is
    salted per interpreter process and would silently rebuild every
    "pinned" chain instance with different vectors on each run.
    """
    rng = np.random.default_rng(zlib.crc32(tag.encode("utf-8")))
    return Paper(id=tag, vector=rng.dirichlet(np.full(problem.num_topics, 0.7)))


def _chain_interleaved(problem: WGRAPProblem, tag: str) -> WGRAPProblem:
    """add -> conflict add -> withdraw -> conflict discard -> add."""
    current = problem.with_additional_paper(late_paper(problem, f"{tag}-a"))
    current.conflicts.add(current.reviewer_ids[0], f"{tag}-a")
    current = current.without_reviewer(current.reviewer_ids[3])
    current.conflicts.discard(current.reviewer_ids[0], f"{tag}-a")
    return current.with_additional_paper(late_paper(current, f"{tag}-b"))


def _chain_withdraw_first(problem: WGRAPProblem, tag: str) -> WGRAPProblem:
    """withdraw -> add -> conflict add (left in place)."""
    current = problem.without_reviewer(problem.reviewer_ids[-1])
    current = current.with_additional_paper(late_paper(current, f"{tag}-a"))
    current.conflicts.add(current.reviewer_ids[1], current.paper_ids[0])
    return current


#: Mutation chains: id -> builder.  ``None`` is the unmutated control.
CHAINS: dict[str, object] = {
    "unmutated": None,
    "interleaved-all-three": _chain_interleaved,
    "withdraw-then-add-then-conflict": _chain_withdraw_first,
}


def apply_chain(problem: WGRAPProblem, chain_id: str) -> WGRAPProblem:
    """Warm the caches, then run a mutation chain down the delta path."""
    builder = CHAINS[chain_id]
    if builder is None:
        return problem
    problem.dense_view()
    problem.warm_pair_scores()
    return builder(problem, chain_id)
