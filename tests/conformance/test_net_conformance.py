"""Network-layer conformance: concurrent == serial, bitwise (ISSUE-7 satellite).

N concurrent clients interleave mutations (add_paper, withdraw_reviewer,
update_bids) and queries (journal, solve, evaluate) against one tenant of
a live TCP server.  The per-tenant ``seq`` on every response names the
total order the worker actually executed, so the whole concurrent run can
be replayed *serially* through a fresh :class:`EngineSession` on an
identically-built engine — and every response must come back
**bitwise-equal** (after scrubbing wall-clock and envelope fields).

This is the PR-5 conformance regime extended across the socket: it pins
that the network layer adds routing, batching and concurrency without
adding *any* semantics — cross-client batching only warms caches, the
single worker thread is a faithful serializer, and error responses
(infeasible mutations, unknown ids) are deterministic too.
"""

from __future__ import annotations

import json

import pytest

from repro.service.engine import AssignmentEngine
from repro.service.requests import paper_to_payload, request_from_dict
from repro.service.session import EngineSession
from repro.net import NetClient

from tests.conformance import GRID, late_paper, make_instance
from tests.net_utils import ServerHarness, strip_volatile

#: Request-kind rotation per (client, step) slot — mutations and queries
#: interleaved so concurrent clients genuinely contend on engine state.
_N_CLIENTS = 6
_N_REQUESTS = 8


def _script(client: int, problem) -> list[dict]:
    """The deterministic request script of one client."""
    paper_ids = list(problem.paper_ids)
    reviewer_ids = list(problem.reviewer_ids)
    script: list[dict] = []
    for step in range(_N_REQUESTS):
        slot = (client + 2 * step) % 6
        request_id = f"c{client}-r{step}"
        if slot == 0:
            script.append(
                {
                    "kind": "journal",
                    "paper_id": paper_ids[(client + step) % len(paper_ids)],
                    "id": request_id,
                }
            )
        elif slot == 1:
            script.append({"kind": "solve", "solver": "Greedy", "id": request_id})
        elif slot == 2:
            paper = late_paper(problem, f"net-{client}-{step}")
            script.append(
                {"kind": "add_paper", "paper": paper_to_payload(paper), "id": request_id}
            )
        elif slot == 3:
            script.append(
                {
                    "kind": "update_bids",
                    "bids": [
                        [
                            reviewer_ids[(client + step) % len(reviewer_ids)],
                            paper_ids[step % len(paper_ids)],
                            1.0 + client,
                        ]
                    ],
                    "id": request_id,
                }
            )
        elif slot == 4:
            script.append({"kind": "evaluate", "id": request_id})
        else:
            script.append(
                {
                    "kind": "withdraw_reviewer",
                    # a narrow rotation: repeats produce deterministic
                    # unknown_id errors, which must replay bitwise too
                    "reviewer_id": reviewer_ids[(client + step) % 3],
                    "id": request_id,
                }
            )
    return script


def _normalise(response: dict) -> dict:
    """Scrub volatile fields and JSON-round-trip for exact comparison."""
    return json.loads(json.dumps(strip_volatile(response)))


async def _drive(host: str, port: int, script: list[dict]) -> list[tuple[int, dict, dict]]:
    """One closed-loop client; returns (seq, request, response) triples."""
    client = await NetClient.connect(host, port)
    triples = []
    try:
        for request in script:
            response = await client.request(request)
            assert response.get("seq") is not None, response
            triples.append((response["seq"], request, response))
    finally:
        await client.close()
    return triples


def _run_concurrent(grid_id: str, pipelined: bool) -> list[tuple[int, dict, dict]]:
    spec = GRID[grid_id]
    harness = ServerHarness(max_pending=10_000)
    harness.add_tenant("conf", AssignmentEngine(make_instance(spec)), default=True)
    harness.start()
    try:
        problem = make_instance(spec)  # a pristine copy for script building
        scripts = [_script(c, problem) for c in range(_N_CLIENTS)]
        if pipelined:

            async def _drive_pipelined(script: list[dict]):
                client = await NetClient.connect(harness.host, harness.port)
                try:
                    for request in script:
                        await client.send(request)
                    triples = []
                    for request in script:
                        response = await client.recv()
                        triples.append((response["seq"], request, response))
                    return triples
                finally:
                    await client.close()

            coros = [_drive_pipelined(script) for script in scripts]
        else:
            coros = [_drive(harness.host, harness.port, script) for script in scripts]

        import asyncio

        async def _gather_all():
            return await asyncio.gather(*coros)

        all_triples = harness.run(_gather_all(), timeout=120)
    finally:
        harness.stop()
    merged = [triple for one_client in all_triples for triple in one_client]
    merged.sort(key=lambda triple: triple[0])
    return merged


def _replay_serially(grid_id: str, ordered_requests: list[dict]) -> list[dict]:
    session = EngineSession(AssignmentEngine(make_instance(GRID[grid_id])))
    return [
        session.dispatch(request_from_dict(payload)).to_dict()
        for payload in ordered_requests
    ]


@pytest.mark.parametrize("grid_id", ["compact", "wide-groups"])
@pytest.mark.parametrize("pipelined", [False, True], ids=["closed-loop", "pipelined"])
def test_concurrent_run_replays_serially_bitwise(grid_id, pipelined):
    triples = _run_concurrent(grid_id, pipelined)
    assert len(triples) == _N_CLIENTS * _N_REQUESTS

    # seq is a gap-free total order
    assert [seq for seq, _, _ in triples] == list(range(1, len(triples) + 1))

    serial = _replay_serially(grid_id, [request for _, request, _ in triples])
    for (seq, request, concurrent_response), serial_response in zip(triples, serial):
        assert _normalise(concurrent_response) == _normalise(serial_response), (
            f"seq {seq} ({request['kind']}, id {request['id']}) diverged "
            "between the concurrent server run and the serial session replay"
        )


def test_client_order_is_preserved_within_a_connection():
    """Per-connection FIFO: each client's seqs are strictly increasing."""
    triples = _run_concurrent("compact", pipelined=True)
    by_client: dict[str, list[int]] = {}
    for seq, request, _ in triples:
        by_client.setdefault(request["id"].split("-")[0], []).append(seq)
    for client, seqs in by_client.items():
        assert seqs == sorted(seqs), f"client {client} responses reordered"
