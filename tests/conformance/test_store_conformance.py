"""Storage-layer conformance: every backend is bitwise-equal to RAM.

The pluggable problem store (:mod:`repro.store`) must be *invisible* to
results.  This file pins that across the shared grid:

* **store round-trip == cold oracle, bitwise** — solving a problem that
  went through a SQLite store (create, close, reopen from disk, load)
  must produce the identical assignment and score as solving the cold
  in-RAM instance, for every fast CRA solver on the grid and every
  exponential solver on TINY.
* **mutation chains == in-RAM oracle, bitwise** — a store attached to a
  live mutation chain (adds, withdrawals, conflict edits) maintains its
  rows by incremental index deltas; the problem reloaded from disk after
  the chain must solve bitwise-equal to the chain's in-RAM result —
  including when the store is **closed and reopened mid-chain**.
* **memmap-backed engine == RAM engine, bitwise** — an engine whose
  score matrix lives in memmap blocks answers an interleaved request
  stream (solve / add / bids / journal / withdraw / evaluate) with
  responses identical to the in-RAM engine's.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.entities import Paper
from repro.data.synthetic import make_problem
from repro.service.engine import AssignmentEngine
from repro.service.registry import available_solver_specs, create_solver
from repro.store import InMemoryProblemStore, SqliteProblemStore
from tests.conformance import (
    CHAINS,
    GRID,
    TINY,
    apply_chain,
    cold_clone,
    late_paper,
    make_instance,
)

CRA_SPECS = available_solver_specs("cra")
FAST_CRA = [spec for spec in CRA_SPECS if "exponential" not in spec.tags]
EXPONENTIAL_CRA = [spec for spec in CRA_SPECS if "exponential" in spec.tags]
MUTATION_CHAINS = sorted(name for name in CHAINS if CHAINS[name] is not None)


def _ids(specs):
    return [spec.name for spec in specs]


def _store_round_trip(problem, path):
    """Compile ``problem`` into a store, then reload it from disk cold."""
    SqliteProblemStore.create(path, problem).close()
    store = SqliteProblemStore.open(path)
    reloaded = store.load_problem()
    store.close()
    return reloaded


class TestStoreRoundTripSolves:
    """SQLite round-trip == cold in-RAM oracle, bitwise, whole registry."""

    @pytest.mark.parametrize("instance_id", sorted(GRID))
    @pytest.mark.parametrize("spec", FAST_CRA, ids=_ids(FAST_CRA))
    def test_fast_cra_grid(self, spec, instance_id, tmp_path):
        problem = make_instance(GRID[instance_id])
        reloaded = _store_round_trip(problem, tmp_path / "grid.db")
        stored = create_solver("cra", spec.name).solve(reloaded)
        oracle = create_solver("cra", spec.name).solve(cold_clone(problem))
        assert stored.assignment == oracle.assignment, (
            f"{spec.name} diverged through the store on {instance_id!r}"
        )
        assert stored.score == oracle.score  # bitwise, not approx

    @pytest.mark.parametrize("spec", EXPONENTIAL_CRA, ids=_ids(EXPONENTIAL_CRA))
    def test_exponential_cra_tiny(self, spec, tmp_path):
        problem = make_instance(TINY)
        reloaded = _store_round_trip(problem, tmp_path / "tiny.db")
        stored = create_solver("cra", spec.name).solve(reloaded)
        oracle = create_solver("cra", spec.name).solve(cold_clone(problem))
        assert stored.assignment == oracle.assignment
        assert stored.score == oracle.score

    @pytest.mark.parametrize("instance_id", sorted(GRID))
    def test_loaded_matrices_are_bitwise(self, instance_id, tmp_path):
        problem = make_instance(GRID[instance_id])
        reloaded = _store_round_trip(problem, tmp_path / "m.db")
        assert np.array_equal(
            np.asarray(problem.reviewer_matrix), np.asarray(reloaded.reviewer_matrix)
        )
        assert np.array_equal(
            np.asarray(problem.paper_matrix), np.asarray(reloaded.paper_matrix)
        )
        assert sorted(problem.conflicts) == sorted(reloaded.conflicts)


class TestCandidateGenerationParity:
    """Indexed candidate queries == the historical in-RAM scan."""

    @pytest.mark.parametrize("instance_id", sorted(GRID))
    def test_candidates_match_memory_backend(self, instance_id, tmp_path):
        problem = make_instance(GRID[instance_id])
        memory = InMemoryProblemStore(problem)
        sqlite = SqliteProblemStore.create(tmp_path / "c.db", problem)
        try:
            for paper_id in problem.paper_ids:
                assert sqlite.candidate_reviewers(paper_id) == (
                    memory.candidate_reviewers(paper_id)
                )
            for paper in problem.papers[:3]:
                indexed = sqlite.topic_candidates(paper.vector, limit=5)
                scanned = memory.topic_candidates(paper.vector, limit=5)
                # SQL's SUM accumulates per-topic in index order, the RAM
                # proxy is one dense matmul: same shortlist, ULP-level
                # score differences are fine (it is a pruning heuristic,
                # never a result — results stay bitwise elsewhere).
                assert {rid for rid, _ in indexed} == {rid for rid, _ in scanned}
                np.testing.assert_allclose(
                    np.array([s for _, s in indexed]),
                    np.array([s for _, s in scanned]),
                    rtol=1e-12,
                )
        finally:
            sqlite.close()


class TestMutationChains:
    """A store following a live chain == the in-RAM chain, bitwise."""

    @pytest.mark.parametrize("chain_id", MUTATION_CHAINS)
    @pytest.mark.parametrize("instance_id", sorted(GRID))
    def test_chain_reload_equals_oracle(self, instance_id, chain_id, tmp_path):
        spec = GRID[instance_id]
        oracle_tip = apply_chain(make_instance(spec), chain_id)
        oracle = create_solver("cra", "Greedy").solve(cold_clone(oracle_tip))

        base = make_instance(spec)
        store = SqliteProblemStore.create(tmp_path / "chain.db", base)
        apply_chain(base, chain_id)  # the attached store follows the chain
        store.close()

        reopened = SqliteProblemStore.open(tmp_path / "chain.db")
        try:
            stored = create_solver("cra", "Greedy").solve(reopened.load_problem())
            assert stored.assignment == oracle.assignment, (
                f"chain {chain_id!r} diverged through the store on {instance_id!r}"
            )
            assert stored.score == oracle.score
            assert reopened.stats.rebuilds == 0  # deltas, never a rebuild
        finally:
            reopened.close()

    @pytest.mark.parametrize("instance_id", sorted(GRID))
    def test_close_and_reopen_mid_chain(self, instance_id, tmp_path):
        """The chain survives a full close-and-reopen-from-disk mid-way."""
        spec = GRID[instance_id]
        path = tmp_path / "midchain.db"

        # In-RAM oracle: the whole chain on one resident problem.
        oracle_base = make_instance(spec)
        cur = oracle_base.with_additional_paper(late_paper(oracle_base, "mid-a"))
        cur.conflicts.add(cur.reviewer_ids[0], "mid-a")
        cur = cur.with_additional_paper(late_paper(cur, "mid-b"))
        oracle = create_solver("cra", "Greedy").solve(cold_clone(cur))

        # Store path: first half, close, reopen from disk, second half.
        base = make_instance(spec)
        store = SqliteProblemStore.create(path, base)
        half = base.with_additional_paper(late_paper(base, "mid-a"))
        half.conflicts.add(half.reviewer_ids[0], "mid-a")
        store.close()

        store = SqliteProblemStore.open(path)
        resumed = store.load_problem()
        store.attach(resumed)
        resumed.with_additional_paper(late_paper(resumed, "mid-b"))
        store.close()

        final = SqliteProblemStore.open(path)
        try:
            stored = create_solver("cra", "Greedy").solve(final.load_problem())
        finally:
            final.close()
        assert stored.assignment == oracle.assignment
        assert stored.score == oracle.score

    def test_workload_override_survives_reopen(self, tmp_path):
        """An ``add_paper`` that raises ``reviewer_workload`` must persist
        the raised constraint — otherwise the reopened problem is
        infeasible where the live chain was not (regression)."""
        from repro.service.engine import AssignmentEngine

        path = tmp_path / "workload.db"
        base = make_instance(GRID["compact"])
        raised = base.reviewer_workload + 1
        store = SqliteProblemStore.create(path, base)
        engine = AssignmentEngine.from_store(store)
        live = engine.add_paper(
            late_paper(engine.problem, "over-capacity"),
            reviewer_workload=raised,
        )
        assert live is not None
        live_solve = engine.solve("Greedy")
        store.close()

        reopened = SqliteProblemStore.open(path)
        try:
            problem = reopened.load_problem()
            assert problem.reviewer_workload == raised
            stored = create_solver("cra", "Greedy").solve(problem)
        finally:
            reopened.close()
        assert stored.assignment == live_solve.assignment
        assert stored.score == live_solve.score


class TestMemmapEngineParity:
    """Engine on memmap blocks == engine in RAM across a request stream."""

    def _problem(self):
        return make_problem(10, 16, num_topics=8, reviewer_workload=6, seed=7)

    def _drive(self, engine):
        responses = []
        result = engine.solve("Greedy")
        responses.append((result.assignment, result.score))
        engine.update_bids(
            [
                (engine.problem.reviewer_ids[0], engine.problem.paper_ids[0], 1.0),
                (engine.problem.reviewer_ids[1], engine.problem.paper_ids[1], 0.25),
            ]
        )
        engine.add_paper(late_paper(engine.problem, "stream-a"))
        result = engine.solve("Greedy")
        responses.append((result.assignment, result.score))
        answer = engine.journal_query(engine.problem.paper_ids[0], top_k=2)
        responses.append((answer.best.reviewer_ids, answer.best.score))
        engine.withdraw_reviewer(engine.problem.reviewer_ids[-1])
        result = engine.solve("Greedy")
        responses.append((result.assignment, result.score))
        responses.append(engine.evaluate())
        return responses

    def test_interleaved_stream_bitwise(self, tmp_path):
        ram = AssignmentEngine(self._problem())
        store = SqliteProblemStore.create(
            tmp_path / "blocks.db", self._problem(), blocks=True, block_cols=4
        )
        blocked = AssignmentEngine.from_store(store)
        try:
            assert blocked.store is store
            assert store.matrix_backend() is not None
            assert self._drive(blocked) == self._drive(ram)
            description = store.matrix_backend().describe()
            assert description["appends"] >= 1
            assert description["drops"] >= 1
        finally:
            store.close()

    def test_reopen_between_requests(self, tmp_path):
        path = tmp_path / "resume.db"
        ram = AssignmentEngine(self._problem())
        ram.solve("Greedy")
        ram.add_paper(late_paper(ram.problem, "resume-a"))
        oracle = ram.solve("Greedy")

        store = SqliteProblemStore.create(path, self._problem(), blocks=True)
        engine = AssignmentEngine.from_store(store)
        engine.solve("Greedy")
        engine.add_paper(late_paper(engine.problem, "resume-a"))
        engine.sync_store()
        store.close()

        resumed = AssignmentEngine.from_store(SqliteProblemStore.open(path))
        try:
            result = resumed.solve("Greedy")
            assert result.assignment == oracle.assignment
            assert result.score == oracle.score
        finally:
            resumed.store.close()


class TestPaperWorthyInstance(object):
    """One store-backed solve at paper scale (small here, same code path)."""

    def test_store_backed_solve_validates(self, tmp_path):
        problem = make_problem(18, 24, num_topics=12, reviewer_workload=5, seed=11)
        store = SqliteProblemStore.create(
            tmp_path / "paper.db", problem, blocks=True, block_cols=8
        )
        engine = AssignmentEngine.from_store(store)
        try:
            result = engine.solve("Greedy")
            cold_clone(problem).validate_assignment(result.assignment)
            summary = store.describe()
            assert summary["reviewer_rows"] == 24
            assert summary["paper_rows"] == 18
        finally:
            store.close()
