"""Named regression tests for defects the conformance harness surfaced.

Each test pins the exact instance (or the minimal reconstruction) that
exposed the bug, so the fix cannot silently regress.
"""

from __future__ import annotations

import pytest

from repro.core.entities import Paper, Reviewer
from repro.core.problem import WGRAPProblem
from repro.core.vectors import TopicVector
from repro.cra.greedy import GreedySolver
from repro.service.engine import AssignmentEngine
from repro.service.registry import create_solver
from tests.conformance import GRID, apply_chain, cold_clone, make_instance


class TestGreedyHeapTieDrift:
    """Harness finding #1: the lazy heap is not a valid bitwise oracle.

    On the tie-heavy ``reviewer_coverage`` grid cell the heap's ulp-stale
    records reorder exact-gain ties and cascade into a *different
    assignment with a different score* (18.3497 vs 18.3628 at the time of
    the finding) — a historical divergence PR 3 documented but the old
    dense-vs-object comparison never covered.  The fix: Greedy's object
    oracle is the naive true-argmax re-scan evaluated through the object
    layer; the heap stays reachable explicitly (``lazy_heap=True``) as a
    benchmark baseline.
    """

    INSTANCE = "tie-heavy-reviewer-coverage"

    def _mutated(self):
        return apply_chain(make_instance(GRID[self.INSTANCE]), "interleaved-all-three")

    def test_dense_greedy_matches_naive_object_oracle_bitwise(self):
        problem = self._mutated()
        dense = create_solver("cra", "Greedy", use_dense=True).solve(problem)
        oracle = create_solver("cra", "Greedy", use_dense=False).solve(problem)
        assert dense.assignment == oracle.assignment
        assert dense.score == oracle.score

    def test_registry_object_oracle_is_the_naive_scan_not_the_heap(self):
        solver = create_solver("cra", "Greedy", use_dense=False)
        result = solver.solve(make_instance(GRID[self.INSTANCE]))
        assert result.stats["strategy"] == "naive_object"

    def test_heap_baseline_remains_reachable_and_valid(self):
        problem = self._mutated()
        heap = GreedySolver(use_lazy_heap=True, use_dense=False).solve(problem)
        assert heap.stats["strategy"] == "lazy_heap"
        cold_clone(problem).validate_assignment(heap.assignment)


def _tiny_entities(num_topics: int = 3):
    vectors = [
        [0.7, 0.2, 0.1],
        [0.1, 0.8, 0.1],
        [0.3, 0.3, 0.4],
    ]
    reviewers = [
        Reviewer(id=f"r{i}", vector=TopicVector(values)) for i, values in enumerate(vectors)
    ]
    papers = [
        Paper(id="p0", vector=TopicVector([0.5, 0.3, 0.2])),
        Paper(id="p1", vector=TopicVector([0.2, 0.5, 0.3])),
    ]
    return papers, reviewers


class TestStaleConflictEntriesAfterWithdrawal:
    """Harness findings #2/#3: conflict entries can outlive their reviewer.

    The conflict container travels along mutation chains by id, so after
    ``without_reviewer`` it can still name reviewers no longer in the
    pool.  That crashed ``ExhaustiveSolver`` (KeyError on the index
    lookup) and made BRGG's object path *under-count* availability
    (``available = R - len(excluded)`` with phantom members in
    ``excluded``), shrinking groups that the dense mask — which never sees
    unknown ids — staffed in full.
    """

    def test_exhaustive_tolerates_conflicts_naming_withdrawn_reviewers(self):
        papers, reviewers = _tiny_entities()
        problem = WGRAPProblem(
            papers=papers, reviewers=reviewers, group_size=2, reviewer_workload=2,
            conflicts=[("r2", "p0")],
        )
        problem.dense_view()
        derived = problem.without_reviewer("r2")
        assert "r2" in derived.conflicts.reviewers_conflicting_with("p0")
        result = create_solver("cra", "Exhaustive").solve(derived)  # used to raise KeyError
        derived.validate_assignment(result.assignment)

    def test_brgg_object_path_counts_only_pool_members(self):
        papers, reviewers = _tiny_entities()
        problem = WGRAPProblem(
            papers=papers, reviewers=reviewers, group_size=2, reviewer_workload=2,
            conflicts=[("r2", "p0")],
        )
        problem.dense_view()
        derived = problem.without_reviewer("r2")
        dense = create_solver("cra", "BRGG", use_dense=True).solve(derived)
        oracle = create_solver("cra", "BRGG", use_dense=False).solve(derived)
        # The phantom "r2" entry used to push the object path's available
        # count below delta_p, forcing a partial group + a repair detour
        # (observable as repaired=True here, and as an outright
        # InfeasibleProblemError on conflict-dense instances).
        assert oracle.assignment == dense.assignment
        assert oracle.score == dense.score
        assert dict(oracle.stats) == dict(dense.stats)
        assert oracle.stats["repaired"] is False
        assert dense.assignment.group_size("p0") == 2

    def test_engine_add_paper_counts_only_pool_members(self):
        papers, reviewers = _tiny_entities()
        problem = WGRAPProblem(
            papers=papers, reviewers=reviewers, group_size=2, reviewer_workload=3,
        )
        engine = AssignmentEngine(problem)
        engine.solve("Greedy")
        # A conflict declared for a paper id that has not arrived yet,
        # naming a reviewer who then withdraws.
        engine.problem.conflicts.add("r0", "late")
        engine.withdraw_reviewer("r0")
        late = Paper(id="late", vector=TopicVector([0.4, 0.4, 0.2]))
        delta = engine.add_paper(late)  # used to raise InfeasibleProblemError
        assert delta.affected_papers == ("late",)
        assert engine.assignment.group_size("late") == 2
        engine.problem.validate_assignment(engine.assignment)


class TestConformanceSweepStaysClean:
    """The exact sweep cell that exposed finding #1 must stay clean for
    every dense-tagged solver (cheap insurance against tie-order drift
    reappearing through a kernel change)."""

    @pytest.mark.parametrize("name", ["Greedy", "SDGA", "SM", "BRGG", "Ratio-Greedy", "Repair"])
    def test_tie_heavy_cell_dense_object_parity(self, name):
        problem = apply_chain(
            make_instance(GRID["tie-heavy-reviewer-coverage"]), "interleaved-all-three"
        )
        dense = create_solver("cra", name, use_dense=True).solve(problem)
        oracle = create_solver("cra", name, use_dense=False).solve(problem)
        assert dense.assignment == oracle.assignment
        assert dense.score == oracle.score
