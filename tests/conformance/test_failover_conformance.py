"""Failover conformance: a promoted standby is bitwise-equal to a
server that never crashed.

The regime extends the crash-recovery conformance harness to the
warm-standby topology: the same deterministic churn stream is driven
against a *replicating* primary (``replicate_to`` a live standby), the
primary is crash-stopped (:meth:`~repro.net.server.AssignmentServer.abort`)
at seeded points once the standby has acked everything, the standby is
promoted, and the stream continues against it — chaining a fresh standby
behind each new primary so every failover happens under replication.

Every client-observed response, and the final engine snapshot of the
last survivor, must equal the serial never-crashed oracle **bitwise**.
After each failover the last mutation is re-sent to the promoted standby
under its original idempotency key and must be answered from the
*replicated* applied map without re-executing (exactly-once across the
switch).  A second test lets :class:`~repro.net.client.RetryingClient`
do the failover itself — ordered endpoints, automatic promotion on
heartbeat silence — with no test-side orchestration of the switch.

``REPRO_CHAOS_FAILOVER_POINTS`` scales how many failovers the chain test
samples (default 2; CI smoke runs 1).
"""

from __future__ import annotations

import itertools
import json
import os
import random

from repro.durability import DurabilityConfig
from repro.net.client import RetryPolicy, RetryingClient
from repro.service.engine import AssignmentEngine

from tests.conformance import make_instance
from tests.conformance.test_recovery_conformance import (
    SEED,
    SPEC,
    TENANT,
    churn_stream,
    normalise,
    oracle_run,
)
from tests.net_utils import ServerHarness, wait_until

FAILOVER_POINTS = int(os.environ.get("REPRO_CHAOS_FAILOVER_POINTS", "2"))


def _caught_up(primary: ServerHarness) -> bool:
    status = primary.call({"kind": "replication_status"})
    assert status["ok"], status
    return bool(status["payload"]["replication"]["caught_up"])


class TestFailoverConformance:
    def test_failover_chain_is_bitwise_equal_to_the_oracle(self, tmp_path):
        stream = churn_stream()
        oracle_engine, oracle_responses = oracle_run(stream)

        rng = random.Random(SEED)
        count = max(0, min(FAILOVER_POINTS, len(stream) - 1))
        fail_after = set(rng.sample(range(len(stream) - 1), count))

        roots = itertools.count()

        def boot_standby() -> ServerHarness:
            harness = ServerHarness(
                durability=DurabilityConfig(
                    root=tmp_path / f"wal-{next(roots)}", checkpoint_every=3
                ),
                standby=True,
            )
            return harness.start()

        standby = boot_standby()
        primary = ServerHarness(
            durability=DurabilityConfig(
                root=tmp_path / f"wal-{next(roots)}", checkpoint_every=3
            ),
            replicate_to=("127.0.0.1", standby.port),
        )
        primary.add_tenant(TENANT, AssignmentEngine(make_instance(SPEC)), default=True)
        primary.start()
        failovers = 0
        client = primary.client()
        try:
            for index, payload in enumerate(stream):
                response = client.request(payload)
                assert response["ok"], f"server refused {payload}: {response}"
                assert normalise(response) == oracle_responses[index], (
                    f"response {index} ({payload['kind']}) diverged from the oracle"
                )
                if index not in fail_after:
                    continue

                # Gate the crash on the replication watermark: every
                # journaled record acked, no resync pending.  Then the
                # standby's replica must already be bitwise-equal — the
                # tentpole invariant, checked *before* promotion.
                wait_until(lambda: _caught_up(primary))
                replica = standby.server.standby.replicas[TENANT]
                live = primary.server.tenants.get(TENANT).engine
                assert json.dumps(replica.engine.to_snapshot(), sort_keys=True) == (
                    json.dumps(live.to_snapshot(), sort_keys=True)
                )

                # Crash-stop the primary (no drain, no final checkpoint)
                # and promote the standby into the new primary.
                client.close()
                primary.abort()
                promoted = standby.call({"kind": "promote"})
                assert promoted["ok"], promoted
                assert promoted["payload"] == {"promoted": True, "tenants": [TENANT]}
                failovers += 1

                # Exactly-once across the switch: the last mutation,
                # re-sent under its original key, is answered from the
                # *replicated* applied map — same payload, no re-apply.
                last = next(
                    (i for i in range(index, -1, -1) if "seq" in stream[i]), None
                )
                if last is not None:
                    replay = standby.call(stream[last])
                    assert replay["ok"], replay
                    assert normalise(replay) == oracle_responses[last]

                # Chain: the promoted standby is the new primary; attach
                # a fresh standby behind it so the next failover also
                # happens under replication (snapshot + WAL catch-up).
                primary, standby = standby, boot_standby()
                primary.run(
                    primary.server.start_replication("127.0.0.1", standby.port)
                )
                client = primary.client()
            client.close()
            assert failovers == count

            survivor = primary.server.tenants.get(TENANT).engine
            assert json.dumps(survivor.to_snapshot(), sort_keys=True) == (
                json.dumps(oracle_engine.to_snapshot(), sort_keys=True)
            )
        finally:
            primary.stop()
            standby.stop()

    def test_retrying_client_rides_out_auto_promotion(self, tmp_path):
        """No test-side failover orchestration: the client holds an
        ordered endpoints list, the standby auto-promotes on heartbeat
        silence, and the stream must still match the oracle bitwise."""
        stream = churn_stream()
        oracle_engine, oracle_responses = oracle_run(stream)

        standby = ServerHarness(
            durability=DurabilityConfig(root=tmp_path / "wal-s", checkpoint_every=3),
            standby=True,
            auto_promote_after=0.4,
        ).start()
        primary = ServerHarness(
            durability=DurabilityConfig(root=tmp_path / "wal-p", checkpoint_every=3),
            replicate_to=("127.0.0.1", standby.port),
        )
        primary.add_tenant(TENANT, AssignmentEngine(make_instance(SPEC)), default=True)
        primary.start()

        # The client's coroutines run on the *standby* harness loop — it
        # survives the primary's crash-stop.
        client = RetryingClient(
            endpoints=[("127.0.0.1", primary.port), ("127.0.0.1", standby.port)],
            policy=RetryPolicy(
                attempts=12, base_delay=0.05, multiplier=1.5,
                max_delay=0.5, seed=11,
            ),
        )
        fail_after = len(stream) // 2
        crashed = False
        try:
            for index, payload in enumerate(stream):
                response = standby.run(client.request(payload))
                assert response["ok"], f"request {index} refused: {response}"
                assert normalise(response) == oracle_responses[index]
                if index == fail_after:
                    wait_until(lambda: _caught_up(primary))
                    primary.abort()
                    crashed = True
            assert crashed
            standby.run(client.close())

            # The survivor is the auto-promoted standby.
            status = standby.call({"kind": "replication_status"})
            assert status["payload"]["role"] == "primary"
            assert status["payload"]["standby"]["promoted"] is True

            # Every mutation, re-sent under its original key, must be
            # answered from the replicated applied map unchanged.
            for index, payload in enumerate(stream):
                if "seq" not in payload:
                    continue
                replay = standby.call(payload)
                assert replay["ok"], replay
                assert normalise(replay) == oracle_responses[index]

            survivor = standby.server.tenants.get(TENANT).engine
            assert json.dumps(survivor.to_snapshot(), sort_keys=True) == (
                json.dumps(oracle_engine.to_snapshot(), sort_keys=True)
            )
        finally:
            standby.stop()
            if not crashed:
                primary.stop()
