"""Unit tests for the RAP reductions of Section 2.3."""

from __future__ import annotations

import itertools

import pytest

from repro.core.problem import WGRAPProblem
from repro.core.reductions import (
    binary_topic_vector,
    expand_problem_for_pairwise_objective,
    formulation_table,
    set_coverage,
    sgrap_problem_from_topic_sets,
)
from repro.core.scoring import WeightedCoverage
from repro.data.synthetic import make_problem
from repro.exceptions import ConfigurationError


class TestFormulationTable:
    def test_table2_contents(self):
        table = {entry.name: entry for entry in formulation_table()}
        assert set(table) == {"RRAP", "ARAP", "SGRAP", "WGRAP"}
        assert not table["RRAP"].group_size_constraint
        assert table["ARAP"].group_size_constraint
        assert not table["ARAP"].group_based_objective
        assert table["SGRAP"].group_based_objective
        assert table["SGRAP"].objective_weighting == "set"
        assert table["WGRAP"].objective_weighting == "weight"
        assert all(entry.is_special_case_of_wgrap() for entry in table.values())


class TestSGRAPReduction:
    def test_binary_vector(self):
        vector = binary_topic_vector({0, 2}, num_topics=4)
        assert vector.to_list() == [1.0, 0.0, 1.0, 0.0]

    def test_binary_vector_out_of_range(self):
        with pytest.raises(ConfigurationError):
            binary_topic_vector({5}, num_topics=3)

    def test_set_coverage_matches_weighted_coverage_on_binary_vectors(self):
        """Section 2.3: on binary vectors the two coverage notions coincide."""
        num_topics = 6
        paper_topics = {0, 1, 3, 5}
        group_sets = [{0, 2}, {1, 4}, {3}]
        expected = set_coverage(group_sets, paper_topics)

        scoring = WeightedCoverage()
        group_vectors = [binary_topic_vector(s, num_topics) for s in group_sets]
        paper_vector = binary_topic_vector(paper_topics, num_topics)
        assert scoring.group_score(group_vectors, paper_vector) == pytest.approx(expected)

    def test_set_coverage_of_empty_paper(self):
        assert set_coverage([{1, 2}], set()) == 0.0

    def test_sgrap_problem_builder(self):
        problem = sgrap_problem_from_topic_sets(
            paper_topic_sets={"p1": {0, 1}, "p2": {2, 3}},
            reviewer_topic_sets={"r1": {0}, "r2": {1, 2}, "r3": {3}},
            num_topics=4,
            group_size=2,
        )
        assert isinstance(problem, WGRAPProblem)
        assert problem.num_papers == 2
        assert problem.num_reviewers == 3
        # Reviewer r2 covers half of p1's topics.
        assert problem.pair_score("r2", "p1") == pytest.approx(0.5)


class TestPairwiseExpansion:
    def test_group_score_becomes_scaled_pair_sum(self):
        """On the expanded instance, group coverage = (1/R) * sum of pair scores."""
        problem = make_problem(num_papers=3, num_reviewers=4, num_topics=5,
                               group_size=2, seed=2)
        expanded = expand_problem_for_pairwise_objective(problem)
        assert expanded.num_topics == problem.num_topics * problem.num_reviewers

        scoring = problem.scoring
        for paper, expanded_paper in zip(problem.papers, expanded.papers):
            for r1, r2 in itertools.combinations(range(problem.num_reviewers), 2):
                pair_sum = sum(
                    scoring.score(problem.reviewers[r].vector, paper.vector)
                    for r in (r1, r2)
                )
                group_expanded = scoring.group_score(
                    [expanded.reviewers[r1].vector, expanded.reviewers[r2].vector],
                    expanded_paper.vector,
                )
                assert group_expanded == pytest.approx(
                    pair_sum / problem.num_reviewers, abs=1e-9
                )

    def test_expansion_preserves_constraints(self):
        problem = make_problem(num_papers=3, num_reviewers=4, num_topics=5,
                               group_size=2, seed=2)
        expanded = expand_problem_for_pairwise_objective(problem)
        assert expanded.group_size == problem.group_size
        assert expanded.reviewer_workload == problem.reviewer_workload
        assert expanded.num_papers == problem.num_papers
