"""Unit tests for the JRA solvers: BFS, BBA, ILP and CP (Section 3)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.entities import Paper, Reviewer
from repro.core.problem import JRAProblem
from repro.core.vectors import TopicVector
from repro.jra.base import JRAResult
from repro.jra.bba import BranchAndBoundSolver
from repro.jra.brute_force import BruteForceSolver
from repro.jra.cp import ConstraintProgrammingSolver
from repro.jra.ilp import ILPSolver
from repro.jra.topk import find_top_k_groups
from repro.exceptions import ConfigurationError


def _exhaustive_best(problem: JRAProblem) -> tuple[float, set[frozenset[str]]]:
    """Exact optimum and the set of optimal groups, by direct enumeration."""
    best_score = -1.0
    best_groups: set[frozenset[str]] = set()
    for combination in itertools.combinations(problem.reviewer_ids, problem.group_size):
        score = problem.group_score(combination)
        if score > best_score + 1e-12:
            best_score = score
            best_groups = {frozenset(combination)}
        elif abs(score - best_score) <= 1e-12:
            best_groups.add(frozenset(combination))
    return best_score, best_groups


class TestBruteForce:
    def test_finds_exact_optimum(self, tiny_jra_problem):
        result = BruteForceSolver().solve(tiny_jra_problem)
        best_score, best_groups = _exhaustive_best(tiny_jra_problem)
        assert result.score == pytest.approx(best_score)
        assert frozenset(result.reviewer_ids) in best_groups
        assert result.is_optimal
        assert result.stats["groups_evaluated"] == len(
            list(itertools.combinations(range(9), 3))
        )

    def test_top_k_mode(self, tiny_jra_problem):
        solver = BruteForceSolver(top_k=4)
        result = solver.solve(tiny_jra_problem)
        shortlist = result.stats["top_k"]
        assert len(shortlist) == 4
        scores = [score for _, score in shortlist]
        assert scores == sorted(scores, reverse=True)
        assert scores[0] == pytest.approx(result.score)

    def test_rejects_bad_top_k(self):
        with pytest.raises(ValueError):
            BruteForceSolver(top_k=0)


class TestBBA:
    def test_matches_brute_force(self, tiny_jra_problem):
        bba = BranchAndBoundSolver().solve(tiny_jra_problem)
        bfs = BruteForceSolver().solve(tiny_jra_problem)
        assert bba.score == pytest.approx(bfs.score)
        assert tiny_jra_problem.group_score(bba.reviewer_ids) == pytest.approx(bba.score)

    @pytest.mark.parametrize("group_size", [1, 2, 3, 4])
    def test_matches_brute_force_across_group_sizes(self, group_size):
        rng = np.random.default_rng(group_size)
        paper = Paper(id="p", vector=TopicVector(rng.dirichlet(np.ones(5))))
        reviewers = [
            Reviewer(id=f"r{i}", vector=TopicVector(rng.dirichlet(np.full(5, 0.4))))
            for i in range(8)
        ]
        problem = JRAProblem(paper=paper, reviewers=reviewers, group_size=group_size)
        bba = BranchAndBoundSolver().solve(problem)
        bfs = BruteForceSolver().solve(problem)
        assert bba.score == pytest.approx(bfs.score)

    @pytest.mark.parametrize("scoring", ["weighted_coverage", "reviewer_coverage",
                                         "paper_coverage", "dot_product"])
    def test_exact_under_every_scoring_function(self, scoring):
        rng = np.random.default_rng(hash(scoring) % 2**31)
        paper = Paper(id="p", vector=TopicVector(rng.dirichlet(np.ones(4))))
        reviewers = [
            Reviewer(id=f"r{i}", vector=TopicVector(rng.dirichlet(np.full(4, 0.5))))
            for i in range(7)
        ]
        problem = JRAProblem(paper=paper, reviewers=reviewers, group_size=2, scoring=scoring)
        bba = BranchAndBoundSolver().solve(problem)
        best_score, _ = _exhaustive_best(problem)
        assert bba.score == pytest.approx(best_score)

    def test_ablation_flags_do_not_change_the_answer(self, tiny_jra_problem):
        reference = BranchAndBoundSolver().solve(tiny_jra_problem)
        no_bound = BranchAndBoundSolver(use_bound=False).solve(tiny_jra_problem)
        no_ordering = BranchAndBoundSolver(use_gain_ordering=False).solve(tiny_jra_problem)
        assert no_bound.score == pytest.approx(reference.score)
        assert no_ordering.score == pytest.approx(reference.score)

    def test_bounding_prunes_nodes(self, tiny_jra_problem):
        with_bound = BranchAndBoundSolver().solve(tiny_jra_problem)
        without_bound = BranchAndBoundSolver(use_bound=False).solve(tiny_jra_problem)
        assert with_bound.stats["nodes_expanded"] <= without_bound.stats["nodes_expanded"]
        assert with_bound.stats["prunings"] > 0

    def test_group_size_one(self, tiny_jra_problem):
        problem = JRAProblem(
            paper=tiny_jra_problem.paper,
            reviewers=tiny_jra_problem.reviewers,
            group_size=1,
        )
        result = BranchAndBoundSolver().solve(problem)
        pair_scores = [
            problem.group_score([reviewer_id]) for reviewer_id in problem.reviewer_ids
        ]
        assert result.score == pytest.approx(max(pair_scores))

    def test_group_size_equals_pool(self):
        rng = np.random.default_rng(2)
        paper = Paper(id="p", vector=TopicVector(rng.dirichlet(np.ones(4))))
        reviewers = [
            Reviewer(id=f"r{i}", vector=TopicVector(rng.dirichlet(np.ones(4))))
            for i in range(3)
        ]
        problem = JRAProblem(paper=paper, reviewers=reviewers, group_size=3)
        result = BranchAndBoundSolver().solve(problem)
        assert set(result.reviewer_ids) == {"r0", "r1", "r2"}

    def test_zero_mass_paper(self):
        paper = Paper(id="p", vector=TopicVector([0.0, 0.0, 0.0]))
        reviewers = [
            Reviewer(id=f"r{i}", vector=TopicVector([0.3, 0.3, 0.4])) for i in range(4)
        ]
        problem = JRAProblem(paper=paper, reviewers=reviewers, group_size=2)
        result = BranchAndBoundSolver().solve(problem)
        assert result.score == 0.0
        assert len(result.reviewer_ids) == 2

    def test_result_dataclass_fields(self, tiny_jra_problem):
        result = BranchAndBoundSolver().solve(tiny_jra_problem)
        assert isinstance(result, JRAResult)
        assert result.group_size == tiny_jra_problem.group_size
        assert result.elapsed_seconds >= 0.0

    def test_rejects_bad_top_k(self):
        with pytest.raises(ValueError):
            BranchAndBoundSolver(top_k=0)


class TestTopK:
    def test_bba_top_k_matches_brute_force_ranking(self, tiny_jra_problem):
        bba = find_top_k_groups(tiny_jra_problem, k=5, method="bba")
        bfs = find_top_k_groups(tiny_jra_problem, k=5, method="bfs")
        assert [round(entry.score, 9) for entry in bba] == [
            round(entry.score, 9) for entry in bfs
        ]
        assert [entry.rank for entry in bba] == [1, 2, 3, 4, 5]

    def test_top_k_scores_are_descending(self, tiny_jra_problem):
        shortlist = find_top_k_groups(tiny_jra_problem, k=10)
        scores = [entry.score for entry in shortlist]
        assert scores == sorted(scores, reverse=True)

    def test_top_one(self, tiny_jra_problem):
        shortlist = find_top_k_groups(tiny_jra_problem, k=1)
        best = BranchAndBoundSolver().solve(tiny_jra_problem)
        assert len(shortlist) == 1
        assert shortlist[0].score == pytest.approx(best.score)

    def test_invalid_arguments(self, tiny_jra_problem):
        with pytest.raises(ConfigurationError):
            find_top_k_groups(tiny_jra_problem, k=0)
        with pytest.raises(ConfigurationError):
            find_top_k_groups(tiny_jra_problem, k=3, method="magic")


class TestILP:
    def test_matches_brute_force(self, tiny_jra_problem):
        ilp = ILPSolver().solve(tiny_jra_problem)
        bfs = BruteForceSolver().solve(tiny_jra_problem)
        assert ilp.score == pytest.approx(bfs.score)
        assert ilp.stats["nodes_explored"] >= 1

    def test_simplex_backend_on_small_instance(self):
        rng = np.random.default_rng(8)
        paper = Paper(id="p", vector=TopicVector(rng.dirichlet(np.ones(3))))
        reviewers = [
            Reviewer(id=f"r{i}", vector=TopicVector(rng.dirichlet(np.ones(3))))
            for i in range(5)
        ]
        problem = JRAProblem(paper=paper, reviewers=reviewers, group_size=2)
        ilp = ILPSolver(backend="simplex").solve(problem)
        bfs = BruteForceSolver().solve(problem)
        assert ilp.score == pytest.approx(bfs.score)


class TestCP:
    def test_matches_brute_force(self, tiny_jra_problem):
        cp = ConstraintProgrammingSolver().solve(tiny_jra_problem)
        bfs = BruteForceSolver().solve(tiny_jra_problem)
        assert cp.score == pytest.approx(bfs.score)
        assert cp.is_optimal

    def test_first_solution_mode_is_fast_but_not_proven(self, tiny_jra_problem):
        first = ConstraintProgrammingSolver(first_solution_only=True).solve(tiny_jra_problem)
        optimal = ConstraintProgrammingSolver().solve(tiny_jra_problem)
        assert not first.is_optimal
        assert first.score <= optimal.score + 1e-12
        assert first.stats["nodes_explored"] <= optimal.stats["nodes_explored"]

    def test_node_limit(self, tiny_jra_problem):
        limited = ConstraintProgrammingSolver(node_limit=5).solve(tiny_jra_problem)
        assert not limited.is_optimal
        assert len(limited.reviewer_ids) == tiny_jra_problem.group_size
