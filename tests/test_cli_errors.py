"""Error-path tests for the ``wgrap`` CLI and for solving loaded problems."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.assignment import Assignment
from repro.data.io import load_problem, save_assignment
from repro.exceptions import ConfigurationError, InfeasibleAssignmentError


@pytest.fixture
def problem_file(tmp_path):
    path = tmp_path / "problem.json"
    main(["generate", str(path), "--papers", "8", "--reviewers", "5",
          "--topics", "6", "--group-size", "2", "--seed", "1"])
    return path


class TestEvaluateErrorPaths:
    def test_evaluate_rejects_assignment_with_unknown_entities(self, problem_file, tmp_path):
        bad = tmp_path / "bad.json"
        save_assignment(Assignment([("ghost-reviewer", "paper-0000")]), bad)
        with pytest.raises(InfeasibleAssignmentError):
            main(["evaluate", str(problem_file), str(bad)])

    def test_evaluate_rejects_overloaded_assignment(self, problem_file, tmp_path):
        problem = load_problem(problem_file)
        reviewer_id = problem.reviewer_ids[0]
        overloaded = Assignment(
            (reviewer_id, paper_id) for paper_id in problem.paper_ids
        )
        path = tmp_path / "overloaded.json"
        save_assignment(overloaded, path)
        with pytest.raises(InfeasibleAssignmentError):
            main(["evaluate", str(problem_file), str(path)])


class TestCorruptFiles:
    def test_load_problem_with_wrong_version(self, tmp_path):
        path = tmp_path / "bad_problem.json"
        path.write_text(json.dumps({"format_version": 42}), encoding="utf-8")
        with pytest.raises(ConfigurationError):
            load_problem(path)

    def test_generate_rejects_impossible_configuration(self, tmp_path):
        # 10 papers x group size 5 with 2 reviewers can never be feasible,
        # whatever the workload: each paper needs 5 distinct reviewers.
        from repro.exceptions import InfeasibleProblemError

        with pytest.raises(InfeasibleProblemError):
            main([
                "generate", str(tmp_path / "p.json"),
                "--papers", "10", "--reviewers", "2", "--topics", "6",
                "--group-size", "5",
            ])

    def test_journal_with_unknown_paper(self, problem_file):
        with pytest.raises(KeyError):
            main(["journal", str(problem_file), "no-such-paper"])
