"""Format-version gates: every loader rejects unknown versions loudly.

A payload from a future release (or a corrupted one that is not even a
mapping) must fail with :class:`repro.exceptions.UnsupportedFormatError`
— a structured error carrying *what* was being parsed, the version
*found* and the version *expected* — never with a ``KeyError`` three
layers deeper.  The same contract covers the SQLite store's schema
version and journal checkpoints.
"""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.data.io import (
    assignment_from_dict,
    assignment_to_dict,
    engine_snapshot_from_dict,
    problem_from_dict,
    problem_to_dict,
)
from repro.data.synthetic import make_problem
from repro.exceptions import ConfigurationError, UnsupportedFormatError
from repro.service.engine import AssignmentEngine
from repro.store import SCHEMA_VERSION, SqliteProblemStore


def _problem():
    return make_problem(4, 6, num_topics=4, reviewer_workload=3, seed=0)


class TestLoaders:
    def test_problem_rejects_future_version(self):
        payload = problem_to_dict(_problem())
        payload["format_version"] = 99
        with pytest.raises(UnsupportedFormatError) as excinfo:
            problem_from_dict(payload)
        assert excinfo.value.what == "problem"
        assert excinfo.value.found == 99
        assert "99" in str(excinfo.value)

    def test_assignment_rejects_future_version(self):
        problem = _problem()
        engine = AssignmentEngine(problem)
        result = engine.solve("Greedy")
        payload = assignment_to_dict(result.assignment)
        payload["format_version"] = 99
        with pytest.raises(UnsupportedFormatError) as excinfo:
            assignment_from_dict(payload)
        assert excinfo.value.what == "assignment"

    def test_engine_snapshot_rejects_future_version(self):
        engine = AssignmentEngine(_problem())
        payload = engine.to_snapshot()
        payload["format_version"] = 99
        with pytest.raises(UnsupportedFormatError):
            engine_snapshot_from_dict(payload)

    @pytest.mark.parametrize("broken", [None, [], "problem", 7])
    def test_non_mapping_payloads_fail_structurally(self, broken):
        with pytest.raises(UnsupportedFormatError) as excinfo:
            problem_from_dict(broken)
        assert excinfo.value.found == type(broken).__name__

    def test_error_is_a_configuration_error(self):
        # callers that already catch ConfigurationError keep working
        assert issubclass(UnsupportedFormatError, ConfigurationError)


class TestStoreSchemaVersion:
    def test_open_rejects_future_schema(self, tmp_path):
        path = tmp_path / "future.db"
        SqliteProblemStore.create(path, _problem()).close()
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'schema_version'",
            (str(SCHEMA_VERSION + 1),),
        )
        conn.commit()
        conn.close()
        with pytest.raises(UnsupportedFormatError) as excinfo:
            SqliteProblemStore.open(path)
        assert excinfo.value.expected == SCHEMA_VERSION
        assert excinfo.value.found == str(SCHEMA_VERSION + 1)
