"""Documentation integrity tests (the docs CI step).

Three guarantees keep ``docs/`` honest as the code grows:

* the solver/scoring reference tables in ``docs/solvers.md`` name exactly
  the registered solvers and scoring functions (and every listed alias
  resolves to the same entry);
* every relative markdown link in ``docs/`` and ``README.md`` points at a
  file that exists, and every backticked ``repro.…`` dotted reference
  resolves to a real module or attribute;
* the README's examples list covers every script under ``examples/`` and
  the service page documents every request kind of the wire protocol.
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest

from repro.core.scoring import available_scoring_functions, get_scoring_function
from repro.service.registry import available_solvers, solver_spec
from repro.service.requests import _REQUEST_TYPES

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"
DOC_PAGES = (
    "architecture.md",
    "service.md",
    "solvers.md",
    "parallel.md",
    "performance.md",
    "observability.md",
    "durability.md",
    "storage.md",
)

_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
_BACKTICKED = re.compile(r"`([^`]+)`")
_DOTTED = re.compile(r"^repro(?:\.\w+)+$")


def _read(path: Path) -> str:
    assert path.is_file(), f"missing documentation file: {path}"
    return path.read_text(encoding="utf-8")


def _table_rows(markdown: str, heading: str) -> list[list[str]]:
    """The body rows of the first table under ``heading``."""
    lines = markdown.splitlines()
    try:
        start = next(i for i, line in enumerate(lines) if line.strip() == heading)
    except StopIteration:
        raise AssertionError(f"heading {heading!r} not found") from None
    rows: list[list[str]] = []
    in_table = False
    for line in lines[start + 1 :]:
        stripped = line.strip()
        if stripped.startswith("#"):
            break  # next section
        if stripped.startswith("|"):
            in_table = True
            cells = [cell.strip() for cell in stripped.strip("|").split("|")]
            if set(cells[0]) <= {"-", " ", ":"}:  # separator row
                continue
            rows.append(cells)
        elif in_table and stripped == "":
            break
    assert rows, f"no table found under {heading!r}"
    return rows[1:]  # drop the header row


def _names_in_cell(cell: str) -> list[str]:
    return _BACKTICKED.findall(cell)


def _first_name(row: list[str]) -> str:
    names = _names_in_cell(row[0])
    assert names, f"table row has no backticked name: {row}"
    return names[0]


class TestSolverReferenceTables:
    @pytest.fixture(scope="class")
    def solvers_page(self) -> str:
        return _read(DOCS_DIR / "solvers.md")

    def test_cra_table_matches_registry(self, solvers_page):
        rows = _table_rows(solvers_page, "## Conference (CRA) solvers")
        documented = {_first_name(row) for row in rows}
        assert documented == set(available_solvers("cra"))

    def test_jra_table_matches_registry(self, solvers_page):
        rows = _table_rows(solvers_page, "## Journal (JRA) solvers")
        documented = {_first_name(row) for row in rows}
        assert documented == set(available_solvers("jra"))

    def test_scoring_table_matches_registry(self, solvers_page):
        rows = _table_rows(solvers_page, "## Scoring functions")
        documented = {_first_name(row) for row in rows}
        assert documented == set(available_scoring_functions())

    @pytest.mark.parametrize(
        "heading,kind",
        [("## Conference (CRA) solvers", "cra"), ("## Journal (JRA) solvers", "jra")],
    )
    def test_documented_solver_aliases_resolve(self, solvers_page, heading, kind):
        for row in _table_rows(solvers_page, heading):
            canonical = _first_name(row)
            for alias in _names_in_cell(row[1]):
                assert solver_spec(kind, alias).name == canonical, (
                    f"alias {alias!r} does not resolve to {canonical!r}"
                )

    @pytest.mark.parametrize(
        "heading,kind",
        [("## Conference (CRA) solvers", "cra"), ("## Journal (JRA) solvers", "jra")],
    )
    def test_fast_path_column_matches_registry_tags(self, solvers_page, heading, kind):
        """The dense/delta support a row claims must equal the solver's
        registry tags — the conformance harness enforces the tags, this
        test keeps the human-readable table from drifting away from them."""
        for row in _table_rows(solvers_page, heading):
            canonical = _first_name(row)
            documented = set(_names_in_cell(row[2])) & {"dense", "delta"}
            registered = set(solver_spec(kind, canonical).tags) & {"dense", "delta"}
            assert documented == registered, (
                f"{canonical}: fast-path cell says {sorted(documented)!r} but the "
                f"registry tags say {sorted(registered)!r}"
            )

    def test_documented_scoring_aliases_resolve(self, solvers_page):
        for row in _table_rows(solvers_page, "## Scoring functions"):
            canonical = _first_name(row)
            for alias in _names_in_cell(row[1]):
                assert get_scoring_function(alias).name == canonical


class TestLinksAndReferences:
    def _pages(self) -> list[Path]:
        return [DOCS_DIR / page for page in DOC_PAGES] + [REPO_ROOT / "README.md"]

    def test_all_doc_pages_exist(self):
        for path in self._pages():
            assert path.is_file(), f"missing documentation file: {path}"

    def test_relative_links_resolve(self):
        for path in self._pages():
            for target in _LINK.findall(_read(path)):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                resolved = (path.parent / target.split("#", 1)[0]).resolve()
                assert resolved.exists(), f"{path.name}: broken link {target!r}"

    def test_dotted_repro_references_resolve(self):
        """Every backticked ``repro.…`` token must be importable.

        Pages referencing symbols that no longer exist fail here — the
        "stale docs" guard the docs CI step exists for.
        """
        failures: list[str] = []
        for path in self._pages():
            for token in _BACKTICKED.findall(_read(path)):
                candidate = token.split("(")[0].strip()
                if not _DOTTED.match(candidate):
                    continue
                if not self._resolves(candidate):
                    failures.append(f"{path.name}: `{candidate}`")
        assert not failures, "stale documentation references:\n" + "\n".join(failures)

    @staticmethod
    def _resolves(dotted: str) -> bool:
        parts = dotted.split(".")
        for split in range(len(parts), 0, -1):
            module_name = ".".join(parts[:split])
            try:
                obj = importlib.import_module(module_name)
            except ImportError:
                continue
            try:
                for attribute in parts[split:]:
                    obj = getattr(obj, attribute)
            except AttributeError:
                return False
            return True
        return False


class TestCoverageOfRepoArtifacts:
    def test_readme_lists_every_example_script(self):
        readme = _read(REPO_ROOT / "README.md")
        for script in sorted((REPO_ROOT / "examples").glob("*.py")):
            assert script.name in readme, (
                f"examples/{script.name} is not registered in the README examples list"
            )

    def test_service_page_documents_every_request_kind(self):
        rows = _table_rows(
            _read(DOCS_DIR / "service.md"),
            "Request kinds and their fields:",
        )
        documented = {_first_name(row) for row in rows}
        assert documented == set(_REQUEST_TYPES)

    def test_readme_names_every_request_kind(self):
        readme = _read(REPO_ROOT / "README.md")
        for kind in _REQUEST_TYPES:
            assert f"`{kind}`" in readme

    def test_service_page_error_type_table_matches_the_vocabulary(self):
        from repro.service.session import ERROR_TYPES

        rows = _table_rows(_read(DOCS_DIR / "service.md"), "### Error types")
        documented = {_first_name(row) for row in rows}
        assert documented == set(ERROR_TYPES)

    def test_service_page_management_table_matches_the_server(self):
        from repro.net.server import MANAGEMENT_KINDS

        rows = _table_rows(
            _read(DOCS_DIR / "service.md"), "### Tenant-management requests"
        )
        documented = {_first_name(row) for row in rows}
        assert documented == set(MANAGEMENT_KINDS)

    def test_service_page_replication_table_matches_the_protocol(self):
        """Verbatim (descriptions included), like the failpoint table —
        the replication frame semantics ARE the contract."""
        from repro.replication import REPLICATION_KINDS

        rows = _table_rows(
            _read(DOCS_DIR / "service.md"), "### Replication requests"
        )
        documented = {_first_name(row): row[1] for row in rows}
        assert documented == REPLICATION_KINDS


class TestObservabilityPage:
    """The span/metric tables mirror the contract of ``repro.obs.names``."""

    @pytest.fixture(scope="class")
    def obs_page(self) -> str:
        return _read(DOCS_DIR / "observability.md")

    def test_span_table_matches_the_contract(self, obs_page):
        from repro.obs.names import SPAN_NAMES

        rows = _table_rows(obs_page, "## Span names")
        documented = {_first_name(row) for row in rows}
        assert documented == set(SPAN_NAMES)

    def test_metric_table_matches_the_contract(self, obs_page):
        from repro.obs.names import METRIC_NAMES

        rows = _table_rows(obs_page, "## Metric names")
        documented = {_first_name(row) for row in rows}
        assert documented == set(METRIC_NAMES)


class TestDurabilityPage:
    """The durability tables mirror the code's closed vocabularies —
    failpoint sites and firing modes verbatim (descriptions included),
    fsync policies verbatim, journaled kinds by name."""

    @pytest.fixture(scope="class")
    def durability_page(self) -> str:
        return _read(DOCS_DIR / "durability.md")

    def test_failpoint_site_table_matches_the_registry(self, durability_page):
        from repro.fault import FAILPOINT_SITES

        rows = _table_rows(durability_page, "### Failpoint sites")
        documented = {_first_name(row): row[1] for row in rows}
        assert documented == FAILPOINT_SITES

    def test_firing_mode_table_matches_the_registry(self, durability_page):
        from repro.fault import FIRE_MODES

        rows = _table_rows(durability_page, "### Firing modes")
        documented = {_first_name(row): row[1] for row in rows}
        assert documented == FIRE_MODES

    def test_fsync_policy_table_matches_the_wal(self, durability_page):
        from repro.durability import FSYNC_POLICIES

        rows = _table_rows(durability_page, "### Fsync policies")
        documented = {_first_name(row): row[1] for row in rows}
        assert documented == FSYNC_POLICIES

    def test_journaled_kind_table_matches_the_wire_protocol(self, durability_page):
        from repro.service.requests import MUTATION_KINDS

        rows = _table_rows(durability_page, "### Journaled request kinds")
        documented = {_first_name(row) for row in rows}
        assert documented == set(MUTATION_KINDS)
