"""Unit tests for the synthetic data generators, venues, workloads and IO."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import JRAProblem, WGRAPProblem
from repro.data.io import (
    assignment_from_dict,
    assignment_to_dict,
    load_assignment,
    load_problem,
    problem_from_dict,
    problem_to_dict,
    save_assignment,
    save_problem,
)
from repro.data.synthetic import (
    SyntheticCorpusGenerator,
    SyntheticWorkloadGenerator,
    make_problem,
)
from repro.data.venues import DATASETS, dataset_names, dataset_spec
from repro.data.workloads import (
    CRA_PRESETS,
    make_jra_pool,
    make_jra_problem,
    scale_reviewers_by_h_index,
)
from repro.core.assignment import Assignment
from repro.cra.sdga import StageDeepeningGreedySolver
from repro.exceptions import ConfigurationError


class TestVenues:
    def test_table3_sizes(self):
        assert dataset_spec("DB08").num_papers == 617
        assert dataset_spec("DB08").num_reviewers == 105
        assert dataset_spec("dm09").num_papers == 648
        assert dataset_spec("TH08").num_reviewers == 228
        assert set(dataset_names()) == set(DATASETS)

    def test_unknown_dataset(self):
        with pytest.raises(ConfigurationError):
            dataset_spec("AI42")

    def test_scaling(self):
        scaled = dataset_spec("DB08").scaled(0.1)
        assert scaled.num_papers == pytest.approx(62, abs=1)
        assert scaled.num_reviewers == pytest.approx(10, abs=1)
        tiny = dataset_spec("DB08").scaled(0.001)
        assert tiny.num_papers >= 20 and tiny.num_reviewers >= 10
        with pytest.raises(ConfigurationError):
            dataset_spec("DB08").scaled(0.0)

    def test_area_metadata(self):
        spec = dataset_spec("TH09")
        assert spec.area.key == "TH"
        assert "STOC" in spec.area.submission_venues


class TestSyntheticWorkloadGenerator:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            SyntheticWorkloadGenerator(num_topics=2)
        with pytest.raises(ConfigurationError):
            SyntheticWorkloadGenerator(focus_concentration=0.0)
        generator = SyntheticWorkloadGenerator(num_topics=9)
        with pytest.raises(ConfigurationError):
            generator.generate_problem(num_papers=0, num_reviewers=5)

    def test_vectors_are_normalised_and_skewed(self):
        generator = SyntheticWorkloadGenerator(num_topics=12, seed=0)
        reviewers = generator.reviewer_vectors(40, area_index=1)
        papers = generator.paper_vectors(40, area_index=1)
        assert np.allclose(reviewers.sum(axis=1), 1.0)
        assert np.allclose(papers.sum(axis=1), 1.0)
        # Focused mixtures: the top topic should hold far more than 1/T mass.
        assert reviewers.max(axis=1).mean() > 2.0 / 12
        assert papers.max(axis=1).mean() > 2.0 / 12

    def test_area_blocks_differ(self):
        generator = SyntheticWorkloadGenerator(num_topics=12, seed=1)
        area0 = generator.paper_vectors(60, area_index=0, interdisciplinary_ratio=0.0)
        area2 = generator.paper_vectors(60, area_index=2, interdisciplinary_ratio=0.0)
        # Mass concentrates on different topic blocks per area.
        assert area0[:, :4].sum() > area0[:, 8:].sum()
        assert area2[:, 8:].sum() > area2[:, :4].sum()

    def test_generate_problem_defaults(self):
        problem = make_problem(num_papers=15, num_reviewers=9, num_topics=9, seed=2)
        assert isinstance(problem, WGRAPProblem)
        assert problem.num_papers == 15
        assert problem.num_reviewers == 9
        assert problem.reviewer_workload == 5  # ceil(15*3/9)
        assert all(reviewer.h_index is not None for reviewer in problem.reviewers)

    def test_generate_problem_is_reproducible(self):
        first = make_problem(num_papers=10, num_reviewers=6, num_topics=9, seed=7)
        second = make_problem(num_papers=10, num_reviewers=6, num_topics=9, seed=7)
        assert np.allclose(first.reviewer_matrix, second.reviewer_matrix)
        assert np.allclose(first.paper_matrix, second.paper_matrix)
        different = make_problem(num_papers=10, num_reviewers=6, num_topics=9, seed=8)
        assert not np.allclose(first.paper_matrix, different.paper_matrix)

    def test_conflict_generation(self):
        problem = make_problem(
            num_papers=10, num_reviewers=8, num_topics=9, conflict_ratio=0.1, seed=3
        )
        assert len(problem.conflicts) > 0
        for reviewer_id, paper_id in problem.conflicts:
            assert reviewer_id in problem.reviewer_ids
            assert paper_id in problem.paper_ids

    def test_generate_dataset_respects_scale_and_area(self):
        generator = SyntheticWorkloadGenerator(num_topics=12, seed=0)
        problem = generator.generate_dataset("DB08", scale=0.05, group_size=3)
        spec = dataset_spec("DB08").scaled(0.05)
        assert problem.num_papers == spec.num_papers
        assert problem.num_reviewers == spec.num_reviewers


class TestSyntheticCorpusGenerator:
    def test_ground_truth_shapes(self):
        generator = SyntheticCorpusGenerator(num_topics=3, words_per_topic=8,
                                             background_words=5, seed=0)
        corpus = generator.generate(num_authors=6, num_submissions=4,
                                    publications_per_author=(1, 2),
                                    tokens_per_document=(20, 30))
        assert corpus.true_author_mixtures.shape == (6, 3)
        assert corpus.true_submission_mixtures.shape == (4, 3)
        assert corpus.topic_word.shape[0] == 3
        assert len(corpus.submissions) == 4
        assert corpus.publications.num_documents >= 6
        assert np.allclose(corpus.topic_word.sum(axis=1), 1.0)

    def test_documents_carry_authors(self):
        generator = SyntheticCorpusGenerator(num_topics=3, seed=1)
        corpus = generator.generate(num_authors=5, num_submissions=2)
        for document in corpus.publications.documents:
            assert document.authors
            for author in document.authors:
                assert author in corpus.author_ids

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            SyntheticCorpusGenerator(num_topics=1)
        with pytest.raises(ConfigurationError):
            SyntheticCorpusGenerator(num_topics=3, words_per_topic=2)


class TestWorkloads:
    def test_make_jra_pool(self):
        pool = make_jra_pool(pool_size=30, num_topics=9, seed=0)
        assert len(pool) == 30
        assert len({reviewer.id for reviewer in pool}) == 30
        with pytest.raises(ConfigurationError):
            make_jra_pool(pool_size=2)

    def test_make_jra_problem(self):
        problem = make_jra_problem(num_candidates=12, group_size=3, num_topics=9, seed=0)
        assert isinstance(problem, JRAProblem)
        assert problem.num_reviewers == 12
        assert problem.group_size == 3

    def test_make_jra_problem_from_shared_pool(self):
        pool = make_jra_pool(pool_size=20, num_topics=9, seed=1)
        problem = make_jra_problem(num_candidates=10, group_size=2, pool=pool, seed=1)
        assert problem.num_reviewers == 10
        with pytest.raises(ConfigurationError):
            make_jra_problem(num_candidates=25, group_size=2, pool=pool)

    def test_h_index_scaling(self):
        problem = make_problem(num_papers=8, num_reviewers=6, num_topics=9, seed=5)
        scaled = scale_reviewers_by_h_index(problem)
        factors = []
        for original, rescaled in zip(problem.reviewers, scaled.reviewers):
            factor = rescaled.vector.total() / original.vector.total()
            factors.append(factor)
            assert 1.0 - 1e-9 <= factor <= 2.0 + 1e-9
        # The reviewer with the highest h-index is scaled by exactly 2.
        assert max(factors) == pytest.approx(2.0)
        assert min(factors) == pytest.approx(1.0)

    def test_cra_presets_are_well_formed(self):
        assert len(CRA_PRESETS) >= 6
        for preset in CRA_PRESETS:
            assert preset.dataset in DATASETS
            assert preset.group_size >= 3
            assert 0 < preset.scale <= 1.0


class TestIO:
    def test_problem_round_trip(self, tmp_path):
        problem = make_problem(
            num_papers=6, num_reviewers=5, num_topics=7, conflict_ratio=0.1, seed=9
        )
        path = save_problem(problem, tmp_path / "problem.json")
        loaded = load_problem(path)
        assert loaded.num_papers == problem.num_papers
        assert loaded.num_reviewers == problem.num_reviewers
        assert loaded.group_size == problem.group_size
        assert loaded.reviewer_workload == problem.reviewer_workload
        assert loaded.scoring.name == problem.scoring.name
        assert np.allclose(loaded.paper_matrix, problem.paper_matrix)
        assert np.allclose(loaded.reviewer_matrix, problem.reviewer_matrix)
        assert set(loaded.conflicts) == set(problem.conflicts)

    def test_problem_round_trip_preserves_scores(self, tmp_path):
        problem = make_problem(num_papers=6, num_reviewers=5, num_topics=7, seed=10)
        loaded = load_problem(save_problem(problem, tmp_path / "p.json"))
        result = StageDeepeningGreedySolver().solve(problem)
        assert loaded.assignment_score(result.assignment) == pytest.approx(result.score)

    def test_problem_format_version_check(self):
        with pytest.raises(ConfigurationError):
            problem_from_dict({"format_version": 99})

    def test_assignment_round_trip(self, tmp_path):
        assignment = Assignment([("r1", "p1"), ("r2", "p1"), ("r1", "p2")])
        path = save_assignment(assignment, tmp_path / "assignment.json")
        assert load_assignment(path) == assignment
        assert assignment_from_dict(assignment_to_dict(assignment)) == assignment

    def test_assignment_format_version_check(self):
        with pytest.raises(ConfigurationError):
            assignment_from_dict({"format_version": 0, "assignment": {}})

    def test_problem_to_dict_contents(self):
        problem = make_problem(num_papers=3, num_reviewers=3, num_topics=5, seed=11)
        payload = problem_to_dict(problem)
        assert payload["num_topics"] == 5
        assert len(payload["papers"]) == 3
        assert len(payload["reviewers"]) == 3
        assert all(len(entry["vector"]) == 5 for entry in payload["papers"])
