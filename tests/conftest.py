"""Shared fixtures for the WGRAP test suite."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.entities import Paper, Reviewer
from repro.core.problem import JRAProblem, WGRAPProblem
from repro.core.vectors import TopicVector
from repro.data.synthetic import SyntheticWorkloadGenerator


@pytest.fixture
def paper_example_vectors():
    """The running example of Figure 5(a) of the paper (3 topics)."""
    paper = Paper(id="p", vector=TopicVector([0.35, 0.45, 0.2]))
    reviewers = [
        Reviewer(id="r1", vector=TopicVector([0.15, 0.75, 0.1])),
        Reviewer(id="r2", vector=TopicVector([0.75, 0.15, 0.1])),
        Reviewer(id="r3", vector=TopicVector([0.1, 0.35, 0.55])),
    ]
    return paper, reviewers


@pytest.fixture
def sdga_counterexample_vectors():
    """The Section 4.2 example showing why stage workloads must be capped."""
    reviewers = [
        Reviewer(id="r1", vector=TopicVector([0.1, 0.5, 0.4])),
        Reviewer(id="r2", vector=TopicVector([1.0, 0.0, 0.0])),
        Reviewer(id="r3", vector=TopicVector([0.0, 1.0, 0.0])),
    ]
    papers = [
        Paper(id="p1", vector=TopicVector([0.6, 0.0, 0.4])),
        Paper(id="p2", vector=TopicVector([0.5, 0.5, 0.0])),
        Paper(id="p3", vector=TopicVector([0.5, 0.5, 0.0])),
    ]
    return papers, reviewers


@pytest.fixture
def small_problem():
    """A small but non-trivial synthetic WGRAP instance (fast to solve)."""
    generator = SyntheticWorkloadGenerator(num_topics=12, seed=3)
    return generator.generate_problem(num_papers=12, num_reviewers=8, group_size=3)


@pytest.fixture
def medium_problem():
    """A slightly larger instance with slack capacity and conflicts."""
    generator = SyntheticWorkloadGenerator(num_topics=15, seed=5)
    return generator.generate_problem(
        num_papers=25,
        num_reviewers=15,
        group_size=3,
        reviewer_workload=7,
        conflict_ratio=0.02,
    )


@pytest.fixture
def tiny_jra_problem():
    """A JRA instance small enough for exhaustive verification."""
    rng = np.random.default_rng(17)
    paper = Paper(id="target", vector=TopicVector(rng.dirichlet(np.full(6, 0.5))))
    reviewers = [
        Reviewer(id=f"r{i}", vector=TopicVector(rng.dirichlet(np.full(6, 0.5))))
        for i in range(9)
    ]
    return JRAProblem(paper=paper, reviewers=reviewers, group_size=3)


def exhaustive_optimal_assignment(problem: WGRAPProblem) -> tuple[Assignment, float]:
    """Exact WGRAP optimum by exhaustive search (tiny instances only).

    Enumerates every combination of reviewer groups per paper that satisfies
    the workload constraint.  Exponential — keep instances tiny.
    """
    reviewer_ids = problem.reviewer_ids
    groups = list(itertools.combinations(reviewer_ids, problem.group_size))

    best_assignment: Assignment | None = None
    best_score = -1.0

    def recurse(paper_index: int, assignment: Assignment, loads: dict[str, int]) -> None:
        nonlocal best_assignment, best_score
        if paper_index == problem.num_papers:
            score = problem.assignment_score(assignment)
            if score > best_score:
                best_score = score
                best_assignment = assignment.copy()
            return
        paper_id = problem.paper_ids[paper_index]
        for group in groups:
            if any(loads[r] + 1 > problem.reviewer_workload for r in group):
                continue
            if any(not problem.is_feasible_pair(r, paper_id) for r in group):
                continue
            for reviewer_id in group:
                assignment.add(reviewer_id, paper_id)
                loads[reviewer_id] += 1
            recurse(paper_index + 1, assignment, loads)
            for reviewer_id in group:
                assignment.remove(reviewer_id, paper_id)
                loads[reviewer_id] -= 1

    recurse(0, Assignment(), {reviewer_id: 0 for reviewer_id in reviewer_ids})
    assert best_assignment is not None
    return best_assignment, best_score
