"""Tests for the ``wgrap serve`` / ``wgrap session`` front ends."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import build_parser, main
from repro.data.io import load_engine_snapshot
from repro.service.engine import AssignmentEngine
from repro.service.session import serve_stream


@pytest.fixture
def problem_file(tmp_path):
    path = tmp_path / "problem.json"
    exit_code = main(
        ["generate", str(path), "--papers", "10", "--reviewers", "6",
         "--topics", "8", "--group-size", "2", "--seed", "3"]
    )
    assert exit_code == 0
    return path


def _serve(problem_file, lines):
    """Run the JSON-lines loop over a scripted input; return decoded responses."""
    from repro.data.io import load_problem

    engine = AssignmentEngine(load_problem(problem_file))
    output = io.StringIO()
    serve_stream(engine, iter(lines), output)
    return engine, [json.loads(line) for line in output.getvalue().splitlines()]


class TestServeStream:
    def test_generate_solve_journal_evaluate_round_trip(self, problem_file):
        engine, responses = _serve(
            problem_file,
            [
                json.dumps({"kind": "solve", "solver": "SDGA", "id": 1}),
                json.dumps({"kind": "journal", "paper_id": "paper-0000", "id": 2}),
                json.dumps({"kind": "evaluate", "id": 3}),
                json.dumps({"kind": "shutdown", "id": 4}),
            ],
        )
        assert [r["ok"] for r in responses] == [True, True, True, True]
        assert [r["id"] for r in responses] == [1, 2, 3, 4]

        solve, journal, evaluate, shutdown = responses
        assert solve["payload"]["solver"] == "SDGA"
        assert solve["payload"]["score"] > 0
        group = journal["payload"]["groups"][0]
        assert group["rank"] == 1
        assert len(group["reviewer_ids"]) == engine.problem.group_size
        assert journal["payload"]["shortlist"]
        assert evaluate["payload"]["score"] == pytest.approx(
            solve["payload"]["score"], abs=1e-6
        )
        assert shutdown["payload"] == {"shutdown": True}

    def test_mutations_and_stats_over_the_wire(self, problem_file):
        late = {"id": "late", "vector": [0.2, 0.1, 0.1, 0.1, 0.1, 0.1, 0.2, 0.1]}
        engine, responses = _serve(
            problem_file,
            [
                json.dumps({"kind": "solve", "solver": "Greedy"}),
                json.dumps({"kind": "add_paper", "paper": late,
                            "reviewer_workload": 6}),
                json.dumps({"kind": "withdraw_reviewer",
                            "reviewer_id": "reviewer-0000"}),
                json.dumps({"kind": "stats"}),
            ],
        )
        assert all(r["ok"] for r in responses)
        add = responses[1]["payload"]
        assert add["affected_papers"] == ["late"]
        assert add["num_papers"] == 11
        withdraw = responses[2]["payload"]
        assert withdraw["num_reviewers"] == 5
        stats = responses[3]["payload"]
        assert stats["engine"]["revision"] == 2
        assert stats["engine"]["cache"]["full_builds"] <= 1
        assert engine.problem.num_papers == 11

    def test_delta_and_prune_stats_over_the_wire(self, problem_file):
        """The stats payload exposes the view-maintenance and prune counters."""
        late = {"id": "late", "vector": [0.2, 0.1, 0.1, 0.1, 0.1, 0.1, 0.2, 0.1]}
        engine, responses = _serve(
            problem_file,
            [
                json.dumps({"kind": "solve", "solver": "Greedy"}),
                json.dumps({"kind": "add_paper", "paper": late,
                            "reviewer_workload": 6}),
                json.dumps({"kind": "solve", "solver": "Greedy"}),
                json.dumps({"kind": "journal", "paper_id": "paper-0003",
                            "prune": 4}),
                json.dumps({"kind": "stats"}),
            ],
        )
        assert all(r["ok"] for r in responses)
        delta = responses[-1]["payload"]["engine"]["delta"]
        assert set(delta) == {
            "recompiles", "delta_applies", "conflict_patches",
            "prune_certified", "prune_fallbacks",
        }
        # the warmed solve -> add_paper -> solve path is delta-maintained:
        # one compile for the chain, one delta apply for the late paper
        assert delta["recompiles"] == 1
        assert delta["delta_applies"] == 1
        # the pruned journal query resolved one way or the other, and the
        # pruned greedy columns were certified along the way
        assert delta["prune_certified"] + delta["prune_fallbacks"] > 0
        assert delta == engine.stats()["delta"]

    def test_shutdown_stops_the_loop(self, problem_file):
        _, responses = _serve(
            problem_file,
            [
                json.dumps({"kind": "shutdown"}),
                json.dumps({"kind": "solve", "solver": "SDGA"}),
            ],
        )
        assert len(responses) == 1

    def test_malformed_lines_do_not_kill_the_server(self, problem_file):
        _, responses = _serve(
            problem_file,
            [
                "this is not json",
                json.dumps(["a", "list"]),
                json.dumps({"kind": "teleport"}),
                json.dumps({"kind": "journal"}),  # neither paper_id nor paper
                json.dumps({"kind": "journal", "paper_id": "paper-0001"}),
            ],
        )
        assert [r["ok"] for r in responses] == [False, False, False, False, True]
        assert "invalid JSON" in responses[0]["error"]
        assert "JSON object" in responses[1]["error"]
        assert "unknown request kind" in responses[2]["error"]
        assert "paper_id" in responses[3]["error"]

    def test_domain_errors_become_error_responses(self, problem_file):
        _, responses = _serve(
            problem_file,
            [
                json.dumps({"kind": "evaluate", "id": "e1"}),  # no assignment yet
                json.dumps({"kind": "withdraw_reviewer", "reviewer_id": "ghost"}),
                json.dumps({"kind": "solve", "solver": "MAGIC"}),
            ],
        )
        assert [r["ok"] for r in responses] == [False, False, False]
        assert responses[0]["id"] == "e1"
        assert "no assignment" in responses[0]["error"]
        assert "ghost" in responses[1]["error"]
        assert "unknown" in responses[2]["error"].lower()


class TestStructuredErrors:
    """PR-5 satellite: ``wgrap serve`` classifies every failure with a
    stable ``error_type`` code instead of leaking tracebacks."""

    def test_unknown_solver_name_is_classified(self, problem_file):
        _, responses = _serve(
            problem_file,
            [
                json.dumps({"kind": "solve", "solver": "MAGIC"}),
                json.dumps({"kind": "journal", "paper_id": "paper-0000",
                            "solver": "MAGIC"}),
                json.dumps({"kind": "portfolio", "solvers": ["MAGIC"]}),
            ],
        )
        assert [r["ok"] for r in responses] == [False, False, False]
        assert {r["error_type"] for r in responses} == {"unknown_solver"}

    def test_malformed_requests_are_classified(self, problem_file):
        _, responses = _serve(
            problem_file,
            [
                "this is not json",
                json.dumps({"kind": "teleport"}),
                json.dumps({"kind": "journal"}),  # neither paper_id nor paper
            ],
        )
        assert [r["error_type"] for r in responses] == ["request"] * 3

    def test_infeasible_instances_are_classified(self, problem_file):
        # Adding a paper with a workload too low for the existing loads.
        late = {"id": "late", "vector": [0.2, 0.1, 0.1, 0.1, 0.1, 0.1, 0.2, 0.1]}
        _, responses = _serve(
            problem_file,
            [
                json.dumps({"kind": "solve", "solver": "Greedy"}),
                json.dumps({"kind": "add_paper", "paper": late,
                            "reviewer_workload": 1}),
            ],
        )
        assert responses[0]["ok"]
        assert not responses[1]["ok"]
        assert responses[1]["error_type"] == "infeasible"

    def test_unknown_ids_are_classified(self, problem_file):
        _, responses = _serve(
            problem_file,
            [
                json.dumps({"kind": "withdraw_reviewer", "reviewer_id": "ghost"}),
                json.dumps({"kind": "journal", "paper_id": "ghost-paper"}),
            ],
        )
        assert [r["error_type"] for r in responses] == ["unknown_id"] * 2

    def test_unexpected_exceptions_do_not_kill_the_loop(self, problem_file, monkeypatch):
        """A solver blowing up with a non-domain exception must yield a
        structured ``internal`` error (class + message, no traceback) and
        leave the loop serving subsequent requests."""
        from repro.cra.sdga import StageDeepeningGreedySolver

        def explode(self, problem):
            raise ZeroDivisionError("synthetic failure")

        monkeypatch.setattr(StageDeepeningGreedySolver, "_solve", explode)
        _, responses = _serve(
            problem_file,
            [
                json.dumps({"kind": "solve", "solver": "SDGA", "id": 1}),
                json.dumps({"kind": "solve", "solver": "Greedy", "id": 2}),
            ],
        )
        assert not responses[0]["ok"]
        assert responses[0]["error_type"] == "internal"
        assert "ZeroDivisionError" in responses[0]["error"]
        assert "Traceback" not in responses[0]["error"]
        assert responses[1]["ok"]

    def test_successful_responses_carry_no_error_fields(self, problem_file):
        _, responses = _serve(
            problem_file, [json.dumps({"kind": "stats"})]
        )
        assert responses[0]["ok"]
        assert "error" not in responses[0]
        assert "error_type" not in responses[0]


class TestServeCommand:
    def test_serve_reads_stdin_writes_stdout(self, problem_file, monkeypatch, capsys):
        script = "\n".join(
            [
                json.dumps({"kind": "solve", "solver": "SDGA"}),
                json.dumps({"kind": "shutdown"}),
            ]
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(script + "\n"))
        exit_code = main(["serve", "--problem", str(problem_file), "--warm"])
        assert exit_code == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert [r["kind"] for r in lines] == ["solve", "shutdown"]
        assert all(r["ok"] for r in lines)

    def test_serve_resumes_from_snapshot(self, problem_file, tmp_path, monkeypatch, capsys):
        snapshot = tmp_path / "engine.json"
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(
                json.dumps({"kind": "solve", "solver": "SDGA"}) + "\n"
                + json.dumps({"kind": "snapshot", "path": str(snapshot)}) + "\n"
            ),
        )
        assert main(["serve", "--problem", str(problem_file)]) == 0
        capsys.readouterr()
        assert load_engine_snapshot(snapshot).assignment is not None

        monkeypatch.setattr(
            "sys.stdin", io.StringIO(json.dumps({"kind": "evaluate"}) + "\n")
        )
        assert main(["serve", "--snapshot", str(snapshot)]) == 0
        (response,) = [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]
        assert response["ok"]
        assert response["payload"]["score"] > 0

    def test_stdio_serve_requires_a_source(self, capsys):
        # --problem/--snapshot became optional for --tcp (a TCP server may
        # start empty and be populated via create_tenant); plain stdio
        # serving still demands a source, as a runtime error.
        assert main(["serve"]) == 2
        assert "--problem, --snapshot or --store" in capsys.readouterr().err

    def test_sources_stay_mutually_exclusive(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["serve", "--problem", "a.json", "--snapshot", "b.json"])


class TestSessionCommand:
    def test_replays_a_script_and_saves_a_snapshot(self, problem_file, tmp_path, capsys):
        script = tmp_path / "requests.jsonl"
        script.write_text(
            "\n".join(
                [
                    json.dumps({"kind": "solve", "solver": "SDGA"}),
                    json.dumps({"kind": "journal", "paper_id": "paper-0000"}),
                    json.dumps({"kind": "journal", "paper_id": "paper-0001"}),
                    json.dumps({"kind": "evaluate"}),
                ]
            )
            + "\n"
        )
        responses_path = tmp_path / "responses.jsonl"
        snapshot_path = tmp_path / "engine.json"
        exit_code = main(
            ["session", str(problem_file), str(script),
             "--output", str(responses_path), "--save-snapshot", str(snapshot_path)]
        )
        assert exit_code == 0
        responses = [
            json.loads(line) for line in responses_path.read_text().splitlines()
        ]
        assert len(responses) == 4
        assert all(r["ok"] for r in responses)
        assert load_engine_snapshot(snapshot_path).assignment is not None
        summary = capsys.readouterr().out
        assert "4 responses" in summary
        assert "snapshot" in summary

    def test_malformed_script_lines_become_error_responses(
        self, problem_file, tmp_path, capsys
    ):
        script = tmp_path / "requests.jsonl"
        script.write_text(
            "\n".join(
                [
                    json.dumps({"kind": "solve", "solver": "SDGA"}),
                    "this is not json",
                    json.dumps({"kind": "journal"}),  # missing paper_id
                    json.dumps({"kind": "journal", "paper_id": "paper-0000"}),
                ]
            )
            + "\n"
        )
        assert main(["session", str(problem_file), str(script)]) == 0
        responses = [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]
        assert [r["ok"] for r in responses] == [True, False, False, True]
        assert "invalid JSON" in responses[1]["error"]
        assert "paper_id" in responses[2]["error"]

    def test_prints_to_stdout_without_output_flag(self, problem_file, tmp_path, capsys):
        script = tmp_path / "requests.jsonl"
        script.write_text(json.dumps({"kind": "stats"}) + "\n")
        assert main(["session", str(problem_file), str(script)]) == 0
        (line,) = capsys.readouterr().out.splitlines()
        assert json.loads(line)["ok"]


class TestObservabilityOverTheWire:
    @pytest.fixture(autouse=True)
    def _quiet_tracer(self):
        """Leave the shared tracer exactly as the tests found it."""
        from repro.obs.trace import get_tracer

        tracer = get_tracer()
        was_enabled = tracer.enabled
        yield
        tracer.enabled = was_enabled
        tracer.clear()

    def test_metrics_request_reports_latency_histograms_per_kind(self, problem_file):
        _, responses = _serve(
            problem_file,
            [
                json.dumps({"kind": "solve", "solver": "Greedy"}),
                json.dumps({"kind": "journal", "paper_id": "paper-0001"}),
                json.dumps({"kind": "journal", "paper_id": "paper-0002"}),
                json.dumps({"kind": "metrics", "id": 9}),
            ],
        )
        assert all(r["ok"] for r in responses)
        metrics = responses[-1]["payload"]["metrics"]
        solve = metrics["service.request.solve.seconds"]
        journal = metrics["service.request.journal.seconds"]
        assert solve["count"] == 1
        assert journal["count"] == 2
        for histogram in (solve, journal):
            assert {"p50", "p95", "p99", "buckets"} <= set(histogram)
            assert histogram["p50"] <= histogram["p99"]
        assert metrics["service.requests"] == 4
        assert metrics["engine.solves"] == 1
        assert metrics["solver.Greedy.seconds"]["count"] >= 1

    def test_metrics_request_prometheus_format(self, problem_file):
        _, responses = _serve(
            problem_file,
            [
                json.dumps({"kind": "solve", "solver": "Greedy"}),
                json.dumps({"kind": "metrics", "format": "prometheus"}),
            ],
        )
        exposition = responses[-1]["payload"]["exposition"]
        assert "# TYPE service_request_solve_seconds histogram" in exposition
        assert 'service_request_solve_seconds_bucket{le="+Inf"} 1' in exposition
        assert "service_requests 2" in exposition

    def test_metrics_request_rejects_unknown_formats(self, problem_file):
        _, responses = _serve(
            problem_file, [json.dumps({"kind": "metrics", "format": "xml"})]
        )
        assert not responses[0]["ok"]
        assert responses[0]["error_type"] == "request"

    def test_trace_round_trip_over_the_wire(self, problem_file):
        _, responses = _serve(
            problem_file,
            [
                json.dumps({"kind": "trace", "enable": True, "id": 1}),
                json.dumps({"kind": "solve", "solver": "SDGA", "id": 2}),
                json.dumps({"kind": "trace", "id": 3}),
            ],
        )
        assert all(r["ok"] for r in responses)
        assert responses[0]["payload"] == {"enabled": True}
        # The enable request itself ran untraced; the solve carries an id.
        solve_trace = responses[1]["trace"]
        assert solve_trace
        # With no explicit id the last finished trace is returned — the
        # solve's, since the trace request itself had not finished yet.
        payload = responses[2]["payload"]
        assert payload["trace_id"] == solve_trace
        root = payload["root"]
        assert root["name"] == "request.solve"
        nested = [child["name"] for child in root["children"]]
        assert "engine.solve" in nested
        assert "request.solve" in payload["rendered"]

    def test_trace_fetch_by_id(self, problem_file):
        _, responses = _serve(
            problem_file,
            [
                json.dumps({"kind": "trace", "enable": True}),
                json.dumps({"kind": "journal", "paper_id": "paper-0000"}),
                json.dumps({"kind": "solve", "solver": "Greedy"}),
            ],
        )
        journal_trace = responses[1]["trace"]
        _, fetched = _serve(
            problem_file, [json.dumps({"kind": "trace", "trace_id": journal_trace})]
        )
        assert fetched[0]["ok"]
        assert fetched[0]["payload"]["root"]["name"] == "request.journal"

    def test_trace_without_recording_is_a_structured_error(self, problem_file):
        _, responses = _serve(problem_file, [json.dumps({"kind": "trace"})])
        assert not responses[0]["ok"]
        assert responses[0]["error_type"] == "configuration"
        assert "no trace recorded" in responses[0]["error"]

    def test_every_response_carries_seconds_and_failures_are_counted(
        self, problem_file
    ):
        _, responses = _serve(
            problem_file,
            [
                json.dumps({"kind": "solve", "solver": "Greedy"}),
                json.dumps({"kind": "withdraw_reviewer", "reviewer_id": "missing"}),
                json.dumps({"kind": "stats"}),
            ],
        )
        assert all("seconds" in r and r["seconds"] >= 0.0 for r in responses)
        session_stats = responses[-1]["payload"]["session"]
        assert session_stats["pending"] == 0
        assert session_stats["failed"] == 1
        assert session_stats["error_types"] == {"unknown_id": 1}
        metrics = responses[-1]["payload"]["engine"]["metrics"]
        assert metrics["service.failures"] == 1
        assert metrics["service.errors.unknown_id"] == 1

    def test_slow_request_diagnostics_stream(self, problem_file):
        from repro.data.io import load_problem

        engine = AssignmentEngine(load_problem(problem_file))
        output, diagnostics = io.StringIO(), io.StringIO()
        serve_stream(
            engine,
            iter(
                [
                    json.dumps({"kind": "trace", "enable": True}),
                    json.dumps({"kind": "solve", "solver": "Greedy", "id": 7}),
                ]
            ),
            output,
            slow_threshold=0.0,
            diagnostics=diagnostics,
        )
        events = [json.loads(line) for line in diagnostics.getvalue().splitlines()]
        # Both requests cleared the 0-second threshold; the solve (traced)
        # carries its span tree, and the wire output stayed one line per
        # request.
        assert [event["event"] for event in events] == ["slow_request"] * 2
        solve_event = events[-1]
        assert solve_event["kind"] == "solve"
        assert solve_event["id"] == 7
        assert solve_event["seconds"] >= 0.0
        assert solve_event["spans"]["name"] == "request.solve"
        assert len(output.getvalue().splitlines()) == 2

    def test_serve_command_accepts_trace_and_slow_ms_flags(
        self, problem_file, monkeypatch, capsys
    ):
        script = "\n".join(
            [
                json.dumps({"kind": "solve", "solver": "Greedy"}),
                json.dumps({"kind": "shutdown"}),
            ]
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(script + "\n"))
        exit_code = main(
            ["serve", "--problem", str(problem_file), "--trace", "--slow-ms", "0"]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        lines = [json.loads(line) for line in captured.out.splitlines()]
        assert all(r["ok"] for r in lines)
        assert all("trace" in r for r in lines)
        events = [json.loads(line) for line in captured.err.splitlines()]
        assert events and all(e["event"] == "slow_request" for e in events)

    def test_solve_command_trace_flag_prints_the_span_tree(
        self, problem_file, tmp_path, capsys
    ):
        output = tmp_path / "assignment.json"
        exit_code = main(
            ["solve", str(problem_file), str(output), "--method", "SDGA", "--trace"]
        )
        assert exit_code == 0
        printed = capsys.readouterr().out
        assert "trace t" in printed
        assert "solver.SDGA" in printed
        assert "sdga.stage" in printed


class ServeProcess:
    """A ``wgrap serve --tcp`` subprocess with hard-timeout plumbing.

    Every interaction is bounded (ISSUE-7 satellite): startup waits for
    the ``listening`` line on a watchdog thread, sockets carry recv
    timeouts, and teardown escalates terminate -> kill, so a hung server
    fails the test in seconds instead of stalling the CI job.
    """

    STARTUP_TIMEOUT = 30.0
    IO_TIMEOUT = 30.0

    def __init__(self, *extra_args: str):
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        # --port 0: the OS picks a free ephemeral port, announced on the
        # listening line — two servers can never collide on a port.
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--tcp", "--port", "0",
             *extra_args],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        self.info = json.loads(self._readline_with_timeout())
        assert self.info["event"] == "listening"
        self.host, self.port = self.info["host"], self.info["port"]

    def _readline_with_timeout(self) -> str:
        """Read one stdout line on a watchdog thread; kill on timeout."""
        import threading

        box: list[str] = []
        reader = threading.Thread(
            target=lambda: box.append(self.proc.stdout.readline()), daemon=True
        )
        reader.start()
        reader.join(timeout=self.STARTUP_TIMEOUT)
        if reader.is_alive() or not box or not box[0]:
            self.kill()
            raise TimeoutError(
                "server subprocess produced no listening line "
                f"within {self.STARTUP_TIMEOUT}s"
            )
        return box[0]

    def connect(self):
        import socket

        sock = socket.create_connection((self.host, self.port), timeout=self.IO_TIMEOUT)
        sock.settimeout(self.IO_TIMEOUT)
        return sock

    def call(self, *payloads: dict) -> list[dict]:
        """Send requests on one connection; returns one response each."""
        sock = self.connect()
        try:
            stream = sock.makefile("rw")
            for payload in payloads:
                stream.write(json.dumps(payload) + "\n")
            stream.flush()
            return [json.loads(stream.readline()) for _ in payloads]
        finally:
            sock.close()

    def wait(self) -> int:
        try:
            return self.proc.wait(timeout=self.IO_TIMEOUT)
        except Exception:
            self.kill()
            raise

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=5)
            except Exception:
                self.proc.kill()
                self.proc.wait(timeout=5)


@pytest.fixture
def serve_tcp(problem_file):
    proc = ServeProcess("--problem", str(problem_file), "--tenant", "conf")
    yield proc
    proc.kill()


class TestServeTcpSubprocess:
    def test_listening_line_names_the_tenant_and_port(self, serve_tcp):
        assert serve_tcp.info["tenants"] == ["conf"]
        assert serve_tcp.port > 0

    def test_solve_and_journal_over_tcp(self, serve_tcp):
        solve, journal = serve_tcp.call(
            {"kind": "solve", "solver": "Greedy", "id": 1},
            {"kind": "journal", "paper_id": "paper-0000", "id": 2},
        )
        assert solve["ok"] and solve["id"] == 1
        assert solve["tenant"] == "conf" and solve["seq"] == 1
        assert journal["ok"] and journal["payload"]["groups"][0]["rank"] == 1

    def test_malformed_lines_get_structured_errors_over_tcp(self, serve_tcp):
        bad, good = serve_tcp.call({"kind": "teleport"}, {"kind": "stats"})
        assert bad["ok"] is False and bad["error_type"] == "request"
        assert "Traceback" not in bad["error"]
        assert good["ok"] is True

    def test_shutdown_request_exits_the_process_cleanly(self, serve_tcp):
        (goodbye,) = serve_tcp.call({"kind": "shutdown"})
        assert goodbye["ok"] is True
        assert goodbye["payload"]["shutdown"] is True
        assert serve_tcp.wait() == 0

    def test_two_servers_bind_distinct_ports(self, problem_file):
        first = ServeProcess("--problem", str(problem_file))
        second = ServeProcess("--problem", str(problem_file))
        try:
            assert first.port != second.port
            for proc in (first, second):
                (response,) = proc.call({"kind": "stats"})
                assert response["ok"] is True
        finally:
            first.kill()
            second.kill()

    def test_empty_server_is_populated_via_create_tenant(self, problem_file):
        proc = ServeProcess("--max-pending", "64")
        try:
            assert proc.info["tenants"] == []
            problem_payload = json.loads(problem_file.read_text())
            # sequential round-trips: a pipelined solve could legitimately
            # arrive before the create_tenant task has registered the tenant
            (created,) = proc.call(
                {"kind": "create_tenant", "tenant": "late", "problem": problem_payload}
            )
            assert created["ok"], created
            (solved,) = proc.call({"kind": "solve", "solver": "Greedy", "tenant": "late"})
            assert solved["ok"] and solved["tenant"] == "late"
            (goodbye,) = proc.call({"kind": "shutdown"})
            assert goodbye["ok"]
            assert proc.wait() == 0
        finally:
            proc.kill()


class TestServeSignals:
    """ISSUE-8 satellite: SIGTERM/SIGINT drain the server instead of
    killing it — the in-flight request finishes, the process exits 0."""

    def _spawn_stdio(self, problem_file):
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--problem", str(problem_file)],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )

    @pytest.mark.parametrize("signame", ["SIGTERM", "SIGINT"])
    def test_signal_drains_the_stdio_loop(self, problem_file, signame):
        import signal

        proc = self._spawn_stdio(problem_file)
        try:
            # One served round trip proves the loop is live, and leaves
            # the process blocked on the stdin read — the idle case,
            # where the handler must interrupt the read directly.
            proc.stdin.write(json.dumps({"kind": "solve", "solver": "Greedy"}) + "\n")
            proc.stdin.flush()
            response = json.loads(proc.stdout.readline())
            assert response["ok"], response
            proc.send_signal(getattr(signal, signame))
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=5)

    def test_sigterm_drains_the_tcp_server(self, serve_tcp):
        import signal

        (response,) = serve_tcp.call({"kind": "solve", "solver": "Greedy"})
        assert response["ok"], response
        serve_tcp.proc.send_signal(signal.SIGTERM)
        assert serve_tcp.wait() == 0


class TestServeDurability:
    """ISSUE-8: ``--wal-dir`` crash recovery through the real CLI —
    subprocess SIGKILL, restart over the same root, recovered state."""

    LATE = {"id": "late", "vector": [0.2, 0.1, 0.1, 0.1, 0.1, 0.1, 0.2, 0.1]}

    def test_wal_dir_requires_tcp(self, problem_file, tmp_path, capsys):
        exit_code = main(
            ["serve", "--problem", str(problem_file),
             "--wal-dir", str(tmp_path / "wal")]
        )
        assert exit_code == 2
        assert "--wal-dir needs --tcp" in capsys.readouterr().err

    def test_sigkill_then_restart_recovers_the_tenant(self, problem_file, tmp_path):
        wal = str(tmp_path / "wal")
        first = ServeProcess(
            "--problem", str(problem_file), "--tenant", "conf",
            "--wal-dir", wal, "--checkpoint-every", "2", "--fsync", "always",
        )
        try:
            assert first.info["durable"] is True
            assert first.info["recovered"] == []
            solve, add = first.call(
                {"kind": "solve", "solver": "Greedy", "seq": 1},
                {"kind": "add_paper", "paper": self.LATE,
                 "reviewer_workload": 6, "seq": 2},
            )
            assert solve["ok"], solve
            assert add["ok"], add
            assert add["payload"]["num_papers"] == 11
        finally:
            first.proc.kill()  # SIGKILL: a crash, not a drain
            first.proc.wait(timeout=5)

        # A fresh process over the same WAL root — no --problem — finds
        # and replays the journal before it starts listening.
        second = ServeProcess("--wal-dir", wal)
        try:
            assert second.info["recovered"] == ["conf"]
            assert second.info["tenants"] == ["conf"]
            (stats,) = second.call({"kind": "stats", "tenant": "conf"})
            assert stats["ok"], stats
            assert stats["payload"]["engine"]["revision"] == 1  # the add_paper
            # The idempotency map survived the kill: the same key is
            # answered without a second application.
            (repeat,) = second.call(
                {"kind": "add_paper", "paper": self.LATE,
                 "reviewer_workload": 6, "seq": 2, "tenant": "conf"}
            )
            assert repeat["ok"], repeat
            assert repeat["payload"]["num_papers"] == 11
            (goodbye,) = second.call({"kind": "shutdown"})
            assert goodbye["ok"]
            assert second.wait() == 0
        finally:
            second.kill()

    def test_sigterm_checkpoint_makes_recovery_replay_free(
        self, problem_file, tmp_path
    ):
        import signal

        wal = str(tmp_path / "wal")
        first = ServeProcess(
            "--problem", str(problem_file), "--tenant", "conf", "--wal-dir", wal,
        )
        try:
            (add,) = first.call(
                {"kind": "add_paper", "paper": self.LATE,
                 "reviewer_workload": 6, "seq": 1}
            )
            assert add["ok"], add
            first.proc.send_signal(signal.SIGTERM)  # drain: final checkpoint
            assert first.wait() == 0
        finally:
            first.kill()

        second = ServeProcess("--wal-dir", wal)
        try:
            assert second.info["recovered"] == ["conf"]
            (stats,) = second.call({"kind": "stats", "tenant": "conf"})
            assert stats["payload"]["engine"]["revision"] == 1
        finally:
            second.kill()


class TestRegistryBackedFlags:
    def test_solve_rejects_unregistered_method(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["solve", "p.json", "a.json", "--method", "MAGIC"])

    def test_journal_solver_choices_come_from_registry(self, problem_file, capsys):
        exit_code = main(
            ["journal", str(problem_file), "paper-0002", "--solver", "BFS"]
        )
        assert exit_code == 0
        assert "best group" in capsys.readouterr().out
