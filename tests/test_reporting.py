"""Unit tests for the experiment reporting helpers."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.reporting import (
    ExperimentTable,
    format_ratio,
    format_seconds,
    merge_tables,
)


class TestFormatting:
    def test_format_seconds_ranges(self):
        assert format_seconds(5e-4).endswith("us")
        assert format_seconds(0.02).endswith("ms")
        assert format_seconds(3.5) == "3.50s"
        assert format_seconds(300.0).endswith("min")

    def test_format_seconds_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            format_seconds(-1.0)

    def test_format_ratio(self):
        assert format_ratio(0.973) == "97.3%"
        assert format_ratio(1.0) == "100.0%"


class TestExperimentTable:
    def test_add_row_and_column_access(self):
        table = ExperimentTable(title="Demo", columns=["method", "score"])
        table.add_row("SDGA", 0.98)
        table.add_row("Greedy", 0.96)
        assert table.column("method") == ["SDGA", "Greedy"]
        assert table.column("score") == [0.98, 0.96]

    def test_add_row_validates_arity(self):
        table = ExperimentTable(title="Demo", columns=["a", "b"])
        with pytest.raises(ConfigurationError):
            table.add_row(1)

    def test_unknown_column(self):
        table = ExperimentTable(title="Demo", columns=["a"])
        with pytest.raises(ConfigurationError):
            table.column("z")

    def test_text_rendering_contains_everything(self):
        table = ExperimentTable(title="Figure X", columns=["method", "ratio"])
        table.add_row("SDGA-SRA", 0.995)
        text = table.to_text()
        assert "Figure X" in text
        assert "SDGA-SRA" in text
        assert "0.9950" in text
        assert str(table) == text

    def test_text_rendering_of_empty_table(self):
        table = ExperimentTable(title="Empty", columns=["only"])
        assert "Empty" in table.to_text()

    def test_csv_rendering_and_save(self, tmp_path):
        table = ExperimentTable(title="T", columns=["k", "time"])
        table.add_row(1, 0.5)
        table.add_row(10, 1.25)
        csv = table.to_csv()
        assert csv.splitlines()[0] == "k,time"
        assert "10,1.2500" in csv
        path = table.save_csv(tmp_path / "out.csv")
        assert path.read_text().startswith("k,time")

    def test_merge_tables(self):
        first = ExperimentTable(title="a", columns=["x"])
        first.add_row(1)
        second = ExperimentTable(title="b", columns=["x"])
        second.add_row(2)
        merged = merge_tables("both", [first, second])
        assert merged.column("x") == [1, 2]
        with pytest.raises(ConfigurationError):
            merge_tables("nothing", [])
        third = ExperimentTable(title="c", columns=["y"])
        with pytest.raises(ConfigurationError):
            merge_tables("mismatch", [first, third])
