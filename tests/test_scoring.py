"""Unit tests for the scoring functions (Definition 1, Appendix B)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scoring import (
    DotProduct,
    PaperCoverage,
    ReviewerCoverage,
    WeightedCoverage,
    available_scoring_functions,
    get_scoring_function,
    group_coverage,
    marginal_gain,
    weighted_coverage,
)
from repro.core.vectors import TopicVector
from repro.exceptions import DimensionMismatchError, UnknownScoringFunctionError


class TestWeightedCoverage:
    def test_figure5_running_example(self, paper_example_vectors):
        """The paper's Figure 5(c): c(r1, p) = 0.7, c(r2, p) = 0.6, c(r3, p) = 0.65."""
        paper, reviewers = paper_example_vectors
        scoring = WeightedCoverage()
        scores = [scoring.score(r.vector, paper.vector) for r in reviewers]
        assert scores[0] == pytest.approx(0.70)
        assert scores[1] == pytest.approx(0.60)
        assert scores[2] == pytest.approx(0.65)

    def test_perfect_reviewer_scores_one(self):
        paper = TopicVector([0.3, 0.7])
        assert weighted_coverage(paper, paper) == pytest.approx(1.0)

    def test_zero_paper_scores_zero(self):
        assert weighted_coverage(TopicVector([0.5, 0.5]), TopicVector.zeros(2)) == 0.0

    def test_normalisation_by_paper_mass(self):
        reviewer = TopicVector([0.2, 0.2])
        paper = TopicVector([0.4, 0.4])
        assert weighted_coverage(reviewer, paper) == pytest.approx(0.5)

    def test_group_coverage_uses_elementwise_maximum(self, paper_example_vectors):
        paper, reviewers = paper_example_vectors
        pair_best = max(
            weighted_coverage(r.vector, paper.vector) for r in reviewers[:2]
        )
        group = group_coverage([reviewers[0].vector, reviewers[1].vector], paper.vector)
        assert group >= pair_best
        # max vector of r1, r2 is (0.75, 0.75, 0.1) -> covered (0.35, 0.45, 0.1)
        assert group == pytest.approx(0.9)

    def test_group_coverage_empty_group(self):
        assert group_coverage([], TopicVector([0.5, 0.5])) == 0.0

    def test_group_coverage_accepts_prebuilt_vector(self, paper_example_vectors):
        paper, reviewers = paper_example_vectors
        prebuilt = TopicVector.group_maximum([r.vector for r in reviewers[:2]])
        assert group_coverage(prebuilt, paper.vector) == pytest.approx(0.9)

    def test_marginal_gain_of_empty_group_is_pair_score(self, paper_example_vectors):
        paper, reviewers = paper_example_vectors
        gain = marginal_gain(None, reviewers[0].vector, paper.vector)
        assert gain == pytest.approx(0.7)

    def test_marginal_gain_decreases_with_group(self, paper_example_vectors):
        paper, reviewers = paper_example_vectors
        base = marginal_gain(None, reviewers[2].vector, paper.vector)
        with_group = marginal_gain(
            reviewers[0].vector, reviewers[2].vector, paper.vector
        )
        assert with_group <= base

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(DimensionMismatchError):
            weighted_coverage(TopicVector([0.5]), TopicVector([0.5, 0.5]))


class TestAlternativeScoringFunctions:
    """The Table 6 toy example of Appendix B."""

    paper = TopicVector([0.6, 0.4])
    r1 = TopicVector([0.9, 0.1])
    r2 = TopicVector([0.5, 0.5])

    def test_reviewer_coverage(self):
        scoring = ReviewerCoverage()
        assert scoring.score(self.r1, self.paper) == pytest.approx(0.9)
        assert scoring.score(self.r2, self.paper) == pytest.approx(0.5)

    def test_paper_coverage(self):
        scoring = PaperCoverage()
        assert scoring.score(self.r1, self.paper) == pytest.approx(0.6)
        assert scoring.score(self.r2, self.paper) == pytest.approx(0.4)

    def test_dot_product(self):
        scoring = DotProduct()
        assert scoring.score(self.r1, self.paper) == pytest.approx(0.58)
        assert scoring.score(self.r2, self.paper) == pytest.approx(0.5)

    def test_weighted_coverage_prefers_r2(self):
        """Weighted coverage is the only function preferring r2 (Table 6)."""
        assert weighted_coverage(self.r1, self.paper) == pytest.approx(0.7)
        assert weighted_coverage(self.r2, self.paper) == pytest.approx(0.9)
        for name in ("cr", "cp", "cd"):
            scoring = get_scoring_function(name)
            assert scoring.score(self.r1, self.paper) >= scoring.score(self.r2, self.paper)


class TestVectorisedInterfaces:
    def test_score_matrix_matches_scalar_scores(self, paper_example_vectors):
        paper, reviewers = paper_example_vectors
        scoring = WeightedCoverage()
        reviewer_matrix = np.vstack([r.vector.values for r in reviewers])
        paper_matrix = paper.vector.values[None, :]
        matrix = scoring.score_matrix(reviewer_matrix, paper_matrix)
        assert matrix.shape == (3, 1)
        for index, reviewer in enumerate(reviewers):
            assert matrix[index, 0] == pytest.approx(
                scoring.score(reviewer.vector, paper.vector)
            )

    def test_score_matrix_zero_mass_paper(self):
        scoring = WeightedCoverage()
        matrix = scoring.score_matrix(np.array([[0.5, 0.5]]), np.array([[0.0, 0.0]]))
        assert matrix[0, 0] == 0.0

    def test_score_matrix_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            WeightedCoverage().score_matrix(np.ones((2, 3)), np.ones((2, 4)))

    def test_gain_vector_matches_scalar_gains(self, paper_example_vectors):
        paper, reviewers = paper_example_vectors
        scoring = WeightedCoverage()
        group_vector = reviewers[0].vector.values
        reviewer_matrix = np.vstack([r.vector.values for r in reviewers])
        gains = scoring.gain_vector(group_vector, reviewer_matrix, paper.vector.values)
        for index, reviewer in enumerate(reviewers):
            expected = scoring.marginal_gain(
                reviewers[0].vector, reviewer.vector, paper.vector
            )
            assert gains[index] == pytest.approx(expected)

    def test_gain_vector_zero_mass_paper(self):
        gains = WeightedCoverage().gain_vector(
            np.zeros(2), np.array([[0.5, 0.5]]), np.zeros(2)
        )
        assert gains[0] == 0.0

    @pytest.mark.parametrize("name", ["weighted_coverage", "reviewer_coverage",
                                      "paper_coverage", "dot_product"])
    def test_all_functions_vectorise_consistently(self, name):
        rng = np.random.default_rng(0)
        scoring = get_scoring_function(name)
        reviewer_matrix = rng.random((5, 4))
        paper_matrix = rng.random((3, 4))
        matrix = scoring.score_matrix(reviewer_matrix, paper_matrix)
        for r in range(5):
            for p in range(3):
                expected = scoring.score(
                    TopicVector(reviewer_matrix[r]), TopicVector(paper_matrix[p])
                )
                assert matrix[r, p] == pytest.approx(expected)


class TestRegistry:
    def test_default_is_weighted_coverage(self):
        assert isinstance(get_scoring_function(None), WeightedCoverage)

    def test_lookup_by_alias(self):
        assert isinstance(get_scoring_function("c"), WeightedCoverage)
        assert isinstance(get_scoring_function("CR"), ReviewerCoverage)
        assert isinstance(get_scoring_function("dot"), DotProduct)

    def test_instance_passthrough(self):
        scoring = PaperCoverage()
        assert get_scoring_function(scoring) is scoring

    def test_unknown_name(self):
        with pytest.raises(UnknownScoringFunctionError):
            get_scoring_function("cosine")

    def test_available_names(self):
        names = available_scoring_functions()
        assert set(names) == {
            "weighted_coverage",
            "reviewer_coverage",
            "paper_coverage",
            "dot_product",
        }

    def test_equality_and_hash(self):
        assert WeightedCoverage() == WeightedCoverage()
        assert WeightedCoverage() != DotProduct()
        assert hash(WeightedCoverage()) == hash(WeightedCoverage())
