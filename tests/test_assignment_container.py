"""Unit tests for the :class:`repro.core.assignment.Assignment` container."""

from __future__ import annotations

import pytest

from repro.core.assignment import Assignment
from repro.exceptions import ConfigurationError


class TestMutation:
    def test_add_and_contains(self):
        assignment = Assignment()
        assert assignment.add("r1", "p1") is True
        assert assignment.add("r1", "p1") is False  # duplicate
        assert assignment.contains("r1", "p1")
        assert ("r1", "p1") in assignment
        assert len(assignment) == 1

    def test_add_rejects_empty_ids(self):
        with pytest.raises(ConfigurationError):
            Assignment().add("", "p1")

    def test_remove(self):
        assignment = Assignment([("r1", "p1")])
        assignment.remove("r1", "p1")
        assert len(assignment) == 0
        with pytest.raises(KeyError):
            assignment.remove("r1", "p1")

    def test_discard(self):
        assignment = Assignment([("r1", "p1")])
        assert assignment.discard("r1", "p1") is True
        assert assignment.discard("r1", "p1") is False

    def test_clear_paper(self):
        assignment = Assignment([("r1", "p1"), ("r2", "p1"), ("r1", "p2")])
        removed = assignment.clear_paper("p1")
        assert removed == {"r1", "r2"}
        assert assignment.group_size("p1") == 0
        assert assignment.load("r1") == 1

    def test_update(self):
        first = Assignment([("r1", "p1")])
        second = Assignment([("r2", "p2")])
        first.update(second)
        assert len(first) == 2


class TestQueries:
    def test_two_way_indexing(self):
        assignment = Assignment([("r1", "p1"), ("r2", "p1"), ("r1", "p2")])
        assert assignment.reviewers_of("p1") == frozenset({"r1", "r2"})
        assert assignment.papers_of("r1") == frozenset({"p1", "p2"})
        assert assignment.group_size("p1") == 2
        assert assignment.load("r1") == 2
        assert assignment.load("unknown") == 0
        assert assignment.reviewers_of("unknown") == frozenset()

    def test_papers_and_reviewers_views(self):
        assignment = Assignment([("r1", "p1"), ("r2", "p2")])
        assert assignment.papers() == frozenset({"p1", "p2"})
        assert assignment.reviewers() == frozenset({"r1", "r2"})

    def test_pairs_are_sorted_and_stable(self):
        assignment = Assignment([("r2", "p2"), ("r1", "p1"), ("r3", "p1")])
        assert list(assignment.pairs()) == [("r1", "p1"), ("r3", "p1"), ("r2", "p2")]
        assert list(iter(assignment)) == list(assignment.pairs())

    def test_equality(self):
        first = Assignment([("r1", "p1"), ("r2", "p2")])
        second = Assignment([("r2", "p2"), ("r1", "p1")])
        assert first == second
        assert first != Assignment([("r1", "p1")])

    def test_bool_and_repr(self):
        assert not Assignment()
        assignment = Assignment([("r1", "p1")])
        assert assignment
        assert "1 pairs" in repr(assignment)


class TestDerivedViews:
    def test_copy_is_independent(self):
        original = Assignment([("r1", "p1")])
        clone = original.copy()
        clone.add("r2", "p2")
        assert len(original) == 1
        assert len(clone) == 2

    def test_union_difference_symmetric_difference(self):
        first = Assignment([("r1", "p1"), ("r2", "p2")])
        second = Assignment([("r2", "p2"), ("r3", "p3")])
        assert len(first.union(second)) == 3
        assert set(first.difference(second).pairs()) == {("r1", "p1")}
        assert set(first.symmetric_difference(second).pairs()) == {
            ("r1", "p1"),
            ("r3", "p3"),
        }


class TestSerialisation:
    def test_round_trip(self):
        original = Assignment([("r1", "p1"), ("r2", "p1"), ("r3", "p2")])
        payload = original.to_dict()
        assert payload == {"p1": ["r1", "r2"], "p2": ["r3"]}
        assert Assignment.from_dict(payload) == original

    def test_to_dict_skips_empty_groups(self):
        assignment = Assignment([("r1", "p1")])
        assignment.remove("r1", "p1")
        assert assignment.to_dict() == {}
