"""Tests for the solver base classes, result types and exception hierarchy."""

from __future__ import annotations

import pytest

from repro.core.assignment import Assignment
from repro.core.problem import JRAProblem, WGRAPProblem
from repro.cra.base import CRAResult, CRASolver
from repro.cra.sra import StochasticRefiner
from repro.exceptions import (
    ConfigurationError,
    InfeasibleAssignmentError,
    InfeasibleProblemError,
    ReproError,
    SolverError,
    UnknownScoringFunctionError,
)
from repro.jra.base import JRAResult, JRASolver


class TestExceptionHierarchy:
    def test_all_errors_are_repro_errors(self):
        for error_class in (
            ConfigurationError,
            InfeasibleProblemError,
            InfeasibleAssignmentError,
            SolverError,
            UnknownScoringFunctionError,
        ):
            assert issubclass(error_class, ReproError)

    def test_unknown_scoring_function_is_also_a_key_error(self):
        assert issubclass(UnknownScoringFunctionError, KeyError)

    def test_catching_the_base_class_catches_everything(self, small_problem):
        with pytest.raises(ReproError):
            small_problem.validate_assignment(Assignment([("ghost", "paper-0000")]))


class _BrokenCRASolver(CRASolver):
    """A solver that 'forgets' to complete the assignment."""

    name = "Broken"

    def _solve(self, problem: WGRAPProblem):
        return Assignment(), {}


class _CheatingJRASolver(JRASolver):
    """A solver that returns a group of the wrong size."""

    name = "Cheater"

    def _solve(self, problem: JRAProblem):
        return (problem.reviewer_ids[:1], 0.0, True, {})


class TestBaseClassValidation:
    def test_cra_base_rejects_incomplete_results(self, small_problem):
        with pytest.raises(InfeasibleAssignmentError):
            _BrokenCRASolver().solve(small_problem)

    def test_jra_base_rejects_wrong_group_size(self, tiny_jra_problem):
        with pytest.raises(InfeasibleAssignmentError):
            _CheatingJRASolver().solve(tiny_jra_problem)

    def test_repr_of_solvers(self, small_problem):
        assert "_BrokenCRASolver" in repr(_BrokenCRASolver())
        assert "_CheatingJRASolver" in repr(_CheatingJRASolver())


class TestResultTypes:
    def test_cra_result_is_immutable(self, small_problem):
        from repro.cra.sdga import StageDeepeningGreedySolver

        result = StageDeepeningGreedySolver().solve(small_problem)
        assert isinstance(result, CRAResult)
        with pytest.raises(AttributeError):
            result.score = 0.0  # type: ignore[misc]
        assert result.solver_name == "SDGA"
        assert result.elapsed_seconds >= 0.0

    def test_jra_result_is_immutable(self, tiny_jra_problem):
        from repro.jra.bba import BranchAndBoundSolver

        result = BranchAndBoundSolver().solve(tiny_jra_problem)
        assert isinstance(result, JRAResult)
        with pytest.raises(AttributeError):
            result.score = 0.0  # type: ignore[misc]


class TestStochasticRefinerProbabilityModels:
    def test_model_name_validation(self):
        with pytest.raises(ConfigurationError):
            StochasticRefiner(probability_model="magic")

    @pytest.mark.parametrize("model", ["uniform", "coverage", "decayed"])
    def test_every_model_produces_a_feasible_refinement(self, small_problem, model):
        from repro.cra.sdga import StageDeepeningGreedySolver

        base = StageDeepeningGreedySolver().solve(small_problem)
        refiner = StochasticRefiner(
            probability_model=model, convergence_window=3, max_rounds=10, seed=2
        )
        refined, stats = refiner.refine(small_problem, base.assignment)
        small_problem.validate_assignment(refined)
        assert small_problem.assignment_score(refined) >= base.score - 1e-9
        assert stats["rounds"] <= 10
