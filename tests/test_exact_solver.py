"""Tests for the bounded exhaustive WGRAP solver."""

from __future__ import annotations

import pytest

from repro.cra.exact import ExhaustiveSolver
from repro.cra.greedy import GreedySolver
from repro.cra.ratio import GREEDY_RATIO, sdga_ratio
from repro.cra.sdga import StageDeepeningGreedySolver
from repro.cra.sra import SDGAWithRefinementSolver
from repro.data.synthetic import make_problem
from repro.exceptions import ConfigurationError
from tests.conftest import exhaustive_optimal_assignment


class TestExhaustiveSolver:
    def test_matches_the_reference_enumeration(self):
        for seed in range(3):
            problem = make_problem(
                num_papers=3, num_reviewers=4, num_topics=5, group_size=2, seed=seed
            )
            result = ExhaustiveSolver().solve(problem)
            _, reference_score = exhaustive_optimal_assignment(problem)
            assert result.score == pytest.approx(reference_score)
            problem.validate_assignment(result.assignment)
            assert result.stats["optimal_score"] == pytest.approx(result.score)

    def test_dominates_every_approximate_solver(self):
        problem = make_problem(
            num_papers=4, num_reviewers=4, num_topics=6, group_size=2, seed=5
        )
        optimum = ExhaustiveSolver().solve(problem)
        for solver in (GreedySolver(), StageDeepeningGreedySolver(),
                       SDGAWithRefinementSolver()):
            approximate = solver.solve(problem)
            assert approximate.score <= optimum.score + 1e-9

    def test_approximation_guarantees_against_the_true_optimum(self):
        problem = make_problem(
            num_papers=4, num_reviewers=5, num_topics=6, group_size=2, seed=8
        )
        optimum = ExhaustiveSolver().solve(problem).score
        sdga = StageDeepeningGreedySolver().solve(problem).score
        greedy = GreedySolver().solve(problem).score
        assert sdga >= sdga_ratio(problem.group_size, problem.reviewer_workload) * optimum - 1e-9
        assert greedy >= GREEDY_RATIO * optimum - 1e-9

    def test_respects_conflicts(self):
        problem = make_problem(
            num_papers=3, num_reviewers=4, num_topics=5, group_size=2,
            conflict_ratio=0.1, seed=2,
        )
        result = ExhaustiveSolver().solve(problem)
        for reviewer_id, paper_id in result.assignment.pairs():
            assert problem.is_feasible_pair(reviewer_id, paper_id)

    def test_refuses_oversized_instances(self):
        problem = make_problem(
            num_papers=30, num_reviewers=20, num_topics=6, group_size=3, seed=1
        )
        with pytest.raises(ConfigurationError):
            ExhaustiveSolver(max_nodes=1e4).solve(problem)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            ExhaustiveSolver(max_nodes=0)
