"""Unit tests for the conference-assignment solvers (Section 4 / 5.2)."""

from __future__ import annotations

import pytest

from repro.core.assignment import Assignment
from repro.core.problem import WGRAPProblem
from repro.cra.base import CRAResult
from repro.cra.brgg import BestReviewerGroupGreedySolver
from repro.cra.greedy import GreedySolver
from repro.cra.ideal import ideal_assignment
from repro.cra.ilp import PairwiseILPSolver
from repro.cra.local_search import LocalSearchRefiner, SDGAWithLocalSearchSolver
from repro.cra.ratio import GREEDY_RATIO, RatioGreedySolver, sdga_ratio
from repro.cra.repair import RefillRepairSolver, complete_assignment
from repro.cra.sdga import StageDeepeningGreedySolver
from repro.cra.sra import SDGAWithRefinementSolver, StochasticRefiner
from repro.cra.stable_matching import StableMatchingSolver
from repro.data.synthetic import make_problem
from repro.exceptions import ConfigurationError
from tests.conftest import exhaustive_optimal_assignment

ALL_SOLVERS = [
    StableMatchingSolver,
    PairwiseILPSolver,
    BestReviewerGroupGreedySolver,
    GreedySolver,
    StageDeepeningGreedySolver,
    SDGAWithRefinementSolver,
    SDGAWithLocalSearchSolver,
    RatioGreedySolver,
    RefillRepairSolver,
]


class TestAllSolversProduceFeasibleAssignments:
    @pytest.mark.parametrize("solver_class", ALL_SOLVERS)
    def test_feasible_on_small_problem(self, small_problem, solver_class):
        result = solver_class().solve(small_problem)
        assert isinstance(result, CRAResult)
        small_problem.validate_assignment(result.assignment)
        assert result.score > 0.0
        assert result.score == pytest.approx(
            small_problem.assignment_score(result.assignment)
        )

    @pytest.mark.parametrize("solver_class", ALL_SOLVERS)
    def test_feasible_with_conflicts_and_slack(self, medium_problem, solver_class):
        result = solver_class().solve(medium_problem)
        medium_problem.validate_assignment(result.assignment)
        for reviewer_id, paper_id in result.assignment.pairs():
            assert medium_problem.is_feasible_pair(reviewer_id, paper_id)

    @pytest.mark.parametrize("solver_class", ALL_SOLVERS)
    def test_group_size_one(self, solver_class):
        problem = make_problem(
            num_papers=8, num_reviewers=6, num_topics=8, group_size=1, seed=4
        )
        result = solver_class().solve(problem)
        problem.validate_assignment(result.assignment)


class TestMethodOrdering:
    """The qualitative ordering the paper's Figure 10 reports."""

    def test_sdga_beats_stable_matching_and_brgg(self, small_problem):
        sdga = StageDeepeningGreedySolver().solve(small_problem)
        stable = StableMatchingSolver().solve(small_problem)
        brgg = BestReviewerGroupGreedySolver().solve(small_problem)
        assert sdga.score >= stable.score - 1e-9
        assert sdga.score >= brgg.score - 1e-9

    def test_refinement_never_hurts_sdga(self, small_problem):
        sdga = StageDeepeningGreedySolver().solve(small_problem)
        refined = SDGAWithRefinementSolver().solve(small_problem)
        assert refined.score >= sdga.score - 1e-9
        assert refined.stats["base_score"] == pytest.approx(sdga.score)

    def test_local_search_never_hurts_sdga(self, small_problem):
        sdga = StageDeepeningGreedySolver().solve(small_problem)
        refined = SDGAWithLocalSearchSolver().solve(small_problem)
        assert refined.score >= sdga.score - 1e-9


class TestApproximationGuarantees:
    def test_sdga_respects_its_worst_case_bound_on_tiny_instances(self):
        for seed in range(4):
            problem = make_problem(
                num_papers=3, num_reviewers=4, num_topics=5, group_size=2, seed=seed
            )
            _, optimal_score = exhaustive_optimal_assignment(problem)
            sdga = StageDeepeningGreedySolver().solve(problem)
            guarantee = sdga_ratio(problem.group_size, problem.reviewer_workload)
            assert sdga.score >= guarantee * optimal_score - 1e-9

    def test_greedy_respects_its_worst_case_bound_on_tiny_instances(self):
        for seed in range(4):
            problem = make_problem(
                num_papers=3, num_reviewers=4, num_topics=5, group_size=2, seed=seed
            )
            _, optimal_score = exhaustive_optimal_assignment(problem)
            greedy = GreedySolver().solve(problem)
            assert greedy.score >= GREEDY_RATIO * optimal_score - 1e-9

    def test_sdga_stage_gains_are_recorded(self, small_problem):
        result = StageDeepeningGreedySolver().solve(small_problem)
        gains = result.stats["stage_gains"]
        assert len(gains) == small_problem.group_size
        assert sum(gains) == pytest.approx(result.score, rel=1e-6)


class TestSDGADetails:
    def test_stage_workload_counterexample(self, sdga_counterexample_vectors):
        """The Section 4.2 example: capping per-stage workload helps topic t3."""
        papers, reviewers = sdga_counterexample_vectors
        problem = WGRAPProblem(
            papers=papers, reviewers=reviewers, group_size=2, reviewer_workload=2
        )
        result = StageDeepeningGreedySolver().solve(problem)
        problem.validate_assignment(result.assignment)
        # r1 is the only reviewer covering topic t3 of p1; the stage cap of
        # delta_r/delta_p = 1 forces SDGA to keep one unit of r1 for p1.
        assert "reviewer" not in result.assignment.reviewers_of("p1") or True
        assert result.score == pytest.approx(
            problem.assignment_score(result.assignment)
        )
        assert problem.paper_score(result.assignment, "p1") >= 0.6 - 1e-9

    def test_flow_backend_matches_hungarian_backend(self, small_problem):
        hungarian = StageDeepeningGreedySolver(backend="hungarian").solve(small_problem)
        flow = StageDeepeningGreedySolver(backend="flow").solve(small_problem)
        assert hungarian.score == pytest.approx(flow.score)

    def test_respects_conflicts(self):
        problem = make_problem(
            num_papers=10, num_reviewers=8, num_topics=6, group_size=2,
            conflict_ratio=0.05, seed=12,
        )
        result = StageDeepeningGreedySolver().solve(problem)
        for reviewer_id, paper_id in result.assignment.pairs():
            assert not problem.conflicts.is_conflict(reviewer_id, paper_id)


class TestGreedyDetails:
    def test_lazy_and_naive_strategies_agree(self, small_problem):
        lazy = GreedySolver(use_lazy_heap=True).solve(small_problem)
        naive = GreedySolver(use_lazy_heap=False).solve(small_problem)
        assert lazy.score == pytest.approx(naive.score)

    def test_stats_reflect_strategy(self, small_problem):
        lazy = GreedySolver(use_lazy_heap=True).solve(small_problem)
        heap = GreedySolver(use_lazy_heap=True, use_dense=False).solve(small_problem)
        naive = GreedySolver(use_lazy_heap=False).solve(small_problem)
        assert lazy.stats["strategy"] == "dense_argmax"
        assert heap.stats["strategy"] == "lazy_heap"
        assert naive.stats["strategy"] == "naive"
        assert lazy.stats["iterations"] == small_problem.num_papers * small_problem.group_size


class TestStochasticRefiner:
    def test_refiner_is_deterministic_given_a_seed(self, small_problem):
        base = StageDeepeningGreedySolver().solve(small_problem)
        first, _ = StochasticRefiner(seed=42, max_rounds=15).refine(
            small_problem, base.assignment
        )
        second, _ = StochasticRefiner(seed=42, max_rounds=15).refine(
            small_problem, base.assignment
        )
        assert first == second

    def test_refiner_validates_input(self, small_problem):
        with pytest.raises(Exception):
            StochasticRefiner().refine(small_problem, Assignment())

    def test_refiner_history_and_convergence(self, small_problem):
        base = StageDeepeningGreedySolver().solve(small_problem)
        refined, stats = StochasticRefiner(convergence_window=3, seed=1).refine(
            small_problem, base.assignment
        )
        assert stats["rounds"] == len(stats["history"])
        assert stats["best_score"] == pytest.approx(
            small_problem.assignment_score(refined)
        )
        best_scores = [entry.best_score for entry in stats["history"]]
        assert best_scores == sorted(best_scores)

    def test_time_budget_is_respected(self, small_problem):
        base = StageDeepeningGreedySolver().solve(small_problem)
        refiner = StochasticRefiner(convergence_window=10_000, time_budget=0.3, seed=0)
        _, stats = refiner.refine(small_problem, base.assignment)
        if stats["history"]:
            assert stats["history"][-1].elapsed_seconds <= 2.0

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            StochasticRefiner(convergence_window=0)
        with pytest.raises(ConfigurationError):
            StochasticRefiner(decay=-1.0)
        with pytest.raises(ConfigurationError):
            StochasticRefiner(max_rounds=0)


class TestLocalSearch:
    def test_refinement_monotonically_improves(self, small_problem):
        base = StageDeepeningGreedySolver().solve(small_problem)
        refined, stats = LocalSearchRefiner(max_rounds=3).refine(
            small_problem, base.assignment
        )
        assert small_problem.assignment_score(refined) >= base.score - 1e-9
        history_scores = [score for _, score in stats["history"]]
        assert history_scores == sorted(history_scores)

    def test_moves_preserve_feasibility(self, medium_problem):
        base = StageDeepeningGreedySolver().solve(medium_problem)
        refined, _ = LocalSearchRefiner(max_rounds=2).refine(
            medium_problem, base.assignment
        )
        medium_problem.validate_assignment(refined)


class TestPairwiseILP:
    def test_highs_and_flow_backends_agree(self, small_problem):
        highs = PairwiseILPSolver(backend="highs").solve(small_problem)
        flow = PairwiseILPSolver(backend="flow").solve(small_problem)
        # Both maximise the pairwise objective; their WGRAP scores may differ
        # slightly because ties are broken differently, but the pairwise
        # objective value must match.
        pairwise = small_problem.pair_score_matrix()

        def pairwise_objective(assignment):
            return sum(
                pairwise[
                    small_problem.reviewer_index(reviewer_id),
                    small_problem.paper_index(paper_id),
                ]
                for reviewer_id, paper_id in assignment.pairs()
            )

        assert pairwise_objective(highs.assignment) == pytest.approx(
            pairwise_objective(flow.assignment), rel=1e-6
        )

    def test_lp_solution_is_essentially_integral(self, small_problem):
        result = PairwiseILPSolver(backend="highs").solve(small_problem)
        assert result.stats["max_fractionality"] < 1e-6

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            PairwiseILPSolver(backend="magic")

    def test_ilp_maximises_pairwise_objective_better_than_stable_matching(
        self, small_problem
    ):
        pairwise = small_problem.pair_score_matrix()

        def pairwise_objective(assignment):
            return sum(
                pairwise[
                    small_problem.reviewer_index(reviewer_id),
                    small_problem.paper_index(paper_id),
                ]
                for reviewer_id, paper_id in assignment.pairs()
            )

        ilp = PairwiseILPSolver().solve(small_problem)
        stable = StableMatchingSolver().solve(small_problem)
        assert pairwise_objective(ilp.assignment) >= pairwise_objective(stable.assignment) - 1e-9


class TestIdealAssignment:
    def test_ideal_is_an_upper_reference_for_every_solver(self, small_problem):
        ideal = ideal_assignment(small_problem)
        for solver_class in (GreedySolver, StageDeepeningGreedySolver,
                             SDGAWithRefinementSolver):
            result = solver_class().solve(small_problem)
            assert result.score <= ideal.score + 1e-9

    def test_exact_ideal_at_least_greedy_ideal(self, small_problem):
        greedy_reference = ideal_assignment(small_problem, exact=False)
        exact_reference = ideal_assignment(small_problem, exact=True)
        assert exact_reference.score >= greedy_reference.score - 1e-9

    def test_ideal_ignores_workload_but_respects_conflicts(self):
        problem = make_problem(
            num_papers=10, num_reviewers=8, num_topics=6, group_size=2,
            conflict_ratio=0.05, seed=21,
        )
        ideal = ideal_assignment(problem)
        for reviewer_id, paper_id in ideal.assignment.pairs():
            assert not problem.conflicts.is_conflict(reviewer_id, paper_id)
        for paper_id in problem.paper_ids:
            assert ideal.assignment.group_size(paper_id) == problem.group_size
        assert set(ideal.paper_scores) == set(problem.paper_ids)


class TestRepair:
    def test_completes_partial_assignment(self, small_problem):
        partial = Assignment()
        partial.add(small_problem.reviewer_ids[0], small_problem.paper_ids[0])
        completed = complete_assignment(small_problem, partial)
        small_problem.validate_assignment(completed)
        # The original pair is preserved and the input is untouched.
        assert completed.contains(
            small_problem.reviewer_ids[0], small_problem.paper_ids[0]
        )
        assert len(partial) == 1

    def test_no_op_on_complete_assignment(self, small_problem):
        full = StageDeepeningGreedySolver().solve(small_problem).assignment
        assert complete_assignment(small_problem, full) == full

    def test_deadlock_resolved_by_swapping(self):
        """Spare capacity concentrated on a reviewer already in the group."""
        problem = make_problem(
            num_papers=4, num_reviewers=4, num_topics=5, group_size=2,
            reviewer_workload=2, seed=3,
        )
        partial = Assignment()
        # Fill three papers completely and give the fourth only reviewer-0000,
        # consuming all of everyone else's capacity.
        r = problem.reviewer_ids
        p = problem.paper_ids
        for reviewer_id, paper_id in [
            (r[1], p[0]), (r[2], p[0]),
            (r[1], p[1]), (r[3], p[1]),
            (r[2], p[2]), (r[3], p[2]),
            (r[0], p[3]),
        ]:
            partial.add(reviewer_id, paper_id)
        completed = complete_assignment(problem, partial)
        problem.validate_assignment(completed)


class TestStableMatchingLiveConflictEdits:
    """Satellite audit (PR 5): SM preference lists are built from the
    compiled feasibility mask, which is patched *in place* by live
    conflict edits — a mid-session ``conflicts.add`` must be observed by
    the next solve, never a stale snapshot."""

    def test_preference_lists_observe_in_place_conflict_patch(self):
        problem = make_problem(
            num_papers=8, num_reviewers=8, num_topics=6, group_size=2,
            reviewer_workload=4, seed=6, conflict_ratio=0.0,
        )
        solver = StableMatchingSolver()
        first = solver.solve(problem)
        reviewer_id, paper_id = sorted(first.assignment.pairs())[0]

        # Live edit mid-session: the mask is patched in place, no recompile.
        patches_before = problem.view_stats.conflict_patches
        problem.conflicts.add(reviewer_id, paper_id)
        second = solver.solve(problem)
        assert problem.view_stats.conflict_patches == patches_before + 1
        assert not second.assignment.contains(reviewer_id, paper_id)

        # ... and the patched-mask solve equals a cold rebuild bitwise.
        cold = WGRAPProblem(
            papers=problem.papers, reviewers=problem.reviewers,
            group_size=problem.group_size,
            reviewer_workload=problem.reviewer_workload,
            conflicts=problem.conflicts, scoring=problem.scoring,
            validate_capacity=False,
        )
        reference = solver.solve(cold)
        assert second.assignment == reference.assignment
        assert second.score == reference.score

    def test_object_oracle_sees_the_same_edit(self):
        problem = make_problem(
            num_papers=8, num_reviewers=8, num_topics=6, group_size=2,
            reviewer_workload=4, seed=7, conflict_ratio=0.0,
        )
        dense_solver = StableMatchingSolver(use_dense=True)
        object_solver = StableMatchingSolver(use_dense=False)
        first = dense_solver.solve(problem)
        reviewer_id, paper_id = sorted(first.assignment.pairs())[-1]
        problem.conflicts.add(reviewer_id, paper_id)
        assert dense_solver.solve(problem).assignment == (
            object_solver.solve(problem).assignment
        )


class TestRatioGreedy:
    def test_rations_saturating_reviewers(self):
        problem = make_problem(
            num_papers=10, num_reviewers=8, num_topics=6, group_size=2,
            reviewer_workload=4, seed=9,
        )
        result = RatioGreedySolver().solve(problem)
        problem.validate_assignment(result.assignment)
        # The capacity weight keeps the load spread strictly tighter than
        # (or equal to) the workload bound for every reviewer.
        assert max(
            result.assignment.load(rid) for rid in problem.reviewer_ids
        ) <= problem.reviewer_workload

    def test_first_pick_matches_plain_greedy(self):
        """With all loads at zero the weight is 1.0 for everyone, so the
        very first selected pair equals the naive greedy's first pick."""
        problem = make_problem(
            num_papers=6, num_reviewers=6, num_topics=5, group_size=2,
            reviewer_workload=3, seed=11,
        )
        ratio = RatioGreedySolver().solve(problem)
        greedy = GreedySolver(use_lazy_heap=False).solve(problem)
        assert ratio.stats["iterations"] >= 1
        # Both solvers pick the global max of the same (unweighted) gain
        # matrix on step one; equality of the full assignments is not
        # implied, but both must contain that common first pair.
        import numpy as np

        gains = np.where(
            problem.dense_view().feasible, problem.pair_score_matrix(), -np.inf
        )
        reviewer_idx, paper_idx = np.unravel_index(np.argmax(gains), gains.shape)
        pair = (problem.reviewer_ids[int(reviewer_idx)], problem.paper_ids[int(paper_idx)])
        assert ratio.assignment.contains(*pair)
        assert greedy.assignment.contains(*pair)


class TestRefillRepairSolver:
    def test_constructs_a_complete_assignment_from_scratch(self, small_problem):
        result = RefillRepairSolver().solve(small_problem)
        small_problem.validate_assignment(result.assignment)
        assert result.score > 0.0

    def test_never_beats_nor_misses_sdga_wildly(self, small_problem):
        """Sanity band: the uncapped refill is SDGA minus stage discipline,
        so it stays within a factor of the SDGA score on benign instances."""
        refill = RefillRepairSolver().solve(small_problem)
        sdga = StageDeepeningGreedySolver().solve(small_problem)
        assert refill.score >= 0.5 * sdga.score
