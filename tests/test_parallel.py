"""Tests for the worker-pool execution layer (:mod:`repro.parallel`).

The load-bearing property throughout is *determinism*: whatever the
worker count, the parallel paths must reproduce the serial paths — score
matrices bitwise, trial sweeps seed-for-seed, portfolio winners
tie-broken stably.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scoring import (
    WeightedCoverage,
    available_scoring_functions,
    get_scoring_function,
)
from repro.data.synthetic import make_problem
from repro.exceptions import ConfigurationError, DimensionMismatchError, SolverError
from repro.experiments.runner import ExperimentConfig, run_cra_methods, run_seeded_trials
from repro.parallel import (
    DEFAULT_PORTFOLIO,
    ParallelConfig,
    blocked_score_matrix,
    run_portfolio,
    run_trials,
    sharded_score_matrix,
    trial_seeds,
)
from repro.service.engine import AssignmentEngine
from repro.service.requests import PortfolioSolve, request_from_dict, request_to_dict
from repro.service.session import EngineSession


def _random_matrices(num_reviewers=57, num_papers=43, num_topics=11, seed=1):
    rng = np.random.default_rng(seed)
    reviewers = rng.random((num_reviewers, num_topics))
    papers = rng.random((num_papers, num_topics))
    papers[5] = 0.0  # a zero-mass paper must stay a zero column everywhere
    return reviewers, papers


class TestParallelConfig:
    def test_defaults_resolve_to_at_least_one_worker(self):
        assert ParallelConfig().resolved_workers() >= 1
        assert ParallelConfig(workers=3).resolved_workers() == 3

    def test_invalid_values_are_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelConfig(workers=-1)
        with pytest.raises(ConfigurationError):
            ParallelConfig(shard_size=0)
        with pytest.raises(ConfigurationError):
            ParallelConfig(paper_block=0)
        with pytest.raises(ConfigurationError):
            ParallelConfig(serial_threshold=-1)

    def test_serial_threshold_gates_parallelism(self):
        config = ParallelConfig(workers=4, serial_threshold=100)
        assert not config.should_parallelise(99)
        assert config.should_parallelise(100)
        assert not ParallelConfig(workers=1).should_parallelise(10**9)

    def test_shard_bounds_cover_all_rows_contiguously(self):
        config = ParallelConfig(workers=4)
        bounds = config.shard_bounds(10)
        assert bounds[0][0] == 0 and bounds[-1][1] == 10
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert stop == start
        assert ParallelConfig(workers=4).shard_bounds(0) == []
        assert ParallelConfig(workers=4, shard_size=3).shard_bounds(7) == [
            (0, 3),
            (3, 6),
            (6, 7),
        ]


class TestShardedScoreMatrix:
    @pytest.mark.parametrize("name", available_scoring_functions())
    def test_blocked_kernel_is_bitwise_equal(self, name):
        scoring = get_scoring_function(name)
        reviewers, papers = _random_matrices()
        serial = scoring.score_matrix(reviewers, papers)
        for block in (1, 7, 64, 1000):
            blocked = blocked_score_matrix(scoring, reviewers, papers, block)
            assert np.array_equal(serial, blocked)

    @pytest.mark.parametrize("name", available_scoring_functions())
    def test_worker_pool_is_bitwise_equal(self, name):
        scoring = get_scoring_function(name)
        reviewers, papers = _random_matrices()
        serial = scoring.score_matrix(reviewers, papers)
        config = ParallelConfig(workers=3, serial_threshold=0, paper_block=7)
        assert np.array_equal(serial, sharded_score_matrix(scoring, reviewers, papers, config))

    def test_single_worker_matches_serial_exactly(self):
        scoring = WeightedCoverage()
        reviewers, papers = _random_matrices()
        serial = scoring.score_matrix(reviewers, papers)
        for threshold in (0, 10**9):  # blocked kernel and serial fallback
            config = ParallelConfig(workers=1, serial_threshold=threshold)
            assert np.array_equal(
                serial, sharded_score_matrix(scoring, reviewers, papers, config)
            )

    def test_small_problems_use_the_serial_path(self, monkeypatch):
        scoring = WeightedCoverage()
        reviewers, papers = _random_matrices()
        import repro.parallel.sharding as sharding

        def boom(*args, **kwargs):  # pragma: no cover - must not be reached
            raise AssertionError("worker pool used below the serial threshold")

        monkeypatch.setattr(sharding, "_score_shard_job", boom)
        config = ParallelConfig(workers=4, serial_threshold=10**9)
        serial = scoring.score_matrix(reviewers, papers)
        assert np.array_equal(
            serial, sharded_score_matrix(scoring, reviewers, papers, config)
        )

    def test_score_matrix_accepts_parallel_config(self):
        scoring = WeightedCoverage()
        reviewers, papers = _random_matrices()
        config = ParallelConfig(workers=2, serial_threshold=0)
        assert np.array_equal(
            scoring.score_matrix(reviewers, papers),
            scoring.score_matrix(reviewers, papers, parallel=config),
        )

    def test_dimension_mismatch_is_rejected(self):
        scoring = WeightedCoverage()
        with pytest.raises(DimensionMismatchError):
            sharded_score_matrix(
                scoring, np.ones((4, 3)), np.ones((4, 5)), ParallelConfig(workers=2)
            )

    def test_shard_size_override_still_exact(self):
        scoring = WeightedCoverage()
        reviewers, papers = _random_matrices()
        config = ParallelConfig(workers=2, shard_size=5, serial_threshold=0)
        assert np.array_equal(
            scoring.score_matrix(reviewers, papers),
            sharded_score_matrix(scoring, reviewers, papers, config),
        )


class TestEngineWithParallelConfig:
    def test_cache_matrix_is_bitwise_equal_to_serial_engine(self):
        problem = make_problem(num_papers=20, num_reviewers=10, group_size=3, seed=5)
        serial_engine = AssignmentEngine(problem)
        parallel_engine = AssignmentEngine(
            problem, parallel=ParallelConfig(workers=2, serial_threshold=0)
        )
        assert np.array_equal(
            serial_engine.cache.matrix(), parallel_engine.cache.matrix()
        )
        assert parallel_engine.stats()["parallel_workers"] == 2
        assert serial_engine.stats()["parallel_workers"] == 1
        serial_engine.detach()
        parallel_engine.detach()

    def test_warm_pair_scores_parallel_is_bitwise_equal(self):
        serial = make_problem(num_papers=20, num_reviewers=10, group_size=3, seed=5)
        parallel = make_problem(num_papers=20, num_reviewers=10, group_size=3, seed=5)
        parallel.warm_pair_scores(
            parallel=ParallelConfig(workers=2, serial_threshold=0)
        )
        assert np.array_equal(serial.pair_score_matrix(), parallel.pair_score_matrix())


class TestPortfolio:
    def test_serial_race_returns_best_scoring_member(self, small_problem):
        outcome = run_portfolio(small_problem, solvers=("SDGA", "Greedy"))
        assert {entry.solver for entry in outcome.entries} == {"SDGA", "Greedy"}
        assert all(entry.status == "ok" for entry in outcome.entries)
        assert outcome.best.score == max(entry.score for entry in outcome.entries)
        assert outcome.best_solver in {"SDGA", "Greedy"}

    def test_aliases_are_canonicalised_and_deduped(self, small_problem):
        outcome = run_portfolio(small_problem, solvers=("sdga", "SDGA"))
        assert [entry.solver for entry in outcome.entries] == ["SDGA"]

    def test_process_race_matches_serial_outcome(self, small_problem):
        serial = run_portfolio(small_problem, solvers=("SDGA", "Greedy"))
        raced = run_portfolio(
            small_problem,
            solvers=("SDGA", "Greedy"),
            config=ParallelConfig(workers=2),
        )
        assert raced.best_solver == serial.best_solver
        assert raced.best.score == pytest.approx(serial.best.score)

    def test_serial_deadline_skips_late_members_but_runs_first(self, small_problem, monkeypatch):
        import time as time_module

        import repro.parallel.portfolio as portfolio_module

        real_solve = portfolio_module._solve_in_process

        def slow_solve(problem, name, options):
            result = real_solve(problem, name, options)
            time_module.sleep(0.05)
            return result

        monkeypatch.setattr(portfolio_module, "_solve_in_process", slow_solve)
        outcome = run_portfolio(
            small_problem, solvers=("SDGA", "Greedy"), deadline=0.01
        )
        statuses = {entry.solver: entry.status for entry in outcome.entries}
        assert statuses["SDGA"] == "ok"  # the first member always runs
        assert statuses["Greedy"] == "timeout"
        assert outcome.best_solver == "SDGA"

    def test_all_members_failing_raises_solver_error(self, small_problem, monkeypatch):
        import repro.parallel.portfolio as portfolio_module

        def broken(problem, name, options):
            raise RuntimeError("boom")

        monkeypatch.setattr(portfolio_module, "_solve_in_process", broken)
        with pytest.raises(SolverError, match="no portfolio member"):
            run_portfolio(small_problem, solvers=("SDGA",))

    def test_invalid_inputs(self, small_problem):
        with pytest.raises(ConfigurationError):
            run_portfolio(small_problem, solvers=())
        with pytest.raises(ConfigurationError):
            run_portfolio(small_problem, deadline=0.0)

    def test_engine_solve_portfolio_installs_best_assignment(self, small_problem):
        engine = AssignmentEngine(small_problem)
        outcome = engine.solve_portfolio(solvers=("SDGA", "Greedy"))
        assert engine.assignment is not None
        assert set(engine.assignment.pairs()) == set(outcome.best.assignment.pairs())
        stats = engine.stats()
        assert stats["portfolio_solves"] == 1
        assert stats["last_solver"] == outcome.best_solver
        assert stats["last_score"] == pytest.approx(outcome.best.score)
        engine.detach()

    def test_portfolio_request_roundtrip_and_dispatch(self, small_problem):
        request = request_from_dict(
            {"kind": "portfolio", "solvers": ["SDGA", "Greedy"], "id": 9}
        )
        assert isinstance(request, PortfolioSolve)
        assert request.solvers == ("SDGA", "Greedy")
        assert request_to_dict(request)["solvers"] == ["SDGA", "Greedy"]

        session = EngineSession(AssignmentEngine(small_problem))
        response = session.dispatch(request)
        assert response.ok, response.error
        assert response.payload["best_solver"] in {"SDGA", "Greedy"}
        assert {entry["solver"] for entry in response.payload["entries"]} == {
            "SDGA",
            "Greedy",
        }
        assert "assignment" in response.payload
        session.engine.detach()

    def test_default_portfolio_names_are_registered(self):
        from repro.service.registry import solver_spec

        for name in DEFAULT_PORTFOLIO:
            assert solver_spec("cra", name).kind == "cra"

    def test_full_portfolio_covers_the_registry_minus_exponential(self):
        from repro.parallel.portfolio import full_portfolio
        from repro.service.registry import available_solver_specs

        lineup = full_portfolio()
        expected = {
            spec.name
            for spec in available_solver_specs("cra")
            if "exponential" not in spec.tags
        }
        assert set(lineup) == expected
        assert "Exhaustive" not in lineup
        assert "ILP" not in lineup
        # the PR-5 long-tail solvers are in the race
        for name in ("SM", "BRGG", "Ratio-Greedy", "Repair", "Bid-SDGA"):
            assert name in lineup

    def test_all_pseudo_name_races_the_full_registry(self, small_problem):
        from repro.parallel.portfolio import full_portfolio

        outcome = run_portfolio(small_problem, solvers=("all",))
        assert [entry.solver for entry in outcome.entries] == list(full_portfolio())
        assert all(entry.status == "ok" for entry in outcome.entries)
        best = max(
            (entry for entry in outcome.entries if entry.score is not None),
            key=lambda entry: entry.score,
        )
        assert outcome.best.score == best.score
        small_problem.validate_assignment(outcome.best.assignment)


def _square_trial(seed: int) -> tuple[int, float]:
    """Module-level trial function (picklable) whose output is seed-driven."""
    rng = np.random.default_rng(seed)
    return seed, float(rng.random())


class TestTrials:
    def test_seed_derivation_is_stable_and_distinct(self):
        assert trial_seeds(7, 5) == trial_seeds(7, 5)
        assert len(set(trial_seeds(7, 64))) == 64
        assert trial_seeds(7, 3) != trial_seeds(8, 3)
        with pytest.raises(ConfigurationError):
            trial_seeds(7, -1)

    def test_parallel_trials_reproduce_serial_seed_for_seed(self):
        serial = run_trials(_square_trial, num_trials=6, base_seed=7)
        fanned = run_trials(
            _square_trial,
            num_trials=6,
            base_seed=7,
            config=ParallelConfig(workers=3),
        )
        assert fanned == serial

    def test_explicit_seeds_preserve_order(self):
        seeds = [11, 3, 7]
        results = run_trials(
            _square_trial, seeds=seeds, config=ParallelConfig(workers=2)
        )
        assert [seed for seed, _ in results] == seeds

    def test_exactly_one_seed_source_is_required(self):
        with pytest.raises(ConfigurationError):
            run_trials(_square_trial)
        with pytest.raises(ConfigurationError):
            run_trials(_square_trial, seeds=[1], num_trials=1)

    def test_run_seeded_trials_defaults_to_experiment_seed(self):
        config = ExperimentConfig(seed=13)
        assert run_seeded_trials(_square_trial, num_trials=4, config=config) == run_trials(
            _square_trial, num_trials=4, base_seed=13
        )


class TestParallelExperiments:
    def test_parallel_methods_reproduce_serial_results(self, small_problem):
        config = ExperimentConfig(seed=7)
        serial = run_cra_methods(small_problem, ("SDGA", "Greedy"), config)
        fanned = run_cra_methods(
            small_problem,
            ("SDGA", "Greedy"),
            config,
            parallel=ParallelConfig(workers=2),
        )
        assert set(serial) == set(fanned)
        for method in serial:
            assert fanned[method].score == pytest.approx(serial[method].score)
            assert set(fanned[method].assignment.pairs()) == set(
                serial[method].assignment.pairs()
            )


class TestCLI:
    def test_solve_with_workers_flag(self, tmp_path):
        from repro.cli import main
        from repro.data.io import load_assignment

        problem_path = tmp_path / "problem.json"
        out_path = tmp_path / "assignment.json"
        assert main(["generate", str(problem_path), "--papers", "15",
                     "--reviewers", "8", "--seed", "3"]) == 0
        assert main(["solve", str(problem_path), str(out_path),
                     "--method", "SDGA", "--workers", "2"]) == 0
        assert len(load_assignment(out_path)) > 0

    def test_solve_portfolio_flag(self, tmp_path, capsys):
        from repro.cli import main
        from repro.data.io import load_assignment

        problem_path = tmp_path / "problem.json"
        out_path = tmp_path / "assignment.json"
        assert main(["generate", str(problem_path), "--papers", "15",
                     "--reviewers", "8", "--seed", "3"]) == 0
        assert main(["solve", str(problem_path), str(out_path),
                     "--portfolio", "SDGA,Greedy"]) == 0
        captured = capsys.readouterr().out
        assert "portfolio winner:" in captured
        assert len(load_assignment(out_path)) > 0
