"""Crash-safety tests for durable :mod:`repro.net` tenants.

Covers the serving-stack half of the durability feature: journaled
tenants behind a live TCP server, exactly-once application of retried
mutations, supervised worker restarts under injected faults, the
``socket_write`` + :class:`~repro.net.client.RetryingClient` lost-answer
loop, and wire/process-level recovery.  The bitwise replay regime lives
in ``tests/conformance/test_recovery_conformance.py``; the journal unit
tests in ``tests/test_durability.py``.
"""

from __future__ import annotations

import pytest

from repro.data.io import problem_to_dict
from repro.data.synthetic import make_problem
from repro.durability import DurabilityConfig
from repro.exceptions import ConfigurationError
from repro.fault import get_failpoints
from repro.net.client import RetryPolicy, RetryingClient
from repro.obs.metrics import get_registry
from repro.service.engine import AssignmentEngine

from tests.net_utils import ServerHarness, strip_volatile


@pytest.fixture(autouse=True)
def _clean_failpoints():
    get_failpoints().reset()
    yield
    get_failpoints().reset()


def small_engine() -> AssignmentEngine:
    problem = make_problem(
        num_papers=8, num_reviewers=8, num_topics=6, group_size=2,
        reviewer_workload=5, conflict_ratio=0.0, seed=21,
    )
    return AssignmentEngine(problem)


def late_paper_payload(tag: str, topics: int = 6) -> dict:
    vector = [1.0 if i == 0 else 0.0 for i in range(topics)]
    return {"id": tag, "vector": vector, "title": f"late {tag}"}


@pytest.fixture
def durable_harness(tmp_path):
    harness = ServerHarness(durability=DurabilityConfig(root=tmp_path / "wal"))
    harness.add_tenant("conf", small_engine(), default=True)
    harness.start()
    yield harness
    harness.stop()


class TestDurableServing:
    def test_durable_tenant_is_reported_and_serves(self, durable_harness):
        listing = durable_harness.call({"kind": "list_tenants"})
        tenant = listing["payload"]["tenants"]["conf"]
        assert tenant["durable"] is True
        assert tenant["worker_restarts"] == 0
        assert tenant["durability"]["fsync"] == "batch"
        response = durable_harness.call({"kind": "solve", "solver": "Greedy", "seq": 1})
        assert response["ok"], response

    def test_duplicate_seq_applies_exactly_once(self, durable_harness):
        deduped = get_registry().counter("durability.deduped", "")
        before = deduped.value
        payload = {"kind": "add_paper", "paper": late_paper_payload("late-1"), "seq": 7}
        with durable_harness.client() as client:
            first = client.request(payload)
            second = client.request(payload)  # a client retry, same key
        assert first["ok"], first
        assert first["payload"]["num_papers"] == 9
        # Answered from the idempotency map: same semantic response, no
        # second application.
        assert strip_volatile(second) == strip_volatile(first)
        assert deduped.value - before == 1
        tenant = durable_harness.server.tenants.get("conf")
        assert tenant.engine.problem.num_papers == 9

    def test_mutations_without_a_key_are_served_normally(self, durable_harness):
        payload = {"kind": "add_paper", "paper": late_paper_payload("late-2")}
        with durable_harness.client() as client:
            first = client.request(payload)
        assert first["ok"], first
        assert first["payload"]["num_papers"] == 9

    def test_bad_seq_field_is_a_request_error(self, durable_harness):
        response = durable_harness.call({
            "kind": "add_paper", "paper": late_paper_payload("x"), "seq": "seven",
        })
        assert not response["ok"]
        assert response["error_type"] == "request"


class TestSupervisedRestart:
    def test_worker_crash_restarts_and_answers(self, durable_harness):
        restarts = get_registry().counter("service.net.worker_restarts", "")
        before = restarts.value
        get_failpoints().configure("tenant_worker", "once")
        response = durable_harness.call({
            "kind": "add_paper", "paper": late_paper_payload("late-3"), "seq": 1,
        })
        assert response["ok"], response
        assert response["payload"]["num_papers"] == 9
        assert restarts.value - before == 1
        tenant = durable_harness.server.tenants.get("conf")
        assert tenant.worker_restarts == 1
        assert tenant.engine.problem.num_papers == 9
        # The restarted worker keeps serving.
        assert durable_harness.call({"kind": "solve", "solver": "Greedy", "seq": 2})["ok"]

    def test_crash_before_the_wal_append_loses_nothing(self, durable_harness):
        get_failpoints().configure("wal_append", "once")
        response = durable_harness.call({
            "kind": "add_paper", "paper": late_paper_payload("late-4"), "seq": 1,
        })
        # The fault fired before the record hit the log, so the mutation
        # never half-applied: the supervised restart replays the journal
        # (which does not contain it) and dispatches it fresh.
        assert response["ok"], response
        assert response["payload"]["num_papers"] == 9
        tenant = durable_harness.server.tenants.get("conf")
        assert tenant.worker_restarts == 1
        assert tenant.engine.problem.num_papers == 9


class TestLostAnswerRetry:
    def test_retrying_client_survives_a_lost_response(self, durable_harness):
        deduped = get_registry().counter("durability.deduped", "")
        before = deduped.value
        get_failpoints().configure("socket_write", "once")

        async def drive():
            client = RetryingClient(
                durable_harness.host,
                durable_harness.port,
                policy=RetryPolicy(attempts=4, base_delay=0.01, seed=13),
            )
            try:
                return await client.request({
                    "kind": "add_paper", "paper": late_paper_payload("late-5"),
                })
            finally:
                await client.close()

        response = durable_harness.run(drive())
        # The first answer died on the aborted socket; the retry re-sent
        # the same payload under the same auto-attached idempotency key
        # and was answered from the map — applied exactly once.
        assert response["ok"], response
        assert response["payload"]["num_papers"] == 9
        assert deduped.value - before == 1
        tenant = durable_harness.server.tenants.get("conf")
        assert tenant.engine.problem.num_papers == 9

    def test_retry_policy_backoff_is_seeded_and_capped(self):
        import random

        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.3, jitter=0.5)
        delays_a = [policy.delay(k, random.Random(3)) for k in range(6)]
        delays_b = [policy.delay(k, random.Random(3)) for k in range(6)]
        assert delays_a == delays_b
        assert all(d <= 0.3 * 1.5 for d in delays_a)
        assert all(d >= 0.0 for d in delays_a)


class TestProcessRecovery:
    def churn(self, harness: ServerHarness) -> None:
        with harness.client() as client:
            assert client.request({"kind": "solve", "solver": "Greedy", "seq": 1})["ok"]
            assert client.request({
                "kind": "add_paper", "paper": late_paper_payload("late-6"), "seq": 2,
            })["ok"]
            assert client.request({"kind": "solve", "solver": "Greedy", "seq": 3})["ok"]

    def test_crash_then_recover_tenants(self, tmp_path):
        root = tmp_path / "wal"
        harness = ServerHarness(durability=DurabilityConfig(root=root))
        harness.add_tenant("conf", small_engine(), default=True)
        harness.start()
        try:
            self.churn(harness)
            survivor = harness.server.tenants.get("conf").engine
            expected_revision = survivor.revision
            expected_papers = survivor.problem.num_papers
        finally:
            harness.abort()  # crash-stop: no drain, no final checkpoint

        reborn = ServerHarness(durability=DurabilityConfig(root=root))
        assert reborn.server.recover_tenants() == ["conf"]
        reborn.start()
        try:
            tenant = reborn.server.tenants.get("conf")
            assert tenant.engine.revision == expected_revision
            assert tenant.engine.problem.num_papers == expected_papers
            # Recovered state keeps serving — and the idempotency map
            # survived the crash: replaying seq 2 does not re-apply.
            repeat = reborn.call({
                "kind": "add_paper", "paper": late_paper_payload("late-6"), "seq": 2,
            })
            assert repeat["ok"], repeat
            assert tenant.engine.problem.num_papers == expected_papers
            assert reborn.call({"kind": "solve", "solver": "Greedy", "seq": 4})["ok"]
        finally:
            reborn.stop()

    def test_graceful_stop_needs_no_replay(self, tmp_path):
        root = tmp_path / "wal"
        harness = ServerHarness(durability=DurabilityConfig(root=root))
        harness.add_tenant("conf", small_engine(), default=True)
        harness.start()
        try:
            self.churn(harness)
        finally:
            harness.stop()  # graceful: drains and writes a final checkpoint

        reborn = ServerHarness(durability=DurabilityConfig(root=root))
        recoveries = get_registry().counter("durability.replayed_records", "")
        before = recoveries.value
        assert reborn.server.recover_tenants() == ["conf"]
        assert recoveries.value == before  # the checkpoint covered everything
        reborn.start()
        try:
            assert reborn.call({"kind": "solve", "solver": "Greedy", "seq": 9})["ok"]
        finally:
            reborn.stop()

    def test_sourceless_create_tenant_recovers_over_the_wire(self, tmp_path):
        root = tmp_path / "wal"
        harness = ServerHarness(durability=DurabilityConfig(root=root))
        harness.add_tenant("conf", small_engine(), default=True)
        harness.start()
        try:
            self.churn(harness)
        finally:
            harness.abort()

        reborn = ServerHarness(durability=DurabilityConfig(root=root))
        reborn.start()  # note: no recover_tenants — the wire does it
        try:
            created = reborn.call({"kind": "create_tenant", "tenant": "conf"})
            assert created["ok"], created
            stats = created["payload"]["recovered"]
            assert stats["replayed_records"] == 3
            assert created["payload"]["revision"] == 1  # the one add_paper
            assert reborn.call({
                "kind": "solve", "solver": "Greedy", "tenant": "conf", "seq": 4,
            })["ok"]
        finally:
            reborn.stop()

    def test_sourceless_create_without_state_is_still_an_error(self, tmp_path):
        harness = ServerHarness(durability=DurabilityConfig(root=tmp_path / "wal"))
        harness.start()
        try:
            response = harness.call({"kind": "create_tenant", "tenant": "virgin"})
            assert not response["ok"]
            assert response["error_type"] == "request"
            assert "durable state" in response["error"]
        finally:
            harness.stop()

    def test_registering_over_durable_state_is_refused(self, tmp_path):
        root = tmp_path / "wal"
        harness = ServerHarness(durability=DurabilityConfig(root=root))
        harness.add_tenant("conf", small_engine(), default=True)
        harness.start()
        harness.abort()

        reborn = ServerHarness(durability=DurabilityConfig(root=root))
        with pytest.raises(ConfigurationError, match="durable state"):
            reborn.add_tenant("conf", small_engine())
        reborn.start()
        try:
            # The same guard over the wire: creating with a source must
            # not shadow the journal either.
            response = reborn.call({
                "kind": "create_tenant", "tenant": "conf",
                "problem": problem_to_dict(small_engine().problem),
            })
            assert not response["ok"]
            assert response["error_type"] == "configuration"
        finally:
            reborn.stop()
