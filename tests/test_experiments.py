"""Tests for the experiment harness (small configurations of every experiment)."""

from __future__ import annotations

import pytest

from repro.data.synthetic import make_problem
from repro.exceptions import ConfigurationError
from repro.experiments.case_study import pick_interdisciplinary_paper, run_case_study
from repro.experiments.cra_quality import build_dataset_problem, run_cra_quality
from repro.experiments.jra_scalability import (
    JRAScalabilityConfig,
    run_cp_comparison,
    run_group_size_scalability,
    run_pool_size_scalability,
    run_topk_experiment,
)
from repro.experiments.refinement import run_omega_sensitivity, run_refinement_comparison
from repro.experiments.runner import (
    DEFAULT_CRA_METHODS,
    ExperimentConfig,
    make_cra_solver,
    make_jra_solver,
    run_cra_methods,
)
from repro.experiments.scoring_ablation import (
    run_h_index_scaling,
    run_scoring_ablation,
    scoring_toy_example,
)

#: a deliberately tiny configuration so the harness tests stay fast
TINY = ExperimentConfig(scale=0.04, seed=13, num_topics=12, refinement_omega=3)
FAST_METHODS = ("SM", "Greedy", "SDGA", "SDGA-SRA")
TINY_JRA = JRAScalabilityConfig(num_trials=1, num_topics=10, seed=3, ilp_time_limit=20.0)


class TestRunner:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(scale=0.0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(num_topics=2)

    def test_all_cra_method_names_resolve(self):
        for name in (*DEFAULT_CRA_METHODS, "SDGA-LS"):
            solver = make_cra_solver(name)
            assert solver.name.upper().startswith(name.split("-")[0].upper()) or True
        with pytest.raises(ConfigurationError):
            make_cra_solver("UNKNOWN")

    def test_all_jra_method_names_resolve(self):
        for name in ("BFS", "BBA", "ILP", "CP", "CP-FIRST"):
            make_jra_solver(name)
        with pytest.raises(ConfigurationError):
            make_jra_solver("UNKNOWN")

    def test_run_cra_methods_keys_and_feasibility(self):
        problem = make_problem(num_papers=10, num_reviewers=7, num_topics=10, seed=1)
        results = run_cra_methods(problem, methods=("SM", "SDGA"), config=TINY)
        assert set(results) == {"SM", "SDGA"}
        for result in results.values():
            problem.validate_assignment(result.assignment)


class TestCRAQualityExperiment:
    @pytest.fixture(scope="class")
    def quality_result(self):
        return run_cra_quality(
            dataset="DB08", group_size=3, methods=FAST_METHODS, config=TINY
        )

    def test_dataset_problem_is_scaled(self):
        problem = build_dataset_problem("DB08", group_size=3, config=TINY)
        assert problem.num_papers <= 40
        assert problem.group_size == 3

    def test_all_methods_present(self, quality_result):
        assert set(quality_result.results) == set(FAST_METHODS)

    def test_optimality_ratios_are_sane(self, quality_result):
        ratios = quality_result.optimality_ratios()
        for value in ratios.values():
            assert 0.0 < value <= 1.0 + 1e-9
        # The paper's headline result: SDGA-SRA dominates SM.
        assert ratios["SDGA-SRA"] >= ratios["SM"] - 1e-9
        assert ratios["SDGA-SRA"] >= ratios["Greedy"] - 0.02

    def test_tables_render(self, quality_result):
        assert "Optimality ratio" in quality_result.optimality_table().to_text()
        assert "Response time" in quality_result.timing_table().to_text()
        assert "Superiority" in quality_result.superiority_table().to_text()
        assert "Lowest coverage" in quality_result.lowest_coverage_table().to_text()

    def test_superiority_breakdowns(self, quality_result):
        breakdown = quality_result.superiority_of("SDGA-SRA")
        assert "SM" in breakdown and "SDGA-SRA" not in breakdown
        for entry in breakdown.values():
            assert 0.0 <= entry["superiority"] <= 1.0

    def test_lowest_coverage_values(self, quality_result):
        lowest = quality_result.lowest_coverage()
        for value in lowest.values():
            assert 0.0 <= value <= 1.0


class TestJRAScalabilityExperiments:
    def test_group_size_sweep(self):
        table = run_group_size_scalability(
            group_sizes=(2, 3), num_candidates=25, methods=("BFS", "BBA"), config=TINY_JRA
        )
        assert table.column("delta_p") == [2, 3]
        bfs_scores = table.column("BFS score")
        bba_scores = table.column("BBA score")
        for bfs, bba in zip(bfs_scores, bba_scores):
            assert bfs == pytest.approx(bba)

    def test_pool_size_sweep(self):
        table = run_pool_size_scalability(
            pool_sizes=(15, 25), group_size=2, methods=("BFS", "BBA"), config=TINY_JRA
        )
        assert table.column("R") == [15, 25]

    def test_topk_sweep(self):
        table = run_topk_experiment(k_values=(1, 5, 20), num_candidates=20,
                                    group_size=2, config=TINY_JRA)
        assert table.column("k") == [1, 5, 20]
        best_scores = table.column("best score")
        kth_scores = table.column("k-th score")
        for best, kth in zip(best_scores, kth_scores):
            assert kth <= best + 1e-12
        # The best score is independent of k.
        assert best_scores[0] == pytest.approx(best_scores[-1])

    def test_cp_comparison(self):
        table = run_cp_comparison(num_candidates=12, group_size=2, config=TINY_JRA)
        methods = table.column("method")
        scores = dict(zip(methods, table.column("score")))
        assert scores["CP"] == pytest.approx(scores["BBA"])
        assert scores["CP-FIRST"] <= scores["BBA"] + 1e-12


class TestRefinementExperiments:
    def test_refinement_comparison_table(self):
        table = run_refinement_comparison(
            dataset="DB08", group_size=3, time_budgets=(0.2,), config=TINY
        )
        assert len(table.rows) == 1
        sra_ratio = table.column("SDGA-SRA ratio")[0]
        base_ratio = table.column("SDGA ratio")[0]
        ls_ratio = table.column("SDGA-LS ratio")[0]
        assert sra_ratio >= base_ratio - 1e-9
        assert ls_ratio >= base_ratio - 1e-9

    def test_omega_sensitivity_table(self):
        table = run_omega_sensitivity(dataset="DB08", group_size=3, omegas=(2, 4),
                                      config=TINY)
        assert table.column("omega") == [2, 4]
        rounds = table.column("rounds")
        assert rounds[1] >= rounds[0]


class TestCaseStudy:
    def test_pick_interdisciplinary_paper(self):
        problem = make_problem(num_papers=12, num_reviewers=8, num_topics=10, seed=2)
        paper_id = pick_interdisciplinary_paper(problem)
        assert paper_id in problem.paper_ids

    def test_case_study_reports(self):
        result = run_case_study(
            dataset="DB08", group_size=3, methods=("Greedy", "SDGA-SRA"),
            top_topic_count=4, config=TINY,
        )
        assert set(result.reports) == {"Greedy", "SDGA-SRA"}
        assert len(result.top_topics) == 4
        table = result.to_table()
        assert len(table.rows) == 2
        reviewers = result.reviewer_table()
        assert len(reviewers.rows) == 2
        scores = result.scores()
        assert all(0.0 <= value <= 1.0 for value in scores.values())


class TestScoringAblation:
    def test_toy_example_matches_table6(self):
        table = scoring_toy_example()
        rows = {row[0]: row for row in table.rows}
        assert rows["weighted_coverage"][3] == "r2"
        assert rows["reviewer_coverage"][3] == "r1"
        assert rows["dot_product"][3] == "r1"
        assert rows["paper_coverage"][3] == "r1"

    @pytest.mark.parametrize("scoring", ["reviewer_coverage", "dot_product"])
    def test_alternative_objectives_keep_sdga_sra_on_top(self, scoring):
        result = run_scoring_ablation(
            scoring, dataset="DB08", group_size=3, methods=("SM", "SDGA-SRA"), config=TINY
        )
        ratios = result.optimality_ratios()
        assert ratios["SDGA-SRA"] >= ratios["SM"] - 1e-9

    def test_h_index_scaling_experiment(self):
        result = run_h_index_scaling(
            dataset="DB08", group_size=3, methods=("SM", "SDGA"), config=TINY
        )
        ratios = result.optimality_ratios()
        assert ratios["SDGA"] >= ratios["SM"] - 1e-9
