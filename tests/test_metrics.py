"""Unit tests for quality metrics and per-paper analysis."""

from __future__ import annotations

import pytest

from repro.core.assignment import Assignment
from repro.core.entities import Paper, Reviewer
from repro.core.problem import WGRAPProblem
from repro.core.vectors import TopicVector
from repro.cra.ideal import ideal_assignment
from repro.cra.sdga import StageDeepeningGreedySolver
from repro.cra.stable_matching import StableMatchingSolver
from repro.exceptions import ConfigurationError
from repro.metrics.analysis import coverage_histogram, paper_topic_coverage
from repro.metrics.quality import (
    coverage_score,
    lowest_coverage_score,
    mean_coverage_score,
    optimality_ratio,
    superiority_ratio,
)


def _toy_problem():
    papers = [
        Paper(id="p1", vector=TopicVector([0.5, 0.5, 0.0]), title="First"),
        Paper(id="p2", vector=TopicVector([0.0, 0.5, 0.5]), title="Second"),
    ]
    reviewers = [
        Reviewer(id="r1", vector=TopicVector([0.6, 0.2, 0.2]), name="Alice"),
        Reviewer(id="r2", vector=TopicVector([0.2, 0.6, 0.2]), name="Bob"),
        Reviewer(id="r3", vector=TopicVector([0.2, 0.2, 0.6]), name="Carol"),
    ]
    return WGRAPProblem(papers=papers, reviewers=reviewers, group_size=2)


class TestQualityMetrics:
    def test_coverage_and_mean(self):
        problem = _toy_problem()
        assignment = Assignment(
            [("r1", "p1"), ("r2", "p1"), ("r2", "p2"), ("r3", "p2")]
        )
        total = coverage_score(problem, assignment)
        assert total == pytest.approx(problem.assignment_score(assignment))
        assert mean_coverage_score(problem, assignment) == pytest.approx(total / 2)
        assert lowest_coverage_score(problem, assignment) == pytest.approx(
            min(problem.paper_scores(assignment).values())
        )

    def test_optimality_ratio_bounds(self, small_problem):
        ideal = ideal_assignment(small_problem)
        sdga = StageDeepeningGreedySolver().solve(small_problem)
        ratio = optimality_ratio(small_problem, sdga.assignment, ideal=ideal)
        assert 0.0 < ratio <= 1.0 + 1e-9
        # Recomputing the ideal inside the function gives the same number.
        assert optimality_ratio(small_problem, sdga.assignment) == pytest.approx(ratio)

    def test_optimality_ratio_ordering_matches_scores(self, small_problem):
        ideal = ideal_assignment(small_problem)
        sdga = StageDeepeningGreedySolver().solve(small_problem)
        stable = StableMatchingSolver().solve(small_problem)
        assert optimality_ratio(small_problem, sdga.assignment, ideal) >= optimality_ratio(
            small_problem, stable.assignment, ideal
        ) - 1e-12

    def test_superiority_ratio_breakdown(self):
        problem = _toy_problem()
        strong = Assignment([("r1", "p1"), ("r2", "p1"), ("r2", "p2"), ("r3", "p2")])
        weak = Assignment([("r1", "p1"), ("r3", "p1"), ("r1", "p2"), ("r3", "p2")])
        breakdown = superiority_ratio(problem, strong, weak)
        assert breakdown.total == 2
        assert breakdown.wins + breakdown.ties + breakdown.losses == 2
        assert 0.0 <= breakdown.superiority <= 1.0
        assert breakdown.superiority >= breakdown.strict_superiority
        reverse = superiority_ratio(problem, weak, strong)
        assert reverse.wins == breakdown.losses
        assert reverse.ties == breakdown.ties

    def test_superiority_against_itself_is_all_ties(self):
        problem = _toy_problem()
        assignment = Assignment([("r1", "p1"), ("r2", "p1"), ("r2", "p2"), ("r3", "p2")])
        breakdown = superiority_ratio(problem, assignment, assignment)
        assert breakdown.ties == problem.num_papers
        assert breakdown.superiority == pytest.approx(1.0)
        assert breakdown.tie_ratio == pytest.approx(1.0)

    def test_superiority_rejects_negative_tolerance(self):
        problem = _toy_problem()
        assignment = Assignment([("r1", "p1")])
        with pytest.raises(ConfigurationError):
            superiority_ratio(problem, assignment, assignment, tolerance=-1.0)


class TestAnalysis:
    def test_paper_topic_coverage_report(self):
        problem = _toy_problem()
        assignment = Assignment([("r1", "p1"), ("r2", "p1"), ("r2", "p2"), ("r3", "p2")])
        report = paper_topic_coverage(problem, assignment, "p1")
        assert report.paper_id == "p1"
        assert report.paper_title == "First"
        assert report.reviewer_ids == ("r1", "r2")
        assert report.reviewer_names == ("Alice", "Bob")
        assert report.score == pytest.approx(problem.paper_score(assignment, "p1"))
        assert len(report.topics) == problem.num_topics
        topic0 = report.topics[0]
        assert topic0.paper_weight == pytest.approx(0.5)
        assert topic0.group_weight == pytest.approx(0.6)
        assert topic0.covered_weight == pytest.approx(0.5)
        assert topic0.best_reviewer_id == "r1"
        assert topic0.is_fully_covered

    def test_top_topics_selection(self):
        problem = _toy_problem()
        assignment = Assignment([("r1", "p1"), ("r2", "p1")])
        report = paper_topic_coverage(problem, assignment, "p1")
        top = report.top_topics(2)
        assert len(top) == 2
        assert {entry.topic for entry in top} == {0, 1}

    def test_report_for_unassigned_paper(self):
        problem = _toy_problem()
        report = paper_topic_coverage(problem, Assignment(), "p2")
        assert report.reviewer_ids == ()
        assert report.score == 0.0
        assert all(entry.best_reviewer_id is None for entry in report.topics)

    def test_coverage_histogram(self, small_problem):
        assignment = StageDeepeningGreedySolver().solve(small_problem).assignment
        histogram = coverage_histogram(small_problem, assignment, bins=5)
        assert len(histogram) == 5
        assert sum(count for _, _, count in histogram) == small_problem.num_papers
        assert histogram[0][0] == pytest.approx(0.0)
        assert histogram[-1][1] == pytest.approx(1.0)

    def test_coverage_histogram_validation(self, small_problem):
        assignment = StageDeepeningGreedySolver().solve(small_problem).assignment
        with pytest.raises(ConfigurationError):
            coverage_histogram(small_problem, assignment, bins=0)
