"""Tests for :mod:`repro.fault` — the deterministic failpoint harness.

Pins the design rules of the chaos layer: a closed site vocabulary that
fails loudly on typos, deterministic seedable firing modes, an
off-by-default hot path, env-variable and wire-protocol arming, and the
``internal`` classification of an injected fault surfacing through a
request.
"""

from __future__ import annotations

import pytest

from repro.data.synthetic import make_problem
from repro.exceptions import ConfigurationError
from repro.fault import (
    FAILPOINT_SITES,
    FIRE_MODES,
    FailpointRegistry,
    FaultInjected,
    get_failpoints,
)
from repro.obs.metrics import get_registry
from repro.service.engine import AssignmentEngine
from repro.service.requests import (
    Fault,
    RequestError,
    request_from_dict,
    request_to_dict,
)
from repro.service.session import EngineSession


@pytest.fixture(autouse=True)
def _clean_failpoints():
    get_failpoints().reset()
    yield
    get_failpoints().reset()


def fire_pattern(registry: FailpointRegistry, site: str, hits: int) -> list[bool]:
    pattern = []
    for _ in range(hits):
        try:
            registry.hit(site)
            pattern.append(False)
        except FaultInjected:
            pattern.append(True)
    return pattern


class TestRegistry:
    def test_sites_are_dot_free_single_segments(self):
        # Site names embed into the ``fault.<site>.injections`` metric
        # pattern, whose placeholder matches exactly one path segment.
        for site in FAILPOINT_SITES:
            assert "." not in site and site

    def test_disarmed_sites_never_fire(self):
        registry = FailpointRegistry()
        assert fire_pattern(registry, "wal_append", 50) == [False] * 50

    def test_unknown_site_and_mode_fail_loudly(self):
        registry = FailpointRegistry()
        with pytest.raises(ConfigurationError):
            registry.configure("wal_apend", "always")  # the typo scenario
        with pytest.raises(ConfigurationError):
            registry.configure("wal_append", "sometimes")
        with pytest.raises(ConfigurationError):
            registry.reset("wal_apend")

    def test_always_mode(self):
        registry = FailpointRegistry()
        registry.configure("wal_append", "always")
        assert fire_pattern(registry, "wal_append", 3) == [True] * 3

    def test_once_mode_disarms_after_firing(self):
        registry = FailpointRegistry()
        registry.configure("wal_append", "once")
        assert fire_pattern(registry, "wal_append", 4) == [True, False, False, False]

    def test_nth_mode_fires_exactly_on_the_nth_hit(self):
        registry = FailpointRegistry()
        registry.configure("tenant_worker", "nth", n=3)
        assert fire_pattern(registry, "tenant_worker", 5) == [
            False, False, True, False, False,
        ]

    def test_nth_requires_n(self):
        registry = FailpointRegistry()
        with pytest.raises(ConfigurationError):
            registry.configure("tenant_worker", "nth")
        with pytest.raises(ConfigurationError):
            registry.configure("tenant_worker", "nth", n=0)

    def test_probability_is_seed_deterministic(self):
        def pattern(seed: int) -> list[bool]:
            registry = FailpointRegistry()
            registry.configure("socket_write", "probability", probability=0.5, seed=seed)
            return fire_pattern(registry, "socket_write", 40)

        assert pattern(7) == pattern(7)  # replayable chaos
        assert pattern(7) != pattern(8)  # and actually random
        assert any(pattern(7)) and not all(pattern(7))

    def test_probability_bounds_are_validated(self):
        registry = FailpointRegistry()
        with pytest.raises(ConfigurationError):
            registry.configure("socket_write", "probability")
        with pytest.raises(ConfigurationError):
            registry.configure("socket_write", "probability", probability=1.5)

    def test_off_mode_disarms(self):
        registry = FailpointRegistry()
        registry.configure("wal_append", "always")
        registry.configure("wal_append", "off")
        assert fire_pattern(registry, "wal_append", 3) == [False] * 3

    def test_reset_all_sites(self):
        registry = FailpointRegistry()
        registry.configure("wal_append", "always")
        registry.configure("solver_call", "always")
        registry.reset()
        assert fire_pattern(registry, "wal_append", 1) == [False]
        assert fire_pattern(registry, "solver_call", 1) == [False]

    def test_firing_increments_the_metrics(self):
        registry_metrics = get_registry()
        total = registry_metrics.counter("fault.injections", "")
        site = registry_metrics.counter("fault.wal_append.injections", "")
        before_total, before_site = total.value, site.value
        registry = FailpointRegistry()
        registry.configure("wal_append", "once")
        assert fire_pattern(registry, "wal_append", 2) == [True, False]
        assert total.value - before_total == 1
        assert site.value - before_site == 1

    def test_describe_reports_every_site(self):
        registry = FailpointRegistry()
        registry.configure("tenant_worker", "nth", n=2)
        body = registry.describe()
        assert set(body) == set(FAILPOINT_SITES)
        assert body["tenant_worker"]["mode"] == "nth"
        assert body["tenant_worker"]["n"] == 2
        assert body["wal_append"]["mode"] == "off"

    def test_mode_vocabulary_is_closed(self):
        assert set(FIRE_MODES) == {"off", "always", "once", "nth", "probability"}


class TestEnvParsing:
    def test_parses_a_comma_list(self):
        registry = FailpointRegistry(
            env="wal_append=once, tenant_worker=nth:3,socket_write=probability:0.25",
            seed=5,
        )
        body = registry.describe()
        assert body["wal_append"]["mode"] == "once"
        assert body["tenant_worker"]["n"] == 3
        assert body["socket_write"]["probability"] == 0.25

    @pytest.mark.parametrize("text", [
        "wal_append",                 # no '='
        "wal_append=nth",             # missing argument
        "wal_append=nth:zero",        # unparseable argument
        "wal_append=probability:2",   # out of range
        "wal_append=always:1",        # argument where none is taken
        "nope=always",                # unknown site
    ])
    def test_malformed_entries_raise(self, text):
        with pytest.raises(ConfigurationError):
            FailpointRegistry(env=text)

    def test_blank_entries_are_skipped(self):
        registry = FailpointRegistry(env=" , wal_append=always , ")
        assert registry.describe()["wal_append"]["mode"] == "always"


class TestWireProtocol:
    def test_fault_request_round_trips(self):
        request = request_from_dict({
            "kind": "fault", "site": "tenant_worker", "mode": "nth",
            "n": 3, "seed": 9, "id": "f1",
        })
        assert isinstance(request, Fault)
        payload = request_to_dict(request)
        assert payload["site"] == "tenant_worker"
        assert payload["mode"] == "nth"
        assert payload["n"] == 3
        assert request_from_dict(payload) == request

    def test_site_without_mode_is_a_request_error(self):
        with pytest.raises(RequestError):
            request_from_dict({"kind": "fault", "site": "wal_append"})

    def session(self) -> EngineSession:
        problem = make_problem(
            num_papers=6, num_reviewers=6, num_topics=5, group_size=2,
            reviewer_workload=4, conflict_ratio=0.0, seed=3,
        )
        return EngineSession(AssignmentEngine(problem))

    def test_fault_request_arms_and_introspects(self):
        session = self.session()
        response = session.dispatch(request_from_dict({
            "kind": "fault", "site": "solver_call", "mode": "once",
        }))
        assert response.ok
        assert response.payload["sites"]["solver_call"]["mode"] == "once"
        response = session.dispatch(request_from_dict({"kind": "fault"}))
        assert response.ok  # introspection only, nothing re-armed
        assert response.payload["sites"]["solver_call"]["mode"] == "once"
        get_failpoints().reset()

    def test_injected_solver_fault_is_a_structured_internal_error(self):
        session = self.session()
        assert session.dispatch(request_from_dict({
            "kind": "fault", "site": "solver_call", "mode": "once",
        })).ok
        failed = session.dispatch(request_from_dict({
            "kind": "solve", "solver": "Greedy",
        }))
        assert not failed.ok
        assert failed.error_type == "internal"
        assert "solver_call" in failed.error
        # The once-mode disarmed: the very next solve succeeds.
        assert session.dispatch(request_from_dict({
            "kind": "solve", "solver": "Greedy",
        })).ok

    def test_unknown_site_over_the_wire_is_a_configuration_error(self):
        session = self.session()
        response = session.dispatch(request_from_dict({
            "kind": "fault", "site": "nope", "mode": "always",
        }))
        assert not response.ok
        assert response.error_type == "configuration"

    def test_reset_over_the_wire(self):
        session = self.session()
        session.dispatch(request_from_dict({
            "kind": "fault", "site": "solver_call", "mode": "always",
        }))
        response = session.dispatch(request_from_dict({
            "kind": "fault", "reset": True,
        }))
        assert response.ok
        assert response.payload["sites"]["solver_call"]["mode"] == "off"
