"""The ``wgrap store`` command group: import/export round-trips, bitwise.

The CSV and JSON snapshot formats both promise bitwise vector fidelity
(space-joined ``repr`` floats resp. JSON ``repr`` floats), and the SQLite
store keeps raw ``<f8`` blobs — so any chain of import/export hops must
reproduce the exact same problem file.  These tests drive the real CLI
entry point (``main(argv)``), not the library functions.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.data.io import load_problem
from repro.store import SqliteProblemStore
from repro.store.csvio import export_problem_csv, import_problem_csv


@pytest.fixture
def problem_file(tmp_path):
    path = tmp_path / "problem.json"
    assert (
        main(
            [
                "generate",
                str(path),
                "--papers", "9",
                "--reviewers", "11",
                "--topics", "7",
                "--group-size", "2",
                "--workload", "4",
                "--seed", "5",
            ]
        )
        == 0
    )
    return path


class TestImportExportJson:
    def test_json_round_trip_is_bitwise(self, problem_file, tmp_path, capsys):
        db = tmp_path / "p.db"
        out = tmp_path / "back.json"
        assert main(["store", "import", str(problem_file), str(db)]) == 0
        assert main(["store", "export", str(db), str(out)]) == 0
        original = json.loads(problem_file.read_text())
        recovered = json.loads(out.read_text())
        assert original == recovered  # bitwise: repr floats survive the blobs
        captured = capsys.readouterr().out
        assert "imported 11 reviewers" in captured
        assert "exported 11 reviewers" in captured

    def test_solve_from_store_matches_file(self, problem_file, tmp_path):
        db = tmp_path / "p.db"
        assert main(["store", "import", str(problem_file), str(db)]) == 0
        a_file = tmp_path / "a.json"
        a_store = tmp_path / "b.json"
        assert main(
            ["solve", str(problem_file), str(a_file), "--method", "Greedy"]
        ) == 0
        assert main(
            ["solve", "--store", str(db), str(a_store), "--method", "Greedy"]
        ) == 0
        assert json.loads(a_file.read_text()) == json.loads(a_store.read_text())

    def test_solve_rejects_both_sources(self, problem_file, tmp_path, capsys):
        db = tmp_path / "p.db"
        assert main(["store", "import", str(problem_file), str(db)]) == 0
        code = main(
            [
                "solve", "--store", str(db),
                str(problem_file), str(tmp_path / "x.json"),
                "--method", "Greedy",
            ]
        )
        assert code == 2
        assert "exactly one" in capsys.readouterr().err


class TestImportExportCsv:
    def test_csv_round_trip_is_bitwise(self, problem_file, tmp_path):
        db = tmp_path / "p.db"
        csv_dir = tmp_path / "snapshot"
        db2 = tmp_path / "q.db"
        out = tmp_path / "back.json"
        assert main(["store", "import", str(problem_file), str(db)]) == 0
        assert main(["store", "export", str(db), str(csv_dir)]) == 0
        assert (csv_dir / "meta.json").exists()
        assert main(["store", "import", str(csv_dir), str(db2), "--blocks"]) == 0
        assert main(["store", "export", str(db2), str(out)]) == 0
        assert json.loads(problem_file.read_text()) == json.loads(out.read_text())

    def test_csv_carries_bids(self, problem_file, tmp_path):
        problem = load_problem(str(problem_file))
        bids = (
            (problem.reviewer_ids[0], problem.paper_ids[0], 1.0),
            (problem.reviewer_ids[2], problem.paper_ids[3], 0.25),
        )
        csv_dir = export_problem_csv(problem, tmp_path / "snap", bids)
        reloaded, recovered = import_problem_csv(csv_dir)
        assert recovered == bids
        db = tmp_path / "with-bids.db"
        assert main(["store", "import", str(csv_dir), str(db)]) == 0
        store = SqliteProblemStore.open(db)
        try:
            assert store.load_bids() == tuple(sorted(bids))
        finally:
            store.close()

    def test_csv_vectors_are_bitwise(self, problem_file, tmp_path):
        problem = load_problem(str(problem_file))
        reloaded, _ = import_problem_csv(
            export_problem_csv(problem, tmp_path / "snap")
        )
        np.testing.assert_array_equal(
            np.asarray(problem.reviewer_matrix), np.asarray(reloaded.reviewer_matrix)
        )
        np.testing.assert_array_equal(
            np.asarray(problem.paper_matrix), np.asarray(reloaded.paper_matrix)
        )

    def test_import_rejects_non_snapshot_directory(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="meta.json"):
            main(["store", "import", str(empty), str(tmp_path / "x.db")])


class TestInfo:
    def test_info_reports_rows_and_indexes(self, problem_file, tmp_path, capsys):
        db = tmp_path / "p.db"
        assert main(["store", "import", str(problem_file), str(db)]) == 0
        capsys.readouterr()
        assert main(["store", "info", str(db)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "sqlite"
        assert payload["reviewer_rows"] == 11
        assert payload["paper_rows"] == 9
        assert "topic_index" in payload["indexes"]
        assert payload["schema_version"] == 1
