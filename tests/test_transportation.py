"""Unit tests for the capacitated one-per-row assignment (Stage-WGRAP step)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.assignment.transportation import solve_capacitated_assignment
from repro.exceptions import ConfigurationError, InfeasibleProblemError


class TestValidation:
    def test_rejects_empty_matrix(self):
        with pytest.raises(ConfigurationError):
            solve_capacitated_assignment(np.zeros((0, 2)), np.array([1, 1]))

    def test_rejects_capacity_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            solve_capacitated_assignment(np.ones((2, 3)), np.array([1, 1]))

    def test_rejects_negative_capacity(self):
        with pytest.raises(ConfigurationError):
            solve_capacitated_assignment(np.ones((1, 2)), np.array([-1, 2]))

    def test_rejects_insufficient_capacity(self):
        with pytest.raises(InfeasibleProblemError):
            solve_capacitated_assignment(np.ones((3, 2)), np.array([1, 1]))

    def test_rejects_bad_forbidden_shape(self):
        with pytest.raises(ConfigurationError):
            solve_capacitated_assignment(
                np.ones((2, 2)), np.array([2, 2]), forbidden=np.zeros((1, 2), dtype=bool)
            )

    def test_rejects_fully_forbidden_row(self):
        forbidden = np.array([[True, True], [False, False]])
        with pytest.raises(InfeasibleProblemError):
            solve_capacitated_assignment(np.ones((2, 2)), np.array([2, 2]), forbidden=forbidden)

    def test_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            solve_capacitated_assignment(np.ones((1, 1)), np.array([1]), backend="magic")


class TestOptimality:
    def test_unit_capacities_reduce_to_assignment(self):
        profit = np.array([[1.0, 5.0], [5.0, 1.0]])
        result = solve_capacitated_assignment(profit, np.array([1, 1]))
        assert result.row_to_col == (1, 0)
        assert result.total_profit == pytest.approx(10.0)

    def test_capacity_allows_column_reuse(self):
        profit = np.array([[5.0, 1.0], [5.0, 1.0], [5.0, 1.0]])
        result = solve_capacitated_assignment(profit, np.array([3, 3]))
        assert result.row_to_col == (0, 0, 0)
        assert result.total_profit == pytest.approx(15.0)

    def test_capacity_forces_spreading(self):
        profit = np.array([[5.0, 1.0], [5.0, 1.0], [5.0, 1.0]])
        result = solve_capacitated_assignment(profit, np.array([2, 2]))
        assert sorted(result.row_to_col).count(0) == 2
        assert result.total_profit == pytest.approx(11.0)

    def test_forbidden_pairs_avoided(self):
        profit = np.array([[10.0, 1.0], [10.0, 1.0]])
        forbidden = np.array([[True, False], [False, False]])
        result = solve_capacitated_assignment(profit, np.array([1, 1]), forbidden=forbidden)
        assert result.row_to_col == (1, 0)
        assert result.total_profit == pytest.approx(11.0)

    def test_as_pairs(self):
        result = solve_capacitated_assignment(np.ones((2, 1)), np.array([2]))
        assert result.as_pairs() == [(0, 0), (1, 0)]


class TestBackendsAgree:
    @pytest.mark.parametrize("shape,capacity", [((4, 3), 2), ((6, 4), 3), ((5, 5), 1)])
    def test_hungarian_and_flow_give_equal_objectives(self, shape, capacity):
        rng = np.random.default_rng(shape[0] * 10 + shape[1])
        profit = rng.random(shape)
        capacities = np.full(shape[1], capacity)
        forbidden = rng.random(shape) < 0.1
        forbidden[forbidden.all(axis=1)] = False  # keep every row assignable
        hungarian = solve_capacitated_assignment(
            profit, capacities, forbidden=forbidden, backend="hungarian"
        )
        flow = solve_capacitated_assignment(
            profit, capacities, forbidden=forbidden, backend="flow"
        )
        assert hungarian.total_profit == pytest.approx(flow.total_profit)

    def test_capacity_constraint_respected(self):
        rng = np.random.default_rng(9)
        profit = rng.random((8, 3))
        capacities = np.array([3, 3, 2])
        result = solve_capacitated_assignment(profit, capacities)
        counts = np.bincount(np.array(result.row_to_col), minlength=3)
        assert np.all(counts <= capacities)
