"""Tests for the extensions: bid-aware assignment and incremental updates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.entities import Paper
from repro.core.vectors import TopicVector
from repro.cra.sdga import StageDeepeningGreedySolver
from repro.data.synthetic import SyntheticWorkloadGenerator, make_problem
from repro.exceptions import ConfigurationError, InfeasibleProblemError
from repro.extensions.bidding import (
    BidAwareObjective,
    BidAwareSDGASolver,
    BidMatrix,
    bid_satisfaction,
)
from repro.extensions.incremental import assign_additional_paper, withdraw_reviewer


class TestBidMatrix:
    def test_set_get_defaults(self):
        bids = BidMatrix({("r1", "p1"): 0.75})
        assert bids.get("r1", "p1") == 0.75
        assert bids.get("r1", "p2") == 0.0
        assert ("r1", "p1") in bids
        assert len(bids) == 1
        assert list(bids.pairs()) == [("r1", "p1", 0.75)]

    def test_value_validation(self):
        with pytest.raises(ConfigurationError):
            BidMatrix({("r1", "p1"): 1.5})
        with pytest.raises(ConfigurationError):
            BidMatrix().set("", "p1", 0.5)

    def test_from_levels(self):
        bids = BidMatrix.from_levels({("r1", "p1"): "eager", ("r2", "p1"): "Maybe"})
        assert bids.get("r1", "p1") == 1.0
        assert bids.get("r2", "p1") == pytest.approx(0.4)
        with pytest.raises(ConfigurationError):
            BidMatrix.from_levels({("r1", "p1"): "love it"})

    def test_random_bids_align_with_problem(self, small_problem):
        bids = BidMatrix.random(small_problem, bid_probability=0.3, seed=1)
        assert len(bids) > 0
        dense = bids.dense(small_problem)
        assert dense.shape == (small_problem.num_papers, small_problem.num_reviewers)
        assert dense.max() <= 1.0
        for reviewer_id, paper_id, value in bids.pairs():
            assert reviewer_id in small_problem.reviewer_ids
            assert paper_id in small_problem.paper_ids
            assert 0.0 < value <= 1.0

    def test_random_bids_validation(self, small_problem):
        with pytest.raises(ConfigurationError):
            BidMatrix.random(small_problem, bid_probability=0.0)

    def test_dense_ignores_unknown_entities(self, small_problem):
        bids = BidMatrix({("ghost", "paper-0000"): 0.5})
        assert bids.dense(small_problem).sum() == 0.0


class TestBidAwareObjective:
    def test_value_decomposition(self, small_problem):
        bids = BidMatrix.random(small_problem, seed=2)
        objective = BidAwareObjective(bids=bids, tradeoff=0.5)
        assignment = StageDeepeningGreedySolver().solve(small_problem).assignment
        combined = objective.value(small_problem, assignment)
        assert combined == pytest.approx(
            objective.coverage_component(small_problem, assignment)
            + 0.5 * objective.bid_component(assignment)
        )

    def test_tradeoff_validation(self):
        with pytest.raises(ConfigurationError):
            BidAwareObjective(bids=BidMatrix(), tradeoff=-1.0)

    def test_bid_satisfaction_bounds(self, small_problem):
        bids = BidMatrix.random(small_problem, seed=3)
        assignment = StageDeepeningGreedySolver().solve(small_problem).assignment
        value = bid_satisfaction(assignment, bids)
        assert 0.0 <= value <= 1.0
        assert bid_satisfaction(Assignment(), bids) == 0.0


class TestBidAwareSDGA:
    def test_zero_tradeoff_matches_plain_sdga(self, small_problem):
        bids = BidMatrix.random(small_problem, seed=4)
        plain = StageDeepeningGreedySolver().solve(small_problem)
        bid_aware = BidAwareSDGASolver(BidAwareObjective(bids=bids, tradeoff=0.0)).solve(
            small_problem
        )
        assert bid_aware.score == pytest.approx(plain.score)

    def test_produces_feasible_assignment(self, small_problem):
        bids = BidMatrix.random(small_problem, seed=5)
        result = BidAwareSDGASolver(BidAwareObjective(bids=bids, tradeoff=0.5)).solve(
            small_problem
        )
        small_problem.validate_assignment(result.assignment)
        assert result.stats["combined_objective"] >= result.score - 1e-9

    def test_larger_tradeoff_never_reduces_bid_component(self, small_problem):
        bids = BidMatrix.random(small_problem, bid_probability=0.4, seed=6)
        low = BidAwareSDGASolver(BidAwareObjective(bids=bids, tradeoff=0.0)).solve(
            small_problem
        )
        high = BidAwareSDGASolver(BidAwareObjective(bids=bids, tradeoff=2.0)).solve(
            small_problem
        )
        assert high.stats["bid_component"] >= low.stats["bid_component"] - 1e-9
        # And the coverage it gives up for that is bounded by what it gains.
        assert high.score <= low.score + 1e-9 or high.stats["bid_component"] >= low.stats[
            "bid_component"
        ]

    def test_combined_objective_beats_plain_sdga_on_combined_metric(self, small_problem):
        bids = BidMatrix.random(small_problem, bid_probability=0.4, seed=7)
        objective = BidAwareObjective(bids=bids, tradeoff=1.0)
        plain = StageDeepeningGreedySolver().solve(small_problem)
        bid_aware = BidAwareSDGASolver(objective).solve(small_problem)
        assert objective.value(small_problem, bid_aware.assignment) >= objective.value(
            small_problem, plain.assignment
        ) - 1e-9


class TestIncrementalPaperArrival:
    def _late_paper(self, problem):
        rng = np.random.default_rng(99)
        vector = rng.dirichlet(np.full(problem.num_topics, 0.5))
        return Paper(id="late-submission", vector=TopicVector(vector), title="Late")

    def test_adds_and_staffs_the_new_paper(self):
        problem = make_problem(num_papers=10, num_reviewers=8, num_topics=8,
                               group_size=2, reviewer_workload=4, seed=11)
        assignment = StageDeepeningGreedySolver().solve(problem).assignment
        update = assign_additional_paper(problem, assignment, self._late_paper(problem))
        assert update.problem.num_papers == problem.num_papers + 1
        assert update.assignment.group_size("late-submission") == problem.group_size
        update.problem.validate_assignment(update.assignment)
        assert update.affected_papers == ("late-submission",)
        # Existing groups are untouched.
        for paper_id in problem.paper_ids:
            assert update.assignment.reviewers_of(paper_id) == assignment.reviewers_of(paper_id)

    def test_rejects_duplicate_paper(self, small_problem):
        assignment = StageDeepeningGreedySolver().solve(small_problem).assignment
        with pytest.raises(ConfigurationError):
            assign_additional_paper(
                small_problem, assignment, small_problem.papers[0]
            )

    def test_requires_spare_capacity(self):
        # Minimal workload: capacity is exactly exhausted by the assignment.
        problem = make_problem(num_papers=8, num_reviewers=4, num_topics=6,
                               group_size=2, seed=13)
        assert problem.reviewer_workload * problem.num_reviewers == (
            problem.num_papers * problem.group_size
        )
        assignment = StageDeepeningGreedySolver().solve(problem).assignment
        with pytest.raises(InfeasibleProblemError):
            assign_additional_paper(problem, assignment, self._late_paper(problem))
        # Raising the workload makes it possible.
        update = assign_additional_paper(
            problem, assignment, self._late_paper(problem),
            reviewer_workload=problem.reviewer_workload + 1,
        )
        assert update.assignment.group_size("late-submission") == problem.group_size


class TestReviewerWithdrawal:
    def test_reassigns_the_withdrawn_reviewers_papers(self):
        problem = make_problem(num_papers=10, num_reviewers=8, num_topics=8,
                               group_size=2, reviewer_workload=5, seed=17)
        assignment = StageDeepeningGreedySolver().solve(problem).assignment
        victim = max(problem.reviewer_ids, key=assignment.load)
        affected_before = assignment.papers_of(victim)

        update = withdraw_reviewer(problem, assignment, victim)
        assert victim not in update.problem.reviewer_ids
        assert set(update.affected_papers) == set(affected_before)
        update.problem.validate_assignment(update.assignment)
        for paper_id in update.problem.paper_ids:
            assert victim not in update.assignment.reviewers_of(paper_id)

    def test_unknown_reviewer_rejected(self, small_problem):
        assignment = StageDeepeningGreedySolver().solve(small_problem).assignment
        with pytest.raises(KeyError):
            withdraw_reviewer(small_problem, assignment, "nobody")

    def test_inputs_are_not_mutated(self):
        problem = make_problem(num_papers=8, num_reviewers=7, num_topics=6,
                               group_size=2, reviewer_workload=4, seed=19)
        assignment = StageDeepeningGreedySolver().solve(problem).assignment
        before_pairs = set(assignment.pairs())
        victim = problem.reviewer_ids[0]
        withdraw_reviewer(problem, assignment, victim)
        assert set(assignment.pairs()) == before_pairs
        assert victim in problem.reviewer_ids


class TestIncrementalConflictVersionStaleness:
    """PR-5 audit of the incremental pair-delta path (the same
    conflict-version staleness class fixed in the JRA sub-problem cache in
    PR 4): conflict edits made *between* incremental calls must be
    observed by the next call, because the delta pipeline keys every
    consumer on ``WGRAPProblem.versions``."""

    def _staffed(self, seed: int = 5):
        problem = make_problem(num_papers=8, num_reviewers=8, num_topics=6,
                               group_size=2, reviewer_workload=4, seed=seed,
                               conflict_ratio=0.0)
        assignment = StageDeepeningGreedySolver().solve(problem).assignment
        return problem, assignment

    def test_conflict_edit_between_calls_steers_the_repair(self):
        problem, assignment = self._staffed()
        rng = np.random.default_rng(0)
        late = Paper(id="late", vector=TopicVector(rng.dirichlet(np.full(6, 0.7))))
        update = assign_additional_paper(problem, assignment, late)

        # Live conflict edit between the two incremental calls: forbid an
        # outsider on paper-0000, then withdraw one of its reviewers.  The
        # refill must not hand the slot to the newly conflicted reviewer.
        group = update.assignment.reviewers_of("paper-0000")
        banned = next(
            rid for rid in update.problem.reviewer_ids if rid not in group
        )
        update.problem.conflicts.add(banned, "paper-0000")
        victim = sorted(group)[0]
        second = withdraw_reviewer(update.problem, update.assignment, victim)

        assert banned not in second.assignment.reviewers_of("paper-0000")
        second.problem.validate_assignment(second.assignment)
        # The version counters are what the pipeline keys on; the edit
        # must be reflected there, not just in the container contents.
        assert second.problem.conflicts.is_conflict(banned, "paper-0000")

    def test_conflict_edit_invalidating_a_pair_fails_the_next_call(self):
        from repro.exceptions import InfeasibleAssignmentError

        problem, assignment = self._staffed(seed=6)
        reviewer_id, paper_id = sorted(assignment.pairs())[0]
        problem.conflicts.add(reviewer_id, paper_id)
        rng = np.random.default_rng(1)
        late = Paper(id="late", vector=TopicVector(rng.dirichlet(np.full(6, 0.7))))
        with pytest.raises(InfeasibleAssignmentError):
            assign_additional_paper(problem, assignment, late)

    def test_pair_delta_is_exact_after_conflict_edits(self):
        """The reported added/removed pair delta must describe exactly the
        difference between the input and output assignments, conflict
        edits in between notwithstanding."""
        problem, assignment = self._staffed(seed=7)
        group = assignment.reviewers_of(problem.paper_ids[0])
        banned = next(rid for rid in problem.reviewer_ids if rid not in group)
        problem.conflicts.add(banned, problem.paper_ids[0])
        victim = sorted(group)[0]
        update = withdraw_reviewer(problem, assignment, victim)

        before = set(assignment.pairs())
        after = set(update.assignment.pairs())
        assert set(update.added_pairs) == after - before
        assert set(update.removed_pairs) == before - after
        assert all(paper in update.affected_papers or reviewer != victim
                   for reviewer, paper in update.removed_pairs)
