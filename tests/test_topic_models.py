"""Unit tests for LDA, the Author-Topic Model and EM paper inference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import SyntheticCorpusGenerator
from repro.exceptions import ConfigurationError
from repro.topics.atm import AuthorTopicModel
from repro.topics.corpus import Corpus, Document
from repro.topics.em import infer_document_vectors, infer_topic_mixture
from repro.topics.lda import LatentDirichletAllocation


@pytest.fixture(scope="module")
def synthetic_corpus():
    """A small synthetic corpus with known ground-truth topics."""
    generator = SyntheticCorpusGenerator(
        num_topics=4, words_per_topic=12, background_words=10, seed=11
    )
    return generator.generate(
        num_authors=12,
        publications_per_author=(2, 4),
        num_submissions=8,
        tokens_per_document=(40, 70),
    )


class TestLDA:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            LatentDirichletAllocation(num_topics=0)
        with pytest.raises(ConfigurationError):
            LatentDirichletAllocation(num_topics=3, alpha=0.0)
        with pytest.raises(ConfigurationError):
            LatentDirichletAllocation(num_topics=3, iterations=0)

    def test_fit_produces_valid_distributions(self, synthetic_corpus):
        model = LatentDirichletAllocation(num_topics=4, iterations=30, seed=0).fit(
            synthetic_corpus.publications
        )
        assert model.num_topics == 4
        assert model.topic_word.shape[1] == synthetic_corpus.publications.num_words
        assert np.allclose(model.topic_word.sum(axis=1), 1.0)
        assert np.allclose(model.document_topic.sum(axis=1), 1.0)
        assert np.all(model.topic_word >= 0)
        assert len(model.log_likelihood_trace) == 30

    def test_log_likelihood_generally_improves(self, synthetic_corpus):
        model = LatentDirichletAllocation(num_topics=4, iterations=30, seed=1).fit(
            synthetic_corpus.publications
        )
        trace = model.log_likelihood_trace
        assert trace[-1] > trace[0]

    def test_topics_separate_signature_words(self, synthetic_corpus):
        """Each learned topic should be dominated by one ground-truth block."""
        corpus = synthetic_corpus.publications
        model = LatentDirichletAllocation(num_topics=4, iterations=60, seed=2).fit(corpus)
        blocks = set()
        for topic in range(4):
            top_words = model.top_words(topic, corpus.vocabulary, count=5)
            prefixes = [word[:7] for word in top_words if word.startswith("topic")]
            if prefixes:
                blocks.add(max(set(prefixes), key=prefixes.count))
        # The sampler should discover at least three of the four blocks.
        assert len(blocks) >= 3

    def test_deterministic_given_seed(self, synthetic_corpus):
        first = LatentDirichletAllocation(num_topics=3, iterations=10, seed=5).fit(
            synthetic_corpus.publications
        )
        second = LatentDirichletAllocation(num_topics=3, iterations=10, seed=5).fit(
            synthetic_corpus.publications
        )
        assert np.allclose(first.topic_word, second.topic_word)

    @pytest.mark.parametrize("seed", [0, 13])
    def test_sampler_identical_to_textbook_reference(self, synthetic_corpus, seed):
        """The batched sampler is bit-identical to the per-token formulation.

        The reference below is the pre-optimisation textbook collapsed
        Gibbs loop (per-token gathers, fresh temporaries, one rng.random()
        call per token).  The production sampler reorganises the arithmetic
        — transposed counts, preallocated buffers, batched initialisation
        and per-document uniform draws — but must consume the random
        stream the same way and round identically at every step.
        """
        corpus = synthetic_corpus.publications
        model = LatentDirichletAllocation(num_topics=4, iterations=8, seed=seed).fit(
            corpus
        )
        reference_topic_word, reference_document_topic = _reference_lda(
            corpus, num_topics=4, alpha=0.1, beta=0.01, iterations=8, seed=seed
        )
        assert np.array_equal(model.topic_word, reference_topic_word)
        assert np.array_equal(model.document_topic, reference_document_topic)


def _reference_lda(corpus, num_topics, alpha, beta, iterations, seed):
    """Textbook per-token collapsed Gibbs sampler (the pinned reference)."""
    rng = np.random.default_rng(seed)
    num_words = corpus.num_words
    documents = [
        np.asarray(corpus.encoded_document(d), dtype=np.int64)
        for d in range(corpus.num_documents)
    ]
    document_topic_counts = np.zeros((corpus.num_documents, num_topics))
    topic_word_counts = np.zeros((num_topics, num_words))
    topic_totals = np.zeros(num_topics)
    assignments = []
    for document_index, words in enumerate(documents):
        topics = rng.integers(0, num_topics, size=words.size)
        assignments.append(topics)
        for word, topic in zip(words, topics):
            document_topic_counts[document_index, topic] += 1
            topic_word_counts[topic, word] += 1
            topic_totals[topic] += 1
    for _ in range(iterations):
        for document_index, words in enumerate(documents):
            topics = assignments[document_index]
            for position in range(words.size):
                word = words[position]
                old_topic = topics[position]
                document_topic_counts[document_index, old_topic] -= 1
                topic_word_counts[old_topic, word] -= 1
                topic_totals[old_topic] -= 1
                weights = (
                    (document_topic_counts[document_index] + alpha)
                    * (topic_word_counts[:, word] + beta)
                    / (topic_totals + beta * num_words)
                )
                threshold = rng.random() * weights.sum()
                new_topic = int(np.searchsorted(np.cumsum(weights), threshold))
                topics[position] = new_topic
                document_topic_counts[document_index, new_topic] += 1
                topic_word_counts[new_topic, word] += 1
                topic_totals[new_topic] += 1
    topic_word = (topic_word_counts + beta) / (
        topic_totals[:, None] + beta * num_words
    )
    document_topic = (document_topic_counts + alpha) / (
        document_topic_counts.sum(axis=1, keepdims=True) + alpha * num_topics
    )
    return topic_word, document_topic


class TestAuthorTopicModel:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            AuthorTopicModel(num_topics=0)
        with pytest.raises(ConfigurationError):
            AuthorTopicModel(num_topics=3, beta=0.0)

    def test_requires_authors(self):
        corpus = Corpus([Document(id="d", tokens=("alpha", "beta"))])
        with pytest.raises(ConfigurationError):
            AuthorTopicModel(num_topics=2, iterations=5).fit(corpus)

    def test_fit_produces_valid_distributions(self, synthetic_corpus):
        model = AuthorTopicModel(num_topics=4, iterations=30, seed=0).fit(
            synthetic_corpus.publications
        )
        assert model.num_topics == 4
        assert model.author_topic.shape == (
            len(synthetic_corpus.publications.authors), 4
        )
        assert np.allclose(model.author_topic.sum(axis=1), 1.0, atol=1e-6)
        assert np.allclose(model.topic_word.sum(axis=1), 1.0, atol=1e-6)
        assert model.authors == synthetic_corpus.publications.authors

    def test_author_vector_lookup(self, synthetic_corpus):
        model = AuthorTopicModel(num_topics=4, iterations=20, seed=0).fit(
            synthetic_corpus.publications
        )
        author = synthetic_corpus.publications.authors[0]
        vector = model.author_vector(author)
        assert vector.shape == (4,)
        assert vector.sum() == pytest.approx(1.0, abs=1e-6)

    def test_focused_authors_get_focused_vectors(self, synthetic_corpus):
        """Authors generated with 1-3 focus topics should not look uniform."""
        model = AuthorTopicModel(num_topics=4, iterations=60, seed=3).fit(
            synthetic_corpus.publications
        )
        peak_share = model.author_topic.max(axis=1).mean()
        assert peak_share > 1.5 / 4  # clearly above the uniform 0.25

    def test_top_words(self, synthetic_corpus):
        corpus = synthetic_corpus.publications
        model = AuthorTopicModel(num_topics=4, iterations=30, seed=0).fit(corpus)
        words = model.top_words(0, corpus.vocabulary, count=3)
        assert len(words) == 3
        assert all(isinstance(word, str) for word in words)


class TestEMInference:
    def test_recovers_a_pure_topic_document(self):
        topic_word = np.array([
            [0.9, 0.05, 0.05],
            [0.05, 0.9, 0.05],
        ])
        word_ids = [1, 1, 1, 1, 1]
        result = infer_topic_mixture(word_ids, topic_word)
        assert result.converged
        assert result.mixture[1] > 0.9

    def test_empty_document_gives_uniform_mixture(self):
        topic_word = np.ones((3, 4)) / 4
        result = infer_topic_mixture([], topic_word)
        assert result.mixture == pytest.approx(np.full(3, 1 / 3))

    def test_mixture_is_normalised(self):
        rng = np.random.default_rng(0)
        topic_word = rng.dirichlet(np.ones(6), size=4)
        result = infer_topic_mixture([0, 3, 5, 2, 2], topic_word)
        assert result.mixture.sum() == pytest.approx(1.0)
        assert np.all(result.mixture >= 0)

    def test_log_likelihood_is_monotone_across_iterations(self):
        rng = np.random.default_rng(1)
        topic_word = rng.dirichlet(np.ones(8), size=3)
        words = rng.integers(0, 8, size=30).tolist()
        short = infer_topic_mixture(words, topic_word, max_iterations=1)
        long = infer_topic_mixture(words, topic_word, max_iterations=50)
        assert long.log_likelihood >= short.log_likelihood - 1e-9

    def test_input_validation(self):
        with pytest.raises(ConfigurationError):
            infer_topic_mixture([0], np.ones(3))
        with pytest.raises(ConfigurationError):
            infer_topic_mixture([5], np.ones((2, 3)) / 3)

    def test_batch_inference(self, synthetic_corpus):
        vocabulary = synthetic_corpus.publications.vocabulary
        encoded = [
            vocabulary.encode(document.tokens)
            for document in synthetic_corpus.submissions[:4]
        ]
        vectors = infer_document_vectors(encoded, synthetic_corpus.topic_word)
        assert vectors.shape == (4, synthetic_corpus.topic_word.shape[0])
        assert np.allclose(vectors.sum(axis=1), 1.0)

    def test_em_recovers_submission_mixtures_with_true_topics(self, synthetic_corpus):
        """With the ground-truth topics, EM should correlate with the truth."""
        vocabulary = synthetic_corpus.publications.vocabulary
        # Map the generator's vocabulary (by construction word index order)
        # onto the corpus vocabulary.
        words = SyntheticCorpusGenerator(
            num_topics=4, words_per_topic=12, background_words=10, seed=11
        ).vocabulary_words
        correlations = []
        for index, document in enumerate(synthetic_corpus.submissions):
            encoded_truth_ids = [
                words.index(token) for token in document.tokens
            ]
            inferred = infer_topic_mixture(
                encoded_truth_ids, synthetic_corpus.topic_word
            ).mixture
            truth = synthetic_corpus.true_submission_mixtures[index]
            dominant_truth = int(np.argmax(truth))
            correlations.append(int(np.argmax(inferred)) == dominant_truth)
            _ = vocabulary  # corpus vocabulary exercised elsewhere
        assert sum(correlations) >= len(correlations) * 0.7
