"""Integer Linear Programming baseline for JRA.

The paper's second exact baseline formulates JRA as an ILP and solves it
with ``lp_solve``.  We reproduce the formulation and solve it with the
branch-and-bound driver of :mod:`repro.optimize` (own simplex or SciPy
HiGHS relaxations).

Formulation
-----------
For reviewers ``r`` and topics ``t`` with per-topic contribution
``cov[t, r] = f(r[t], p[t])`` (``f`` being the scoring function's
contribution, e.g. ``min`` for weighted coverage):

* binary ``x_r``          — reviewer ``r`` is selected,
* continuous ``w_{t,r}``  — reviewer ``r`` is the designated coverer of ``t``,
* continuous ``z_t``      — achieved contribution on topic ``t``.

maximise ``sum_t z_t`` subject to::

    sum_r x_r            = delta_p
    w_{t,r}             <= x_r            for all t, r
    sum_r w_{t,r}       <= 1              for all t
    z_t                 <= sum_r w_{t,r} * cov[t, r]   for all t

Because every scoring function in the library is monotone in the reviewer
expertise, the designated-coverer trick reproduces the group aggregation
``f(max_{r in g} r[t], p[t])`` exactly, so the ILP optimum equals the JRA
optimum (divided by the paper's topic mass, which is a constant).

This baseline is intentionally slow on large instances — that is exactly
what Figures 9 and 14 of the paper demonstrate — so the solver accepts node
and time limits.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.problem import JRAProblem
from repro.jra.base import JRASolver
from repro.optimize.branch_and_bound import BranchAndBoundSolver as ILPDriver
from repro.optimize.model import ModelBuilder, Sense

__all__ = ["ILPSolver"]


class ILPSolver(JRASolver):
    """Exact (given enough budget) ILP solver for JRA.

    Parameters
    ----------
    backend:
        Relaxation backend passed to the branch-and-bound driver
        (``"auto"``, ``"simplex"`` or ``"highs"``).
    node_limit, time_limit:
        Search budget; when exhausted the best incumbent found so far is
        returned and the result is flagged as not proven optimal.
    """

    name = "ILP"

    def __init__(
        self,
        backend: str = "auto",
        node_limit: int = 50_000,
        time_limit: float | None = None,
    ) -> None:
        self._backend = backend
        self._node_limit = node_limit
        self._time_limit = time_limit

    def _solve(
        self, problem: JRAProblem
    ) -> tuple[tuple[str, ...], float, bool, dict[str, Any]]:
        scoring = problem.scoring
        reviewer_matrix = problem.reviewer_matrix
        paper_vector = problem.paper_vector
        num_reviewers = problem.num_reviewers
        num_topics = problem.num_topics
        denominator = float(paper_vector.sum())

        # Per-topic contribution of every reviewer: cov[t, r].
        coverage = scoring.topic_contribution(
            reviewer_matrix, paper_vector[None, :]
        ).T  # (T, R)

        builder = ModelBuilder()
        select = [builder.add_binary_variable(f"x_{r}") for r in range(num_reviewers)]
        designate = [
            [builder.add_variable(f"w_{t}_{r}", lower=0.0, upper=1.0) for r in range(num_reviewers)]
            for t in range(num_topics)
        ]
        max_coverage_per_topic = coverage.max(axis=1)
        achieved = [
            builder.add_variable(
                f"z_{t}", lower=0.0, upper=float(max(max_coverage_per_topic[t], 0.0))
            )
            for t in range(num_topics)
        ]

        builder.add_constraint(
            {index: 1.0 for index in select}, Sense.EQUAL, float(problem.group_size)
        )
        for t in range(num_topics):
            for r in range(num_reviewers):
                builder.add_constraint(
                    {designate[t][r]: 1.0, select[r]: -1.0}, Sense.LESS_EQUAL, 0.0
                )
            builder.add_constraint(
                {designate[t][r]: 1.0 for r in range(num_reviewers)},
                Sense.LESS_EQUAL,
                1.0,
            )
            coefficients = {achieved[t]: 1.0}
            for r in range(num_reviewers):
                value = float(coverage[t, r])
                if value != 0.0:
                    coefficients[designate[t][r]] = -value
            builder.add_constraint(coefficients, Sense.LESS_EQUAL, 0.0)

        builder.set_objective({index: 1.0 for index in achieved})
        program = builder.build()

        driver = ILPDriver(
            backend=self._backend,
            node_limit=self._node_limit,
            time_limit=self._time_limit,
        )
        solution = driver.solve(program)

        selected = [
            index
            for index, variable in enumerate(select)
            if solution.values[variable] > 0.5
        ]
        # Guard against budget exhaustion leaving a fractional incumbent of
        # the wrong cardinality: fall back to the best rounding.
        if len(selected) != problem.group_size:
            order = np.argsort(-solution.values[np.asarray(select)])
            selected = [int(index) for index in order[: problem.group_size]]

        reviewer_ids = tuple(problem.reviewer_ids[index] for index in selected)
        score = problem.group_score(reviewer_ids)
        stats: dict[str, Any] = {
            "nodes_explored": solution.nodes_explored,
            "backend": driver.backend,
            "objective_numerator": solution.objective,
        }
        if denominator > 0.0:
            stats["objective_normalised"] = solution.objective / denominator
        return reviewer_ids, score, solution.is_optimal, stats
