"""Top-k reviewer group retrieval (Figure 15 of the paper).

The paper notes that BBA "can easily be adapted to return the top-k
reviewer sets by replacing bsf by a heap structure".  This module exposes
that capability as a convenience function so journal editors can inspect a
ranked shortlist of candidate groups instead of a single answer.

For large pools the query can additionally be answered through an **exact
pruned candidate pool**: solve on the top-``prune`` candidates by pair
score, then certify the answer with an admissible bound — any group using
a reviewer outside the pool scores at most the sum of the ``delta_p - 1``
best pair scores plus the best outside pair score (submodularity:
``score(G) <= sum of the members' solo scores``).  When the k-th best
in-pool group strictly beats that bound (by :data:`~repro.core.delta.PRUNE_MARGIN`),
the shortlist is provably the global answer; otherwise the query falls
back to the full pool.  This differs from the engine's heuristic
``pool_size`` pruning, which trades quality for speed without a
certificate.

Exactness caveat: the certified answer has **bitwise-identical scores**
to the full-pool answer.  Group *identity* can differ only when several
distinct groups score exactly equal (possible under the discrete
winner-takes-all scorings): branch and bound keeps the first optimum it
discovers, and restricting the pool changes discovery order among the
tied optima.  ``tests/test_property_pruning.py`` pins exactly this
contract.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.delta import PRUNE_MARGIN, ViewStats
from repro.core.problem import JRAProblem
from repro.exceptions import ConfigurationError
from repro.jra.bba import BranchAndBoundSolver
from repro.jra.brute_force import BruteForceSolver

__all__ = ["RankedGroup", "find_top_k_groups"]


@dataclass(frozen=True)
class RankedGroup:
    """One entry of a top-k shortlist."""

    rank: int
    reviewer_ids: tuple[str, ...]
    score: float


def _make_solver(method: str, k: int):
    # Request exactly k groups: asking for more than needed used to force
    # the heap-tracking mode (and its weaker k-th-best pruning bound) even
    # for plain best-group queries, making k=1 shortlists measurably
    # slower than a direct solve for no benefit.
    if method == "bba":
        return BranchAndBoundSolver(top_k=k)
    if method == "bfs":
        return BruteForceSolver(top_k=k)
    raise ConfigurationError(f"unknown method {method!r}; use 'bba' or 'bfs'")


def _solve_ranked(problem: JRAProblem, k: int, method: str) -> list[RankedGroup]:
    result = _make_solver(method, k).solve(problem)
    ranked_pairs = result.stats.get("top_k", [(result.reviewer_ids, result.score)])
    return [
        RankedGroup(rank=rank, reviewer_ids=tuple(ids), score=float(score))
        for rank, (ids, score) in enumerate(ranked_pairs[:k], start=1)
    ]


def _pruned_top_k(
    problem: JRAProblem,
    k: int,
    method: str,
    width: int,
    candidate_scores: np.ndarray | None,
    stats: ViewStats | None,
) -> list[RankedGroup] | None:
    """The certified pruned-pool answer, or ``None`` when uncertifiable.

    Counts the outcome on ``stats``: ``prune_certified`` when the bound
    certifies the restricted answer, ``prune_fallbacks`` when pruning was
    *attempted* but could not certify.  A pool too small to prune (width
    covering every candidate) counts as neither — pruning was simply
    inapplicable.
    """
    num_candidates = problem.num_reviewers
    group_size = problem.group_size
    width = max(int(width), group_size)
    if width >= num_candidates:
        return None  # nothing to prune; not counted
    if candidate_scores is None:
        scores = problem.scoring.score_matrix(
            problem.reviewer_matrix, problem.paper_vector[None, :]
        )[:, 0]
    else:
        scores = np.asarray(candidate_scores, dtype=np.float64)
        if scores.shape != (num_candidates,):
            raise ConfigurationError(
                f"candidate_scores must have shape ({num_candidates},), "
                f"got {scores.shape}"
            )
    order = np.argsort(-scores, kind="stable")
    outside = order[width:]
    restricted = JRAProblem(
        paper=problem.paper,
        reviewers=problem.reviewers,
        group_size=group_size,
        excluded_reviewers=[problem.reviewer_ids[int(row)] for row in outside],
        scoring=problem.scoring,
    )
    shortlist = _solve_ranked(restricted, k, method)
    if len(shortlist) < k:
        # The pool cannot even produce k distinct groups: an attempted
        # prune that failed to certify.
        if stats is not None:
            stats.prune_fallbacks += 1
        return None
    # Admissible bound on any group touching the outside: the delta_p - 1
    # best solo scores overall (all inside the pool by construction) plus
    # the best outside solo score.
    bound = float(scores[order[: group_size - 1]].sum()) + float(
        scores[order[width]]
    )
    if shortlist[-1].score > bound + PRUNE_MARGIN:
        if stats is not None:
            stats.prune_certified += 1
        return shortlist
    if stats is not None:
        stats.prune_fallbacks += 1
    return None


def find_top_k_groups(
    problem: JRAProblem,
    k: int,
    method: str = "bba",
    prune: int | None = None,
    candidate_scores: np.ndarray | None = None,
    stats: ViewStats | None = None,
) -> list[RankedGroup]:
    """Return the ``k`` best reviewer groups for a single paper.

    Parameters
    ----------
    problem:
        The JRA instance.
    k:
        Number of groups to return (the actual list may be shorter when the
        candidate pool admits fewer than ``k`` distinct groups).
    method:
        ``"bba"`` (default) or ``"bfs"``; both are exact, BBA is the fast
        one.
    prune:
        When set, first solve on the top-``prune`` candidates by pair
        score and return that answer *only if* the admissible bound
        certifies no outside reviewer can participate in a top-k group;
        otherwise fall back to the full pool.  Exact either way.
    candidate_scores:
        Optional precomputed per-candidate pair scores aligned with
        ``problem.reviewer_ids`` (e.g. a column of the engine's score
        cache), saving the ``O(R x T)`` scoring pass of the pruned path.
    stats:
        Optional :class:`~repro.core.delta.ViewStats` receiving
        ``prune_certified`` / ``prune_fallbacks`` counts.

    Returns
    -------
    list[RankedGroup]
        Groups in descending score order, ranked from 1.
    """
    if k < 1:
        raise ConfigurationError("k must be at least 1")
    _make_solver(method, k)  # validate the method before any work
    if prune is not None and prune > 0:
        shortlist = _pruned_top_k(problem, k, method, prune, candidate_scores, stats)
        if shortlist is not None:
            return shortlist
    return _solve_ranked(problem, k, method)
