"""Top-k reviewer group retrieval (Figure 15 of the paper).

The paper notes that BBA "can easily be adapted to return the top-k
reviewer sets by replacing bsf by a heap structure".  This module exposes
that capability as a convenience function so journal editors can inspect a
ranked shortlist of candidate groups instead of a single answer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.problem import JRAProblem
from repro.exceptions import ConfigurationError
from repro.jra.bba import BranchAndBoundSolver
from repro.jra.brute_force import BruteForceSolver

__all__ = ["RankedGroup", "find_top_k_groups"]


@dataclass(frozen=True)
class RankedGroup:
    """One entry of a top-k shortlist."""

    rank: int
    reviewer_ids: tuple[str, ...]
    score: float


def find_top_k_groups(
    problem: JRAProblem, k: int, method: str = "bba"
) -> list[RankedGroup]:
    """Return the ``k`` best reviewer groups for a single paper.

    Parameters
    ----------
    problem:
        The JRA instance.
    k:
        Number of groups to return (the actual list may be shorter when the
        candidate pool admits fewer than ``k`` distinct groups).
    method:
        ``"bba"`` (default) or ``"bfs"``; both are exact, BBA is the fast
        one.

    Returns
    -------
    list[RankedGroup]
        Groups in descending score order, ranked from 1.
    """
    if k < 1:
        raise ConfigurationError("k must be at least 1")
    # Request exactly k groups: asking for more than needed used to force
    # the heap-tracking mode (and its weaker k-th-best pruning bound) even
    # for plain best-group queries, making k=1 shortlists measurably
    # slower than a direct solve for no benefit.
    if method == "bba":
        solver = BranchAndBoundSolver(top_k=k)
    elif method == "bfs":
        solver = BruteForceSolver(top_k=k)
    else:
        raise ConfigurationError(f"unknown method {method!r}; use 'bba' or 'bfs'")

    result = solver.solve(problem)
    ranked_pairs = result.stats.get("top_k", [(result.reviewer_ids, result.score)])
    shortlist = [
        RankedGroup(rank=rank, reviewer_ids=tuple(ids), score=float(score))
        for rank, (ids, score) in enumerate(ranked_pairs[:k], start=1)
    ]
    return shortlist
