"""Journal Reviewer Assignment (JRA) solvers — Section 3 of the paper.

All solvers here are *exact* (given enough search budget):

* :class:`~repro.jra.bba.BranchAndBoundSolver` — the paper's BBA, the fast one.
* :class:`~repro.jra.brute_force.BruteForceSolver` — exhaustive enumeration.
* :class:`~repro.jra.ilp.ILPSolver` — the ILP formulation solved by our
  branch-and-bound over LP relaxations.
* :class:`~repro.jra.cp.ConstraintProgrammingSolver` — a generic CP search
  with a weak bound, standing in for the commercial CP solver of the paper.
"""

from repro.jra.base import JRAResult, JRASolver
from repro.jra.bba import BranchAndBoundSolver
from repro.jra.brute_force import BruteForceSolver
from repro.jra.cp import ConstraintProgrammingSolver
from repro.jra.ilp import ILPSolver
from repro.jra.topk import RankedGroup, find_top_k_groups


def available_solvers() -> list[str]:
    """Canonical names of every registered journal-assignment solver.

    Solvers are registered in the string-keyed registry of
    :mod:`repro.service.registry` (imported lazily here to keep this
    package importable without the service subsystem); the CLI and the
    serving front end validate their ``--solver`` inputs against this
    list.
    """
    from repro.service.registry import available_solvers as _available

    return _available("jra")


__all__ = [
    "available_solvers",
    "JRAResult",
    "JRASolver",
    "BranchAndBoundSolver",
    "BruteForceSolver",
    "ConstraintProgrammingSolver",
    "ILPSolver",
    "RankedGroup",
    "find_top_k_groups",
]
