"""A constraint-programming style baseline for JRA.

Section 5.1 of the paper also tries a commercial constraint-programming
solver (IBM ILOG CPLEX CP Optimizer) on JRA and observes that it is orders
of magnitude slower than BBA, attributing this to the lack of a tight upper
bound in generic CP search.  This module reproduces that comparison with a
small, self-contained CP solver:

* decision variables are the ``delta_p`` group slots, each ranging over the
  reviewer pool;
* an all-different (and symmetry-breaking "increasing slots") constraint
  removes permutations of the same group;
* search is depth-first with chronological backtracking and the kind of
  *generic* optimistic bound a black-box CP solver can derive — the best
  single-reviewer score times the number of open slots — rather than BBA's
  per-topic cursor bound.

The solver is exact but, as in the paper, much slower than BBA; it also
exposes ``first_solution_only`` to reproduce the "time to first feasible
solution" measurement.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.problem import JRAProblem
from repro.jra.base import JRASolver

__all__ = ["ConstraintProgrammingSolver"]


class ConstraintProgrammingSolver(JRASolver):
    """Depth-first CP search over group slots with a generic bound.

    Parameters
    ----------
    first_solution_only:
        Return the first feasible group instead of searching for the
        optimum (mirrors the paper's 90 ms "first feasible assignment"
        measurement for CPLEX CP).
    node_limit:
        Safety cap on the number of search nodes; when reached the best
        incumbent is returned and flagged as not proven optimal.
    """

    name = "CP"

    def __init__(self, first_solution_only: bool = False, node_limit: int = 50_000_000) -> None:
        self._first_solution_only = first_solution_only
        self._node_limit = node_limit

    def _solve(
        self, problem: JRAProblem
    ) -> tuple[tuple[str, ...], float, bool, dict[str, Any]]:
        scoring = problem.scoring
        reviewer_matrix = problem.reviewer_matrix
        paper_vector = problem.paper_vector
        num_reviewers = problem.num_reviewers
        group_size = problem.group_size
        denominator = float(paper_vector.sum())

        def contribution(vector: np.ndarray) -> float:
            if denominator <= 0.0:
                return 0.0
            return float(scoring.topic_contribution(vector, paper_vector).sum()) / denominator

        # The generic bound available to a black-box CP solver: no single
        # additional reviewer can add more than the best single-reviewer
        # score, and the total score can never exceed the full-coverage 1.0
        # (for normalised papers) — both are far looser than BBA's bound.
        single_scores = scoring.gain_vector(
            np.zeros(problem.num_topics), reviewer_matrix, paper_vector
        )
        best_single = float(single_scores.max(initial=0.0))
        full_coverage = contribution(reviewer_matrix.max(axis=0))

        best_score = -np.inf
        best_group: tuple[int, ...] = ()
        nodes = 0
        exhausted = True
        found_first = False

        slots: list[int] = []
        group_stack = [np.zeros(problem.num_topics, dtype=np.float64)]

        def search(start: int) -> bool:
            """Depth-first search; returns True when the search must stop."""
            nonlocal best_score, best_group, nodes, exhausted, found_first
            if len(slots) == group_size:
                score = contribution(group_stack[-1])
                if score > best_score:
                    best_score = score
                    best_group = tuple(slots)
                found_first = True
                return self._first_solution_only
            remaining = group_size - len(slots)
            # Generic optimistic bound for the open slots.
            optimistic = min(
                contribution(group_stack[-1]) + remaining * best_single, full_coverage
            )
            if optimistic <= best_score + 1e-15:
                return False
            for candidate in range(start, num_reviewers - remaining + 1):
                nodes += 1
                if nodes > self._node_limit:
                    exhausted = False
                    return True
                slots.append(candidate)
                group_stack.append(
                    np.maximum(group_stack[-1], reviewer_matrix[candidate])
                )
                stop = search(candidate + 1)
                group_stack.pop()
                slots.pop()
                if stop:
                    return True
            return False

        search(0)

        if not best_group:
            best_group = tuple(range(group_size))
            best_score = contribution(reviewer_matrix[list(best_group)].max(axis=0))

        reviewer_ids = tuple(problem.reviewer_ids[index] for index in best_group)
        is_optimal = exhausted and not self._first_solution_only
        stats: dict[str, Any] = {
            "nodes_explored": nodes,
            "first_solution_only": self._first_solution_only,
        }
        return reviewer_ids, float(best_score), is_optimal, stats
