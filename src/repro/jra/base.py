"""Common interface for Journal Reviewer Assignment (JRA) solvers.

Every solver in :mod:`repro.jra` takes a :class:`~repro.core.problem.JRAProblem`
and returns a :class:`JRAResult`: the best reviewer group it found, the
group's coverage score and solver statistics (node counts, wall-clock time).
Exact solvers (brute force, BBA, ILP with an exhausted search tree, CP)
return provably optimal groups.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.core.problem import JRAProblem
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer

TRACER = get_tracer()

__all__ = ["JRAResult", "JRASolver"]


@dataclass(frozen=True)
class JRAResult:
    """Outcome of a JRA solver run.

    Attributes
    ----------
    reviewer_ids:
        The selected reviewer group (ids, in no particular order).
    score:
        Weighted coverage (or the configured scoring function) of the group.
    is_optimal:
        Whether the solver proved optimality.
    elapsed_seconds:
        Wall-clock time spent solving.
    stats:
        Solver-specific counters (nodes explored, combinations evaluated,
        prunings, ...), useful for the scalability experiments.
    """

    reviewer_ids: tuple[str, ...]
    score: float
    is_optimal: bool
    elapsed_seconds: float
    stats: Mapping[str, Any] = field(default_factory=dict)

    @property
    def group_size(self) -> int:
        """Number of reviewers in the returned group."""
        return len(self.reviewer_ids)


class JRASolver(ABC):
    """Base class for JRA solvers.

    Subclasses implement :meth:`_solve`; the public :meth:`solve` adds
    timing and input validation so all solvers report comparable statistics.
    """

    #: short name used in experiment reports ("BBA", "BFS", "ILP", "CP")
    name: str = "abstract"

    def solve(self, problem: JRAProblem) -> JRAResult:
        """Find a reviewer group of size ``problem.group_size``."""
        started = time.perf_counter()
        with TRACER.span(f"solver.{self.name}", kind="jra") as span:
            reviewer_ids, score, is_optimal, stats = self._solve(problem)
            elapsed = time.perf_counter() - started
            span.set(elapsed=round(elapsed, 6))
        get_registry().histogram(
            f"solver.{self.name}.seconds", "per-solver wall time"
        ).observe(elapsed)
        problem.validate_group(reviewer_ids)
        return JRAResult(
            reviewer_ids=tuple(reviewer_ids),
            score=float(score),
            is_optimal=bool(is_optimal),
            elapsed_seconds=elapsed,
            stats=dict(stats),
        )

    @abstractmethod
    def _solve(
        self, problem: JRAProblem
    ) -> tuple[tuple[str, ...], float, bool, dict[str, Any]]:
        """Return ``(reviewer_ids, score, is_optimal, stats)``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
