"""Brute Force Search (BFS) for JRA: enumerate every reviewer group.

The paper uses exhaustive enumeration as the first exact baseline for the
Journal Reviewer Assignment experiments (Figures 9, 14).  Its cost is
``C(R, delta_p)`` group evaluations, which explodes quickly — that is
exactly the behaviour the scalability figures demonstrate.

The implementation enumerates groups recursively, carrying the running
per-topic maximum so each extension costs ``O(T)`` instead of rebuilding
the group vector from scratch; this matches what a careful C++
implementation would do and keeps the baseline honest.
"""

from __future__ import annotations

import heapq
from typing import Any

import numpy as np

from repro.core.problem import JRAProblem
from repro.jra.base import JRASolver

__all__ = ["BruteForceSolver"]


class BruteForceSolver(JRASolver):
    """Exhaustive enumeration of all ``C(R, delta_p)`` reviewer groups.

    Parameters
    ----------
    top_k:
        When greater than one, the solver also records the ``top_k`` best
        groups (available through the ``stats["top_k"]`` entry of the
        result), mirroring the top-k capability of BBA.
    """

    name = "BFS"

    def __init__(self, top_k: int = 1) -> None:
        if top_k < 1:
            raise ValueError("top_k must be at least 1")
        self._top_k = top_k

    def _solve(
        self, problem: JRAProblem
    ) -> tuple[tuple[str, ...], float, bool, dict[str, Any]]:
        scoring = problem.scoring
        reviewer_matrix = problem.reviewer_matrix
        paper_vector = problem.paper_vector
        num_reviewers = problem.num_reviewers
        group_size = problem.group_size
        denominator = float(paper_vector.sum())

        evaluated = 0
        best_score = -np.inf
        best_group: tuple[int, ...] = ()
        # Min-heap of (score, tiebreak, group) used only when top_k > 1.
        top_heap: list[tuple[float, int, tuple[int, ...]]] = []

        # Depth-first enumeration with the running group maximum carried
        # along.  The innermost level — completing a group of depth
        # ``delta_p - 1`` with every remaining candidate — is scored as one
        # vectorised batch instead of one leaf node per candidate; the
        # candidates are then visited in the same (descending) order the
        # LIFO stack would have popped them, so ``evaluated`` counts, heap
        # tie-breaks and the returned group are unchanged.
        stack: list[tuple[int, tuple[int, ...], np.ndarray]] = [
            (0, (), np.zeros(problem.num_topics, dtype=np.float64))
        ]
        while stack:
            start, members, group_vector = stack.pop()
            depth = len(members)
            if depth == group_size - 1:
                if start >= num_reviewers:
                    continue
                extended = np.maximum(
                    group_vector[None, :], reviewer_matrix[start:]
                )
                if denominator > 0.0:
                    scores = (
                        scoring.topic_contribution(extended, paper_vector[None, :]).sum(
                            axis=1
                        )
                        / denominator
                    )
                else:
                    scores = np.zeros(num_reviewers - start, dtype=np.float64)
                for position in range(num_reviewers - start - 1, -1, -1):
                    score = float(scores[position])
                    evaluated += 1
                    if score > best_score:
                        best_score = score
                        best_group = members + (start + position,)
                    if self._top_k > 1:
                        entry = (score, evaluated, members + (start + position,))
                        if len(top_heap) < self._top_k:
                            heapq.heappush(top_heap, entry)
                        elif score > top_heap[0][0]:
                            heapq.heapreplace(top_heap, entry)
                continue
            # There must remain enough reviewers to complete the group.
            last_start = num_reviewers - (group_size - depth) + 1
            for candidate in range(start, last_start):
                extended = np.maximum(group_vector, reviewer_matrix[candidate])
                stack.append((candidate + 1, members + (candidate,), extended))

        reviewer_ids = tuple(problem.reviewer_ids[index] for index in best_group)
        stats: dict[str, Any] = {"groups_evaluated": evaluated}
        if self._top_k > 1:
            ranked = sorted(top_heap, key=lambda entry: (-entry[0], entry[1]))
            stats["top_k"] = [
                (tuple(problem.reviewer_ids[index] for index in members), score)
                for score, _, members in ranked
            ]
        return reviewer_ids, float(best_score), True, stats
