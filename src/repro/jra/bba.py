"""Branch-and-Bound Algorithm (BBA) for Journal Reviewer Assignment.

This is the paper's exact JRA solver (Section 3, Algorithm 1).  The search
space is the tree of reviewer combinations of depth ``delta_p``; BBA makes
it practical with three ingredients:

* **T sorted lists** — for every topic ``t`` the reviewers are pre-sorted
  by their expertise on ``t`` in descending order.
* **Branching** by marginal gain — at every stage the candidate reviewers
  are the ones currently pointed at by the per-topic cursors, and the one
  with the largest marginal gain (Definition 8) is tried first.
* **Bounding** — the per-topic cursors give an optimistic completion
  ``ub[t] = max(g[t], value at cursor t)``; if the coverage of that bound
  vector cannot beat the best group found so far, the branch is pruned and
  the search backtracks (Equation 3).

The solver is exact: pruning only removes branches whose upper bound is no
better than the incumbent.  Both the gain-based ordering and the bounding
can be disabled individually, which is used by the ablation benchmark to
quantify how much each contributes.

A ``top_k`` mode keeps the ``k`` best groups in a heap instead of a single
incumbent (Figure 15); pruning then compares against the k-th best score.

The default path runs the candidate front in index space: the T sorted
lists come pre-computed (and cached across solves) from
:meth:`JRAProblem.sorted_topic_lists
<repro.core.problem.JRAProblem.sorted_topic_lists>`, the per-node cursor
advance checks all T fronts in one gather and falls into the per-topic
walk only for the cursors actually blocked by a visited reviewer, and the
candidate set is deduplicated with one ``np.unique`` in first-occurrence
order.  ``use_dense=False`` keeps the historical per-topic cursor loops
as the conformance oracle; both paths visit the identical search tree
(same candidate order, same gains, same bounds) and return bitwise-equal
results.
"""

from __future__ import annotations

import heapq
from typing import Any

import numpy as np

from repro.core.problem import JRAProblem
from repro.jra.base import JRASolver
from repro.obs.trace import get_tracer

TRACER = get_tracer()

__all__ = ["BranchAndBoundSolver"]


class BranchAndBoundSolver(JRASolver):
    """Exact branch-and-bound JRA solver (the paper's BBA).

    Parameters
    ----------
    top_k:
        Number of best groups to retain.  With ``top_k == 1`` (default) the
        solver behaves exactly like Algorithm 1; with larger values the
        incumbent is replaced by a bounded heap and the result's
        ``stats["top_k"]`` lists the k best groups in descending order.
    use_bound:
        Disable to skip the upper-bound pruning (ablation only).
    use_gain_ordering:
        Disable to pick candidates in arbitrary (topic) order instead of by
        marginal gain (ablation only).
    use_dense:
        ``False`` selects the historical per-topic cursor loops instead of
        the vectorised candidate front (conformance oracle; identical
        search tree either way).
    """

    name = "BBA"

    def __init__(
        self,
        top_k: int = 1,
        use_bound: bool = True,
        use_gain_ordering: bool = True,
        use_dense: bool = True,
    ) -> None:
        if top_k < 1:
            raise ValueError("top_k must be at least 1")
        self._top_k = top_k
        self._use_bound = use_bound
        self._use_gain_ordering = use_gain_ordering
        self._use_dense = use_dense

    # ------------------------------------------------------------------
    # Core search
    # ------------------------------------------------------------------
    def _solve(
        self, problem: JRAProblem
    ) -> tuple[tuple[str, ...], float, bool, dict[str, Any]]:
        scoring = problem.scoring
        reviewer_matrix = problem.reviewer_matrix
        paper_vector = problem.paper_vector
        num_reviewers = problem.num_reviewers
        num_topics = problem.num_topics
        group_size = problem.group_size
        denominator = float(paper_vector.sum())

        # T sorted lists: sorted_reviewers[t] lists reviewer indices by
        # expertise on topic t, descending; sorted_values[t] the weights —
        # cached on the problem so repeat solves skip the pre-sort.
        sorted_reviewers, sorted_values = problem.sorted_topic_lists()

        def contribution(vector: np.ndarray) -> float:
            if denominator <= 0.0:
                return 0.0
            return float(scoring.topic_contribution(vector, paper_vector).sum()) / denominator

        # visited_stage[r] == 0 means "feasible"; otherwise it records the
        # stage at which the reviewer was visited along the current path.
        visited_stage = np.zeros(num_reviewers, dtype=np.int64)
        # One cursor array per stage (1-indexed); cursors[s][t] is a position
        # in sorted list t.
        cursors = [np.zeros(num_topics, dtype=np.int64) for _ in range(group_size + 1)]

        # Running group: member indices per stage and the running max vector
        # per stage (group_vectors[s] is the vector *before* stage s picks).
        members = np.full(group_size + 1, -1, dtype=np.int64)
        group_vectors = np.zeros((group_size + 2, num_topics), dtype=np.float64)

        nodes_expanded = 0
        prunings = 0
        complete_groups = 0

        # Incumbent bookkeeping: a bounded min-heap of the top_k best groups.
        incumbents: list[tuple[float, int, tuple[int, ...]]] = []
        tiebreak = 0

        def incumbent_threshold() -> float:
            if len(incumbents) < self._top_k:
                return -np.inf
            return incumbents[0][0]

        def record_group(group: tuple[int, ...], score: float) -> None:
            nonlocal tiebreak
            tiebreak += 1
            entry = (score, tiebreak, group)
            if len(incumbents) < self._top_k:
                heapq.heappush(incumbents, entry)
            elif score > incumbents[0][0]:
                heapq.heapreplace(incumbents, entry)

        stage = 1
        with TRACER.span("bba.search", group_size=group_size) as search_span:
            while stage >= 1:
                cursor = cursors[stage]
                group_vector = group_vectors[stage]

                # Advance every cursor of this stage past infeasible reviewers.
                if self._use_dense:
                    candidates = self._advance_front_vectorized(
                        cursor, visited_stage, sorted_reviewers, num_reviewers
                    )
                else:
                    candidates = self._advance_front_loops(
                        cursor, visited_stage, sorted_reviewers, num_reviewers, num_topics
                    )

                if not candidates:
                    stage = self._backtrack(stage, visited_stage, members)
                    continue

                # Bounding: optimistic completion uses the best remaining value
                # per topic (the value under each cursor).
                if self._use_bound:
                    cursor_values = np.where(
                        cursor < num_reviewers,
                        sorted_values[np.arange(num_topics), np.minimum(cursor, num_reviewers - 1)],
                        0.0,
                    )
                    upper_vector = np.maximum(group_vector, cursor_values)
                    if contribution(upper_vector) <= incumbent_threshold() + 1e-15:
                        prunings += 1
                        stage = self._backtrack(stage, visited_stage, members)
                        continue

                # Branching: evaluate the marginal gain of each candidate and
                # pick the best (or simply the first candidate when ordering is
                # disabled for the ablation study).
                if self._use_gain_ordering:
                    gains = scoring.gain_vector(
                        group_vector, reviewer_matrix[candidates], paper_vector
                    )
                    chosen = candidates[int(np.argmax(gains))]
                else:
                    chosen = candidates[0]

                nodes_expanded += 1
                visited_stage[chosen] = stage
                members[stage] = chosen
                extended_vector = np.maximum(group_vector, reviewer_matrix[chosen])

                if stage == group_size:
                    complete_groups += 1
                    score = contribution(extended_vector)
                    group = tuple(int(members[s]) for s in range(1, group_size + 1))
                    if score > incumbent_threshold() or len(incumbents) < self._top_k:
                        record_group(group, score)
                    # Stay at this stage and try the next candidate; the chosen
                    # reviewer remains visited at this stage so it is not retried.
                    members[stage] = -1
                else:
                    group_vectors[stage + 1] = extended_vector
                    cursors[stage + 1] = cursor.copy()
                    stage += 1
            search_span.set(nodes_expanded=nodes_expanded, prunings=prunings)

        if not incumbents:
            # Degenerate but possible when group_size > 0 and the paper has
            # zero topic mass: fall back to the lexicographically first group.
            fallback = tuple(range(group_size))
            record_group(fallback, 0.0)

        ranked = sorted(incumbents, key=lambda entry: (-entry[0], entry[1]))
        best_score, _, best_group = ranked[0]
        reviewer_ids = tuple(problem.reviewer_ids[index] for index in best_group)
        stats: dict[str, Any] = {
            "nodes_expanded": nodes_expanded,
            "prunings": prunings,
            "complete_groups_evaluated": complete_groups,
        }
        if self._top_k > 1:
            stats["top_k"] = [
                (tuple(problem.reviewer_ids[index] for index in group), score)
                for score, _, group in ranked
            ]
        return reviewer_ids, float(best_score), True, stats

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _advance_front_loops(
        cursor: np.ndarray,
        visited_stage: np.ndarray,
        sorted_reviewers: np.ndarray,
        num_reviewers: int,
        num_topics: int,
    ) -> list[int]:
        """The historical per-topic cursor walk (conformance oracle)."""
        candidates: list[int] = []
        candidate_set: set[int] = set()
        for topic in range(num_topics):
            position = cursor[topic]
            while (
                position < num_reviewers
                and visited_stage[sorted_reviewers[topic, position]] != 0
            ):
                position += 1
            cursor[topic] = position
            if position < num_reviewers:
                reviewer = int(sorted_reviewers[topic, position])
                if reviewer not in candidate_set:
                    candidate_set.add(reviewer)
                    candidates.append(reviewer)
        return candidates

    @staticmethod
    def _advance_front_vectorized(
        cursor: np.ndarray,
        visited_stage: np.ndarray,
        sorted_reviewers: np.ndarray,
        num_reviewers: int,
    ) -> list[int]:
        """The same candidate front with one gather instead of T Python loops.

        Only cursors whose front reviewer is currently visited fall into
        the per-topic walk (at most a handful per node: a cursor can only
        be blocked by a reviewer visited since the cursor array was
        copied).  Deduplication keeps first-occurrence topic order —
        exactly the list the loop oracle builds, so gain argmax
        tie-breaking and the ablation's ``candidates[0]`` pick are
        unchanged.
        """
        live = np.flatnonzero(cursor < num_reviewers)
        if live.size:
            front = sorted_reviewers[live, cursor[live]]
            blocked = live[visited_stage[front] != 0]
            for topic in blocked.tolist():
                position = cursor[topic]
                while (
                    position < num_reviewers
                    and visited_stage[sorted_reviewers[topic, position]] != 0
                ):
                    position += 1
                cursor[topic] = position
            if blocked.size:
                live = np.flatnonzero(cursor < num_reviewers)
        if live.size == 0:
            return []
        rows = sorted_reviewers[live, cursor[live]]
        # dict preserves insertion order = first-occurrence topic order.
        return list(dict.fromkeys(rows.tolist()))

    @staticmethod
    def _backtrack(
        stage: int, visited_stage: np.ndarray, members: np.ndarray
    ) -> int:
        """Reset the current stage and step back to the previous one.

        Resetting clears the "visited" marks made at this stage (so those
        reviewers become available again under a different ancestor) and
        removes the previous stage's tentative member from the running
        group — it stays visited at that previous stage, so the search will
        move on to a different reviewer there.
        """
        visited_stage[visited_stage == stage] = 0
        previous = stage - 1
        if previous >= 1 and members[previous] >= 0:
            members[previous] = -1
        return previous
