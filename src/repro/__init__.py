"""repro — Weighted Coverage based Reviewer Assignment (WGRAP).

A complete, self-contained reproduction of *"Weighted Coverage based
Reviewer Assignment"* (Kou, U, Mamoulis and Gong, SIGMOD 2015):

* the WGRAP problem model (topic vectors, weighted coverage, group
  expertise, workload constraints, conflicts of interest),
* the exact Branch-and-Bound solver for Journal Reviewer Assignment,
* the Stage Deepening Greedy Algorithm and its stochastic refinement for
  Conference Reviewer Assignment, plus every baseline the paper compares
  against,
* the substrates those algorithms need (Hungarian / min-cost-flow linear
  assignment, simplex + branch-and-bound ILP, an Author-Topic-Model
  pipeline, synthetic DBLP-like data),
* an experiment harness that regenerates every table and figure of the
  paper's evaluation,
* a long-lived assignment engine (:mod:`repro.service`) with an
  incrementally maintained score cache and a JSON-lines serving front
  end, and
* a worker-pool execution layer (:mod:`repro.parallel`): sharded
  score-matrix construction, CRA solver portfolios and deterministic
  experiment fan-out, all bit-compatible with the serial paths.

Quick start::

    from repro import make_problem, StageDeepeningGreedySolver

    problem = make_problem(num_papers=60, num_reviewers=25, group_size=3)
    result = StageDeepeningGreedySolver().solve(problem)
    print(result.score, len(result.assignment))
"""

from repro.core import (
    Assignment,
    ConflictOfInterest,
    JRAProblem,
    Paper,
    Reviewer,
    ReviewerGroup,
    TopicVector,
    WGRAPProblem,
    WorkloadConstraints,
    get_scoring_function,
    group_coverage,
    weighted_coverage,
)
from repro.cra import (
    BestReviewerGroupGreedySolver,
    GreedySolver,
    PairwiseILPSolver,
    SDGAWithLocalSearchSolver,
    SDGAWithRefinementSolver,
    StableMatchingSolver,
    StageDeepeningGreedySolver,
    StochasticRefiner,
    ideal_assignment,
)
from repro.data import SyntheticWorkloadGenerator, make_problem
from repro.jra import (
    BranchAndBoundSolver,
    BruteForceSolver,
    ConstraintProgrammingSolver,
    ILPSolver,
    find_top_k_groups,
)
from repro.metrics import optimality_ratio, superiority_ratio
from repro.parallel import ParallelConfig, run_portfolio
from repro.service import AssignmentEngine, EngineSession
from repro.topics import TopicExtractionPipeline

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # core
    "Assignment",
    "ConflictOfInterest",
    "JRAProblem",
    "Paper",
    "Reviewer",
    "ReviewerGroup",
    "TopicVector",
    "WGRAPProblem",
    "WorkloadConstraints",
    "get_scoring_function",
    "group_coverage",
    "weighted_coverage",
    # conference assignment
    "BestReviewerGroupGreedySolver",
    "GreedySolver",
    "PairwiseILPSolver",
    "SDGAWithLocalSearchSolver",
    "SDGAWithRefinementSolver",
    "StableMatchingSolver",
    "StageDeepeningGreedySolver",
    "StochasticRefiner",
    "ideal_assignment",
    # journal assignment
    "BranchAndBoundSolver",
    "BruteForceSolver",
    "ConstraintProgrammingSolver",
    "ILPSolver",
    "find_top_k_groups",
    # serving and parallel execution
    "AssignmentEngine",
    "EngineSession",
    "ParallelConfig",
    "run_portfolio",
    # data and metrics
    "SyntheticWorkloadGenerator",
    "make_problem",
    "optimality_ratio",
    "superiority_ratio",
    "TopicExtractionPipeline",
]
