"""Research-area and venue metadata mirroring Table 3 of the paper.

The paper simulates conferences from three areas over two years:

======== ============================================== ========= =========
Area     Submission venues                              #Papers   #Reviewers
======== ============================================== ========= =========
DM 2008  SIGKDD, ICDM, SDM, CIKM                        545       203 (KDD PC)
DM 2009  SIGKDD, ICDM, SDM, CIKM                        648       145
DB 2008  SIGMOD, VLDB, ICDE, PODS                       617       105 (SIGMOD PC)
DB 2009  SIGMOD, VLDB, ICDE, PODS                       513       90
TH 2008  STOC, FOCS, SODA                               281       228 (STOC PC)
TH 2009  STOC, FOCS, SODA                               226       222
======== ============================================== ========= =========

The synthetic generator uses these numbers (optionally scaled down) so the
regenerated experiments have the same relative sizes as the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["AreaSpec", "DatasetSpec", "AREAS", "DATASETS", "dataset_spec", "dataset_names"]


@dataclass(frozen=True)
class AreaSpec:
    """A research area: its venues and its slice of the topic space."""

    key: str
    name: str
    submission_venues: tuple[str, ...]
    reviewer_venue: str
    #: fraction of the topic space this area's papers concentrate on
    topic_share: float


@dataclass(frozen=True)
class DatasetSpec:
    """One experimental dataset (area x year) with the paper's sizes."""

    key: str
    area: AreaSpec
    year: int
    num_papers: int
    num_reviewers: int

    def scaled(self, scale: float) -> "DatasetSpec":
        """A proportionally smaller (or larger) copy of this dataset.

        Scaling keeps at least 20 papers and 10 reviewers so the WGRAP
        constraints remain meaningful.
        """
        if scale <= 0:
            raise ConfigurationError("scale must be positive")
        return DatasetSpec(
            key=self.key,
            area=self.area,
            year=self.year,
            num_papers=max(20, int(round(self.num_papers * scale))),
            num_reviewers=max(10, int(round(self.num_reviewers * scale))),
        )


_DATA_MINING = AreaSpec(
    key="DM",
    name="Data Mining",
    submission_venues=("SIGKDD", "ICDM", "SDM", "CIKM"),
    reviewer_venue="SIGKDD",
    topic_share=1.0 / 3.0,
)
_DATABASES = AreaSpec(
    key="DB",
    name="Databases",
    submission_venues=("SIGMOD", "VLDB", "ICDE", "PODS"),
    reviewer_venue="SIGMOD",
    topic_share=1.0 / 3.0,
)
_THEORY = AreaSpec(
    key="TH",
    name="Theory",
    submission_venues=("STOC", "FOCS", "SODA"),
    reviewer_venue="STOC",
    topic_share=1.0 / 3.0,
)

AREAS: tuple[AreaSpec, ...] = (_DATA_MINING, _DATABASES, _THEORY)

DATASETS: dict[str, DatasetSpec] = {
    "DM08": DatasetSpec("DM08", _DATA_MINING, 2008, num_papers=545, num_reviewers=203),
    "DM09": DatasetSpec("DM09", _DATA_MINING, 2009, num_papers=648, num_reviewers=145),
    "DB08": DatasetSpec("DB08", _DATABASES, 2008, num_papers=617, num_reviewers=105),
    "DB09": DatasetSpec("DB09", _DATABASES, 2009, num_papers=513, num_reviewers=90),
    "TH08": DatasetSpec("TH08", _THEORY, 2008, num_papers=281, num_reviewers=228),
    "TH09": DatasetSpec("TH09", _THEORY, 2009, num_papers=226, num_reviewers=222),
}


def dataset_names() -> list[str]:
    """The six dataset keys of Table 3, in the paper's order."""
    return ["DM08", "DM09", "DB08", "DB09", "TH08", "TH09"]


def dataset_spec(name: str) -> DatasetSpec:
    """Look up a dataset spec by key (e.g. ``"DB08"``)."""
    try:
        return DATASETS[name.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown dataset {name!r}; available: {dataset_names()}"
        ) from None
