"""JSON (de)serialisation of problems and assignments.

Conference organisers normally keep reviewer expertise, submissions,
conflicts and final assignments in files; this module defines a small,
stable JSON format so problems built by the topic pipeline or the synthetic
generator can be saved, inspected, versioned and re-loaded, and so the
command-line interface can operate on files.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.assignment import Assignment
from repro.core.constraints import ConflictOfInterest
from repro.core.entities import Paper, Reviewer
from repro.core.problem import WGRAPProblem
from repro.core.vectors import TopicVector
from repro.exceptions import ConfigurationError, UnsupportedFormatError
from repro.fault import get_failpoints

__all__ = [
    "atomic_write_text",
    "problem_to_dict",
    "problem_from_dict",
    "save_problem",
    "load_problem",
    "assignment_to_dict",
    "assignment_from_dict",
    "save_assignment",
    "load_assignment",
    "EngineSnapshot",
    "engine_snapshot_to_dict",
    "engine_snapshot_from_dict",
    "save_engine_snapshot",
    "load_engine_snapshot",
]

_FORMAT_VERSION = 1
_SNAPSHOT_VERSION = 1


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically: readers see either the old
    file or the complete new one, never a torn prefix.

    The text goes to a temp file in the *same directory* (so the final
    rename cannot cross filesystems), is fsynced, then ``os.replace``\\ d
    over the target; the directory entry is fsynced best-effort so the
    rename itself survives a power cut.  Every durable artifact in the
    repo — problems, assignments, engine snapshots, journal checkpoints —
    goes through here.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        # A crash (or injected fault) here leaves the target untouched and
        # only a stray .tmp file behind — the torn-write window is gone.
        get_failpoints().hit("snapshot_write")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:
        return path
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)
    return path


# ----------------------------------------------------------------------
# Problems
# ----------------------------------------------------------------------
def problem_to_dict(problem: WGRAPProblem) -> dict[str, Any]:
    """A JSON-serialisable representation of a WGRAP problem."""
    return {
        "format_version": _FORMAT_VERSION,
        "num_topics": problem.num_topics,
        "group_size": problem.group_size,
        "reviewer_workload": problem.reviewer_workload,
        "scoring": problem.scoring.name,
        "reviewers": [
            {
                "id": reviewer.id,
                "name": reviewer.name,
                "h_index": reviewer.h_index,
                "vector": reviewer.vector.to_list(),
            }
            for reviewer in problem.reviewers
        ],
        "papers": [
            {
                "id": paper.id,
                "title": paper.title,
                "abstract": paper.abstract,
                "vector": paper.vector.to_list(),
            }
            for paper in problem.papers
        ],
        "conflicts": [list(pair) for pair in problem.conflicts],
    }


def _check_version(payload: Any, what: str, expected: int) -> None:
    """Reject non-mapping payloads and unknown (future) format versions.

    Raising :class:`UnsupportedFormatError` — with the offending and the
    expected version attached — instead of letting a ``KeyError`` escape
    means callers (CLI, recovery, store import) can show what was found
    and what this build understands.
    """
    if not isinstance(payload, dict):
        raise UnsupportedFormatError(what, type(payload).__name__, expected)
    version = payload.get("format_version")
    if version != expected:
        raise UnsupportedFormatError(what, version, expected)


def problem_from_dict(payload: dict[str, Any]) -> WGRAPProblem:
    """Rebuild a WGRAP problem from :func:`problem_to_dict` output."""
    _check_version(payload, "problem", _FORMAT_VERSION)
    reviewers = [
        Reviewer(
            id=entry["id"],
            vector=TopicVector(entry["vector"]),
            name=entry.get("name", ""),
            h_index=entry.get("h_index"),
        )
        for entry in payload["reviewers"]
    ]
    papers = [
        Paper(
            id=entry["id"],
            vector=TopicVector(entry["vector"]),
            title=entry.get("title", ""),
            abstract=entry.get("abstract", ""),
        )
        for entry in payload["papers"]
    ]
    conflicts = ConflictOfInterest(
        (str(reviewer_id), str(paper_id)) for reviewer_id, paper_id in payload.get("conflicts", [])
    )
    return WGRAPProblem(
        papers=papers,
        reviewers=reviewers,
        group_size=int(payload["group_size"]),
        reviewer_workload=int(payload["reviewer_workload"]),
        conflicts=conflicts,
        scoring=payload.get("scoring"),
    )


def save_problem(problem: WGRAPProblem, path: str | Path) -> Path:
    """Write a problem to a JSON file; returns the path written."""
    return atomic_write_text(path, json.dumps(problem_to_dict(problem), indent=2))


def load_problem(path: str | Path) -> WGRAPProblem:
    """Read a problem from a JSON file produced by :func:`save_problem`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return problem_from_dict(payload)


# ----------------------------------------------------------------------
# Assignments
# ----------------------------------------------------------------------
def assignment_to_dict(assignment: Assignment) -> dict[str, Any]:
    """A JSON-serialisable representation of an assignment."""
    return {
        "format_version": _FORMAT_VERSION,
        "assignment": assignment.to_dict(),
    }


def assignment_from_dict(payload: dict[str, Any]) -> Assignment:
    """Rebuild an assignment from :func:`assignment_to_dict` output."""
    _check_version(payload, "assignment", _FORMAT_VERSION)
    return Assignment.from_dict(payload["assignment"])


def save_assignment(assignment: Assignment, path: str | Path) -> Path:
    """Write an assignment to a JSON file; returns the path written."""
    return atomic_write_text(path, json.dumps(assignment_to_dict(assignment), indent=2))


def load_assignment(path: str | Path) -> Assignment:
    """Read an assignment from a JSON file produced by :func:`save_assignment`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return assignment_from_dict(payload)


# ----------------------------------------------------------------------
# Assignment-engine snapshots
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EngineSnapshot:
    """Deserialised state of a long-lived assignment engine.

    A snapshot bundles everything a resident
    :class:`~repro.service.engine.AssignmentEngine` needs to resume
    serving after a restart: the current problem, the current assignment
    (``None`` when no solve has happened yet), accumulated reviewer bids
    and free-form metadata (last solver, revision counter, ...).
    """

    problem: WGRAPProblem
    assignment: Assignment | None = None
    bids: tuple[tuple[str, str, float], ...] = ()
    metadata: dict[str, Any] = field(default_factory=dict)


def engine_snapshot_to_dict(
    problem: WGRAPProblem,
    assignment: Assignment | None = None,
    bids: tuple[tuple[str, str, float], ...] = (),
    metadata: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """A JSON-serialisable representation of engine state."""
    return {
        "format_version": _SNAPSHOT_VERSION,
        "problem": problem_to_dict(problem),
        "assignment": assignment_to_dict(assignment) if assignment is not None else None,
        "bids": [list(bid) for bid in bids],
        "metadata": dict(metadata or {}),
    }


def engine_snapshot_from_dict(payload: dict[str, Any]) -> EngineSnapshot:
    """Rebuild engine state from :func:`engine_snapshot_to_dict` output."""
    _check_version(payload, "engine snapshot", _SNAPSHOT_VERSION)
    raw_problem = payload.get("problem")
    if raw_problem is None:
        raise ConfigurationError("an engine snapshot needs a 'problem' section")
    problem = problem_from_dict(raw_problem)
    raw_assignment = payload.get("assignment")
    assignment = assignment_from_dict(raw_assignment) if raw_assignment is not None else None
    bids = tuple(
        (str(reviewer_id), str(paper_id), float(value))
        for reviewer_id, paper_id, value in payload.get("bids", [])
    )
    return EngineSnapshot(
        problem=problem,
        assignment=assignment,
        bids=bids,
        metadata=dict(payload.get("metadata", {})),
    )


def save_engine_snapshot(snapshot: dict[str, Any], path: str | Path) -> Path:
    """Write an engine snapshot dict to a JSON file atomically.

    Snapshots are what crashed tenants recover from, so a torn write here
    would turn one crash into permanent data loss; the atomic
    temp-file-then-rename of :func:`atomic_write_text` closes that window.
    Returns the path written.
    """
    return atomic_write_text(path, json.dumps(snapshot, indent=2))


def load_engine_snapshot(path: str | Path) -> EngineSnapshot:
    """Read an engine snapshot produced by :func:`save_engine_snapshot`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return engine_snapshot_from_dict(payload)
