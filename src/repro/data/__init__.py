"""Synthetic DBLP-like data generation, dataset metadata and (de)serialisation."""

from repro.data.io import (
    assignment_from_dict,
    assignment_to_dict,
    load_assignment,
    load_problem,
    problem_from_dict,
    problem_to_dict,
    save_assignment,
    save_problem,
)
from repro.data.synthetic import (
    SyntheticCorpus,
    SyntheticCorpusGenerator,
    SyntheticWorkloadGenerator,
    make_problem,
)
from repro.data.venues import AREAS, DATASETS, AreaSpec, DatasetSpec, dataset_names, dataset_spec
from repro.data.workloads import (
    CRA_PRESETS,
    DEFAULT_JRA_POOL_SIZE,
    WorkloadPreset,
    make_jra_pool,
    make_jra_problem,
    scale_reviewers_by_h_index,
)

__all__ = [
    "assignment_from_dict",
    "assignment_to_dict",
    "load_assignment",
    "load_problem",
    "problem_from_dict",
    "problem_to_dict",
    "save_assignment",
    "save_problem",
    "SyntheticCorpus",
    "SyntheticCorpusGenerator",
    "SyntheticWorkloadGenerator",
    "make_problem",
    "AREAS",
    "DATASETS",
    "AreaSpec",
    "DatasetSpec",
    "dataset_names",
    "dataset_spec",
    "CRA_PRESETS",
    "DEFAULT_JRA_POOL_SIZE",
    "WorkloadPreset",
    "make_jra_pool",
    "make_jra_problem",
    "scale_reviewers_by_h_index",
]
