"""Experiment workload helpers.

Utilities shared by the benchmark harness and the examples:

* building the default JRA candidate pool (the paper uses the 1002 authors
  with at least three publications in 2005-2009; we generate a pool of the
  same size and structure),
* the h-index expertise scaling of Appendix C (Equation 15),
* a registry of pre-configured workloads used by the benches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.entities import Paper, Reviewer
from repro.core.problem import JRAProblem, WGRAPProblem
from repro.core.vectors import TopicVector
from repro.data.synthetic import SyntheticWorkloadGenerator
from repro.exceptions import ConfigurationError

__all__ = [
    "DEFAULT_JRA_POOL_SIZE",
    "make_jra_pool",
    "make_jra_problem",
    "scale_reviewers_by_h_index",
    "WorkloadPreset",
    "CRA_PRESETS",
]

#: size of the default JRA candidate pool in the paper (authors with >= 3
#: papers in the three areas over 2005-2009)
DEFAULT_JRA_POOL_SIZE = 1002


def make_jra_pool(
    pool_size: int = DEFAULT_JRA_POOL_SIZE,
    num_topics: int = 30,
    seed: int | None = 0,
) -> list[Reviewer]:
    """Generate the JRA candidate-reviewer pool.

    The pool mixes the three research areas in equal parts, mirroring the
    paper's pool of authors drawn from all three areas.
    """
    if pool_size < 3:
        raise ConfigurationError("the pool needs at least three reviewers")
    generator = SyntheticWorkloadGenerator(num_topics=num_topics, seed=seed)
    rng = np.random.default_rng(seed)
    per_area = [pool_size // 3, pool_size // 3, pool_size - 2 * (pool_size // 3)]
    reviewers: list[Reviewer] = []
    for area_index, count in enumerate(per_area):
        vectors = generator.reviewer_vectors(count, area_index=area_index, rng=rng)
        for row in range(count):
            index = len(reviewers)
            reviewers.append(
                Reviewer(
                    id=f"pool-reviewer-{index:04d}",
                    vector=TopicVector(vectors[row]),
                    name=f"Pool reviewer {index:04d}",
                    h_index=int(rng.integers(3, 60)),
                )
            )
    return reviewers


def make_jra_problem(
    num_candidates: int,
    group_size: int,
    num_topics: int = 30,
    seed: int | None = 0,
    pool: list[Reviewer] | None = None,
) -> JRAProblem:
    """A JRA instance with ``num_candidates`` reviewers drawn from a pool.

    The target paper is an interdisciplinary submission (as in the paper's
    motivating examples) so that good groups genuinely need complementary
    reviewers.
    """
    if pool is not None:
        reviewers = pool
        num_topics = reviewers[0].num_topics
    else:
        reviewers = make_jra_pool(max(num_candidates, 3), num_topics=num_topics, seed=seed)
    if num_candidates > len(reviewers):
        raise ConfigurationError(
            f"requested {num_candidates} candidates but the pool has {len(reviewers)}"
        )
    rng = np.random.default_rng(seed)
    chosen_positions = rng.choice(len(reviewers), size=num_candidates, replace=False)
    candidates = [reviewers[int(position)] for position in sorted(chosen_positions)]

    generator = SyntheticWorkloadGenerator(num_topics=num_topics, seed=seed)
    paper_vector = generator.paper_vectors(
        1, area_index=int(rng.integers(0, 3)), interdisciplinary_ratio=1.0, rng=rng
    )[0]
    paper = Paper(
        id="jra-target-paper",
        vector=TopicVector(paper_vector),
        title="Synthetic journal submission",
    )
    return JRAProblem(paper=paper, reviewers=candidates, group_size=group_size)


def scale_reviewers_by_h_index(problem: WGRAPProblem) -> WGRAPProblem:
    """Scale every reviewer vector by its h-index (Appendix C, Equation 15).

    Each vector is multiplied by ``1 + (h_r - h_min) / (h_max - h_min)``,
    i.e. a factor in ``[1, 2]``.  Reviewers without an h-index are treated
    as having the minimum.
    """
    h_values = [
        reviewer.h_index if reviewer.h_index is not None else 0
        for reviewer in problem.reviewers
    ]
    h_min, h_max = min(h_values), max(h_values)
    spread = max(h_max - h_min, 1)
    scaled = [
        reviewer.with_vector(
            reviewer.vector.scaled(1.0 + (h_value - h_min) / spread)
        )
        for reviewer, h_value in zip(problem.reviewers, h_values)
    ]
    return problem.with_reviewers(scaled)


@dataclass(frozen=True)
class WorkloadPreset:
    """A named CRA workload used by the benchmark harness."""

    name: str
    dataset: str
    group_size: int
    scale: float


#: the conference workloads exercised by the paper's Section 5.2 figures
CRA_PRESETS: tuple[WorkloadPreset, ...] = (
    WorkloadPreset("DB08-d3", dataset="DB08", group_size=3, scale=0.25),
    WorkloadPreset("DB08-d4", dataset="DB08", group_size=4, scale=0.25),
    WorkloadPreset("DB08-d5", dataset="DB08", group_size=5, scale=0.25),
    WorkloadPreset("DM08-d3", dataset="DM08", group_size=3, scale=0.25),
    WorkloadPreset("DM08-d4", dataset="DM08", group_size=4, scale=0.25),
    WorkloadPreset("DM08-d5", dataset="DM08", group_size=5, scale=0.25),
    WorkloadPreset("TH08-d3", dataset="TH08", group_size=3, scale=0.25),
    WorkloadPreset("DB09-d3", dataset="DB09", group_size=3, scale=0.25),
    WorkloadPreset("DM09-d3", dataset="DM09", group_size=3, scale=0.25),
    WorkloadPreset("TH09-d3", dataset="TH09", group_size=3, scale=0.25),
)
