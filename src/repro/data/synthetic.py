"""Synthetic DBLP-like data generation.

The paper evaluates on abstracts and program-committee lists drawn from the
ArnetMiner/DBLP citation dataset, which is not redistributable and cannot be
downloaded in this offline environment.  This module provides the
substitute described in DESIGN.md: a generative model of research areas,
authors, publications and submissions whose *statistical shape* matches
what the WGRAP algorithms consume.

Two generators are provided:

* :class:`SyntheticWorkloadGenerator` — produces reviewer/paper **topic
  vectors** directly (skewed Dirichlet mixtures concentrated on a few
  area-specific focus topics, with a configurable share of
  interdisciplinary papers and of generalist "prolific" reviewers).  This
  is what the JRA/CRA experiments use: the solvers only ever see topic
  vectors, so the comparison between methods is preserved.
* :class:`SyntheticCorpusGenerator` — produces **raw text** (publication
  records with authors, submission abstracts) from ground-truth topic-word
  distributions, so the full Author-Topic-Model + EM pipeline of
  Appendix A can be exercised end to end and validated against the known
  ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.constraints import ConflictOfInterest
from repro.core.entities import Paper, Reviewer
from repro.core.problem import WGRAPProblem
from repro.core.vectors import TopicVector
from repro.data.venues import DatasetSpec, dataset_spec
from repro.exceptions import ConfigurationError
from repro.topics.corpus import Corpus, Document

__all__ = [
    "SyntheticWorkloadGenerator",
    "SyntheticCorpusGenerator",
    "SyntheticCorpus",
    "make_problem",
]


# ----------------------------------------------------------------------
# Topic-vector level generation (used by the experiments)
# ----------------------------------------------------------------------
class SyntheticWorkloadGenerator:
    """Generate WGRAP problem instances with realistic topic-vector structure.

    Parameters
    ----------
    num_topics:
        Number of topics ``T`` (30 in the paper).
    seed:
        Seed of the underlying random generator; every call that takes a
        ``seed`` argument derives an independent stream from it so repeated
        calls are reproducible but decorrelated.
    focus_concentration:
        Dirichlet weight given to an entity's focus topics; larger values
        produce more sharply peaked vectors.
    background_concentration:
        Dirichlet weight of all non-focus topics.
    """

    def __init__(
        self,
        num_topics: int = 30,
        seed: int | None = 0,
        focus_concentration: float = 8.0,
        background_concentration: float = 0.08,
    ) -> None:
        if num_topics < 3:
            raise ConfigurationError("num_topics must be at least 3")
        if focus_concentration <= 0 or background_concentration <= 0:
            raise ConfigurationError("concentrations must be positive")
        self._num_topics = num_topics
        self._seed = seed
        self._focus = focus_concentration
        self._background = background_concentration

    @property
    def num_topics(self) -> int:
        """Number of topics ``T``."""
        return self._num_topics

    # ------------------------------------------------------------------
    # Topic vectors
    # ------------------------------------------------------------------
    def _area_topics(self, area_index: int, num_areas: int = 3) -> np.ndarray:
        """The block of topics an area concentrates on."""
        block = self._num_topics // num_areas
        start = area_index * block
        end = self._num_topics if area_index == num_areas - 1 else start + block
        return np.arange(start, end)

    def _sample_vector(
        self,
        rng: np.random.Generator,
        primary_topics: np.ndarray,
        num_focus: int,
        secondary_topics: np.ndarray | None = None,
    ) -> np.ndarray:
        """One skewed topic mixture concentrated on a few focus topics."""
        concentration = np.full(self._num_topics, self._background, dtype=np.float64)
        focus_count = min(num_focus, primary_topics.size)
        focus = rng.choice(primary_topics, size=focus_count, replace=False)
        concentration[focus] = self._focus
        if secondary_topics is not None and secondary_topics.size:
            extra = rng.choice(secondary_topics)
            concentration[extra] = self._focus * 0.6
        vector = rng.dirichlet(concentration)
        return vector

    def reviewer_vectors(
        self, count: int, area_index: int = 0, generalist_ratio: float = 0.15,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """``(count, T)`` reviewer expertise vectors for one area.

        A ``generalist_ratio`` fraction of reviewers (think of very prolific
        committee members) spread their expertise over many topics of the
        area instead of two or three.
        """
        rng = rng if rng is not None else np.random.default_rng(self._seed)
        area = self._area_topics(area_index)
        vectors = np.empty((count, self._num_topics), dtype=np.float64)
        for row in range(count):
            if rng.random() < generalist_ratio:
                vectors[row] = self._sample_vector(rng, area, num_focus=max(4, area.size // 2))
            else:
                vectors[row] = self._sample_vector(rng, area, num_focus=int(rng.integers(1, 4)))
        return vectors

    def paper_vectors(
        self, count: int, area_index: int = 0, interdisciplinary_ratio: float = 0.25,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """``(count, T)`` submission content vectors for one area.

        An ``interdisciplinary_ratio`` fraction of papers also draws a focus
        topic from a neighbouring area, producing exactly the "location
        disambiguation for geo-tagged images"-style papers the paper's
        introduction uses to motivate group-based assignment.
        """
        rng = rng if rng is not None else np.random.default_rng(self._seed)
        area = self._area_topics(area_index)
        other_areas = [self._area_topics(index) for index in range(3) if index != area_index]
        vectors = np.empty((count, self._num_topics), dtype=np.float64)
        for row in range(count):
            secondary = None
            if rng.random() < interdisciplinary_ratio:
                secondary = other_areas[int(rng.integers(0, len(other_areas)))]
            vectors[row] = self._sample_vector(
                rng, area, num_focus=int(rng.integers(1, 4)), secondary_topics=secondary
            )
        return vectors

    # ------------------------------------------------------------------
    # Problem assembly
    # ------------------------------------------------------------------
    def generate_problem(
        self,
        num_papers: int,
        num_reviewers: int,
        group_size: int = 3,
        reviewer_workload: int | None = None,
        area_index: int = 0,
        interdisciplinary_ratio: float = 0.25,
        generalist_ratio: float = 0.15,
        conflict_ratio: float = 0.0,
        scoring: str | None = None,
        seed: int | None = None,
    ) -> WGRAPProblem:
        """Generate a complete WGRAP instance.

        Parameters
        ----------
        num_papers, num_reviewers:
            Instance size (``P`` and ``R``).
        group_size, reviewer_workload:
            The WGRAP constraints; the workload defaults to the minimal
            feasible value exactly as in the paper's experiments.
        area_index:
            Which research area (0 = DM, 1 = DB, 2 = TH) the instance
            simulates; only affects which topic block is emphasised.
        interdisciplinary_ratio, generalist_ratio:
            Shape parameters described on the vector generators.
        conflict_ratio:
            Expected fraction of reviewer/paper pairs declared as conflicts
            of interest (sampled uniformly at random).
        scoring:
            Scoring-function name; defaults to weighted coverage.
        seed:
            Overrides the generator's seed for this call.
        """
        if num_papers < 1 or num_reviewers < 1:
            raise ConfigurationError("the instance needs at least one paper and one reviewer")
        rng = np.random.default_rng(self._seed if seed is None else seed)

        reviewer_matrix = self.reviewer_vectors(
            num_reviewers, area_index=area_index, generalist_ratio=generalist_ratio, rng=rng
        )
        paper_matrix = self.paper_vectors(
            num_papers,
            area_index=area_index,
            interdisciplinary_ratio=interdisciplinary_ratio,
            rng=rng,
        )

        # h-indices correlate loosely with how spread-out the expertise is,
        # mimicking prolific senior researchers (used by the Appendix C
        # h-index scaling experiment).
        breadth = (reviewer_matrix > 1.0 / self._num_topics).sum(axis=1)
        h_indices = np.clip(
            rng.poisson(8 + 4 * breadth), 1, None
        ).astype(int)

        reviewers = [
            Reviewer(
                id=f"reviewer-{index:04d}",
                vector=TopicVector(reviewer_matrix[index]),
                name=f"Reviewer {index:04d}",
                h_index=int(h_indices[index]),
            )
            for index in range(num_reviewers)
        ]
        papers = [
            Paper(
                id=f"paper-{index:04d}",
                vector=TopicVector(paper_matrix[index]),
                title=f"Synthetic submission {index:04d}",
            )
            for index in range(num_papers)
        ]

        conflicts = ConflictOfInterest()
        if conflict_ratio > 0:
            for paper in papers:
                for reviewer in reviewers:
                    if rng.random() < conflict_ratio:
                        conflicts.add(reviewer.id, paper.id)

        return WGRAPProblem(
            papers=papers,
            reviewers=reviewers,
            group_size=group_size,
            reviewer_workload=reviewer_workload,
            conflicts=conflicts,
            scoring=scoring,
        )

    def generate_dataset(
        self,
        name: str,
        scale: float = 1.0,
        group_size: int = 3,
        reviewer_workload: int | None = None,
        seed: int | None = None,
        **kwargs,
    ) -> WGRAPProblem:
        """Generate one of the Table 3 datasets (optionally scaled down).

        ``name`` is a dataset key such as ``"DB08"``; ``scale`` shrinks both
        the paper and reviewer counts proportionally, which the benchmark
        harness uses to keep pure-Python running times reasonable while
        preserving the papers-per-reviewer pressure of the original.
        """
        spec: DatasetSpec = dataset_spec(name).scaled(scale)
        area_order = {"DM": 0, "DB": 1, "TH": 2}
        derived_seed = (self._seed or 0) + hash(spec.key) % 10_000
        return self.generate_problem(
            num_papers=spec.num_papers,
            num_reviewers=spec.num_reviewers,
            group_size=group_size,
            reviewer_workload=reviewer_workload,
            area_index=area_order[spec.area.key],
            seed=derived_seed if seed is None else seed,
            **kwargs,
        )


def make_problem(
    num_papers: int,
    num_reviewers: int,
    num_topics: int = 30,
    group_size: int = 3,
    seed: int | None = 0,
    **kwargs,
) -> WGRAPProblem:
    """One-call convenience wrapper around :class:`SyntheticWorkloadGenerator`."""
    generator = SyntheticWorkloadGenerator(num_topics=num_topics, seed=seed)
    return generator.generate_problem(
        num_papers=num_papers,
        num_reviewers=num_reviewers,
        group_size=group_size,
        **kwargs,
    )


# ----------------------------------------------------------------------
# Text-level generation (used to exercise the topic-model pipeline)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SyntheticCorpus:
    """Output of :class:`SyntheticCorpusGenerator.generate`.

    Attributes
    ----------
    publications:
        Corpus of authored publication records (input of the ATM).
    submissions:
        Submission documents whose vectors must be inferred with EM.
    true_author_mixtures:
        Ground-truth ``(A, T)`` author topic mixtures.
    true_submission_mixtures:
        Ground-truth ``(S, T)`` submission topic mixtures.
    topic_word:
        Ground-truth ``(T, V)`` topic-word distributions.
    """

    publications: Corpus
    submissions: tuple[Document, ...]
    true_author_mixtures: np.ndarray
    true_submission_mixtures: np.ndarray
    topic_word: np.ndarray
    author_ids: tuple[str, ...] = field(default_factory=tuple)


class SyntheticCorpusGenerator:
    """Generate raw text with a known topic structure.

    The vocabulary is split into per-topic "signature" words plus a shared
    background pool; abstracts are bags of words sampled from the mixture of
    their authors' (or the submission's) topic distributions.  Because the
    ground truth is known, the test suite can verify that the Author-Topic
    Model and the EM inference recover it (up to topic permutation).
    """

    def __init__(
        self,
        num_topics: int = 10,
        words_per_topic: int = 25,
        background_words: int = 50,
        seed: int | None = 0,
    ) -> None:
        if num_topics < 2:
            raise ConfigurationError("num_topics must be at least 2")
        if words_per_topic < 3:
            raise ConfigurationError("words_per_topic must be at least 3")
        self._num_topics = num_topics
        self._words_per_topic = words_per_topic
        self._background_words = background_words
        self._seed = seed

    @property
    def vocabulary_words(self) -> list[str]:
        """The full synthetic vocabulary, topic signature words first."""
        words = [
            f"topic{topic:02d}word{index:03d}"
            for topic in range(self._num_topics)
            for index in range(self._words_per_topic)
        ]
        words.extend(f"background{index:03d}" for index in range(self._background_words))
        return words

    def _topic_word_distributions(self, rng: np.random.Generator) -> np.ndarray:
        vocabulary_size = self._num_topics * self._words_per_topic + self._background_words
        topic_word = np.full(
            (self._num_topics, vocabulary_size), 0.05 / vocabulary_size, dtype=np.float64
        )
        for topic in range(self._num_topics):
            start = topic * self._words_per_topic
            weights = rng.dirichlet(np.full(self._words_per_topic, 2.0))
            topic_word[topic, start:start + self._words_per_topic] += 0.95 * weights
        topic_word /= topic_word.sum(axis=1, keepdims=True)
        return topic_word

    def generate(
        self,
        num_authors: int = 30,
        publications_per_author: tuple[int, int] = (2, 5),
        num_submissions: int = 20,
        tokens_per_document: tuple[int, int] = (60, 120),
        coauthors_per_publication: tuple[int, int] = (1, 3),
    ) -> SyntheticCorpus:
        """Generate a full synthetic corpus with known ground truth."""
        rng = np.random.default_rng(self._seed)
        topic_word = self._topic_word_distributions(rng)
        words = self.vocabulary_words

        author_ids = tuple(f"author-{index:03d}" for index in range(num_authors))
        author_mixtures = np.vstack(
            [
                rng.dirichlet(
                    self._focused_concentration(rng, focus_count=int(rng.integers(1, 4)))
                )
                for _ in range(num_authors)
            ]
        )

        documents: list[Document] = []
        publication_counter = 0
        for author_index, author_id in enumerate(author_ids):
            count = int(rng.integers(publications_per_author[0], publications_per_author[1] + 1))
            for _ in range(count):
                num_coauthors = int(
                    rng.integers(coauthors_per_publication[0], coauthors_per_publication[1] + 1)
                )
                coauthors = {author_index}
                while len(coauthors) < num_coauthors:
                    coauthors.add(int(rng.integers(0, num_authors)))
                mixture = author_mixtures[sorted(coauthors)].mean(axis=0)
                tokens = self._sample_tokens(rng, mixture, topic_word, words, tokens_per_document)
                documents.append(
                    Document(
                        id=f"publication-{publication_counter:04d}",
                        tokens=tuple(tokens),
                        authors=tuple(author_ids[i] for i in sorted(coauthors)),
                    )
                )
                publication_counter += 1

        submission_mixtures = np.vstack(
            [
                rng.dirichlet(
                    self._focused_concentration(rng, focus_count=int(rng.integers(1, 3)))
                )
                for _ in range(num_submissions)
            ]
        )
        submissions = tuple(
            Document(
                id=f"submission-{index:04d}",
                tokens=tuple(
                    self._sample_tokens(
                        rng, submission_mixtures[index], topic_word, words, tokens_per_document
                    )
                ),
            )
            for index in range(num_submissions)
        )

        publications = Corpus(documents)
        return SyntheticCorpus(
            publications=publications,
            submissions=submissions,
            true_author_mixtures=author_mixtures,
            true_submission_mixtures=submission_mixtures,
            topic_word=topic_word,
            author_ids=author_ids,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _focused_concentration(
        self, rng: np.random.Generator, focus_count: int
    ) -> np.ndarray:
        concentration = np.full(self._num_topics, 0.1, dtype=np.float64)
        focus = rng.choice(self._num_topics, size=focus_count, replace=False)
        concentration[focus] = 6.0
        return concentration

    @staticmethod
    def _sample_tokens(
        rng: np.random.Generator,
        mixture: np.ndarray,
        topic_word: np.ndarray,
        words: list[str],
        tokens_per_document: tuple[int, int],
    ) -> list[str]:
        length = int(rng.integers(tokens_per_document[0], tokens_per_document[1] + 1))
        topics = rng.choice(mixture.size, size=length, p=mixture)
        tokens = []
        for topic in topics:
            word_id = rng.choice(topic_word.shape[1], p=topic_word[topic])
            tokens.append(words[word_id])
        return tokens
