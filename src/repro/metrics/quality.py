"""Assignment-quality metrics used in the paper's evaluation (Section 5).

* **Coverage score** ``c(A)`` — the WGRAP objective itself.
* **Optimality ratio** ``c(A) / c(AI)`` — quality relative to the ideal
  (workload-free) assignment; a lower bound of the true approximation
  ratio (Figure 10, 17, 18, 21).
* **Superiority ratio** — fraction of papers for which one method's group
  covers the paper at least as well as another method's (Figure 11).
* **Lowest coverage score** — the quality of the worst-served paper
  (Table 7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.assignment import Assignment
from repro.core.problem import WGRAPProblem
from repro.cra.ideal import IdealAssignment, ideal_assignment
from repro.exceptions import ConfigurationError

__all__ = [
    "coverage_score",
    "optimality_ratio",
    "SuperiorityBreakdown",
    "superiority_ratio",
    "lowest_coverage_score",
    "mean_coverage_score",
]


def coverage_score(problem: WGRAPProblem, assignment: Assignment) -> float:
    """Total coverage score ``c(A)`` (convenience wrapper)."""
    return problem.assignment_score(assignment)


def optimality_ratio(
    problem: WGRAPProblem,
    assignment: Assignment,
    ideal: IdealAssignment | None = None,
) -> float:
    """``c(A) / c(AI)`` against the ideal per-paper assignment.

    Parameters
    ----------
    problem:
        The WGRAP instance.
    assignment:
        The assignment to evaluate.
    ideal:
        A pre-computed ideal assignment; computing it is the expensive part,
        so callers comparing several methods should compute it once and
        pass it in.
    """
    reference = ideal if ideal is not None else ideal_assignment(problem)
    if reference.score <= 0.0:
        return 1.0
    return problem.assignment_score(assignment) / reference.score


@dataclass(frozen=True)
class SuperiorityBreakdown:
    """Per-paper comparison of two assignments (Figure 11).

    Attributes
    ----------
    wins:
        Papers where the first assignment covers strictly better.
    ties:
        Papers covered equally well (within ``tolerance``).
    losses:
        Papers where the second assignment covers strictly better.
    """

    wins: int
    ties: int
    losses: int

    @property
    def total(self) -> int:
        """Number of papers compared."""
        return self.wins + self.ties + self.losses

    @property
    def superiority(self) -> float:
        """The paper's superiority ratio: wins plus ties over all papers."""
        if self.total == 0:
            return 0.0
        return (self.wins + self.ties) / self.total

    @property
    def strict_superiority(self) -> float:
        """Wins only, over all papers."""
        if self.total == 0:
            return 0.0
        return self.wins / self.total

    @property
    def tie_ratio(self) -> float:
        """Ties over all papers (the dark-grey bar portion in Figure 11)."""
        if self.total == 0:
            return 0.0
        return self.ties / self.total


def superiority_ratio(
    problem: WGRAPProblem,
    first: Assignment,
    second: Assignment,
    tolerance: float = 1e-9,
) -> SuperiorityBreakdown:
    """Compare two assignments paper by paper.

    The paper defines ``ratio(X, Y)`` as the fraction of papers whose group
    under ``X`` scores at least as high as under ``Y``; the returned
    breakdown exposes that number as :attr:`SuperiorityBreakdown.superiority`
    together with the strict-win and tie fractions.
    """
    if tolerance < 0:
        raise ConfigurationError("tolerance must be non-negative")
    wins = ties = losses = 0
    for paper in problem.papers:
        first_score = problem.paper_score(first, paper.id)
        second_score = problem.paper_score(second, paper.id)
        if abs(first_score - second_score) <= tolerance:
            ties += 1
        elif first_score > second_score:
            wins += 1
        else:
            losses += 1
    return SuperiorityBreakdown(wins=wins, ties=ties, losses=losses)


def lowest_coverage_score(problem: WGRAPProblem, assignment: Assignment) -> float:
    """Coverage of the worst-served paper, ``min_p c(g_p, p)`` (Table 7)."""
    return min(problem.paper_score(assignment, paper.id) for paper in problem.papers)


def mean_coverage_score(problem: WGRAPProblem, assignment: Assignment) -> float:
    """Average per-paper coverage (a convenient summary not in the paper)."""
    return problem.assignment_score(assignment) / problem.num_papers
