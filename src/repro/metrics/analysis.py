"""Per-paper, per-topic analysis used by the case studies (Figures 19-20).

The paper's case studies inspect how well the assigned reviewer group
covers each of a paper's dominant topics, topic by topic, and which
reviewer provides that coverage.  :func:`paper_topic_coverage` produces
exactly that breakdown; :func:`coverage_histogram` summarises the
distribution of per-paper coverage across a whole conference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.assignment import Assignment
from repro.core.problem import WGRAPProblem
from repro.exceptions import ConfigurationError

__all__ = [
    "TopicCoverage",
    "PaperCoverageReport",
    "paper_topic_coverage",
    "coverage_histogram",
]


@dataclass(frozen=True)
class TopicCoverage:
    """Coverage of one topic of one paper by its assigned group."""

    topic: int
    paper_weight: float
    group_weight: float
    covered_weight: float
    best_reviewer_id: str | None

    @property
    def is_fully_covered(self) -> bool:
        """Whether some reviewer matches or exceeds the paper's weight."""
        return self.group_weight >= self.paper_weight


@dataclass(frozen=True)
class PaperCoverageReport:
    """Case-study style report for a single paper (Figure 19 / 20)."""

    paper_id: str
    paper_title: str
    reviewer_ids: tuple[str, ...]
    reviewer_names: tuple[str, ...]
    score: float
    topics: tuple[TopicCoverage, ...]

    def top_topics(self, count: int = 5) -> tuple[TopicCoverage, ...]:
        """The ``count`` topics with the highest paper weight."""
        ranked = sorted(self.topics, key=lambda entry: -entry.paper_weight)
        return tuple(ranked[:count])


def paper_topic_coverage(
    problem: WGRAPProblem, assignment: Assignment, paper_id: str
) -> PaperCoverageReport:
    """Break a paper's coverage down per topic, naming the best reviewer."""
    paper = problem.paper_by_id(paper_id)
    reviewer_ids = tuple(sorted(assignment.reviewers_of(paper_id)))
    group_vector = problem.group_vector(assignment, paper_id)

    entries: list[TopicCoverage] = []
    for topic in range(problem.num_topics):
        paper_weight = float(paper.vector[topic])
        group_weight = float(group_vector[topic])
        best_reviewer: str | None = None
        if reviewer_ids:
            weights = {
                reviewer_id: problem.reviewer_by_id(reviewer_id).vector[topic]
                for reviewer_id in reviewer_ids
            }
            best_reviewer = max(weights, key=weights.get)
        entries.append(
            TopicCoverage(
                topic=topic,
                paper_weight=paper_weight,
                group_weight=group_weight,
                covered_weight=min(paper_weight, group_weight),
                best_reviewer_id=best_reviewer,
            )
        )

    reviewer_names = tuple(
        problem.reviewer_by_id(reviewer_id).name for reviewer_id in reviewer_ids
    )
    return PaperCoverageReport(
        paper_id=paper.id,
        paper_title=paper.title,
        reviewer_ids=reviewer_ids,
        reviewer_names=reviewer_names,
        score=problem.paper_score(assignment, paper_id),
        topics=tuple(entries),
    )


def coverage_histogram(
    problem: WGRAPProblem, assignment: Assignment, bins: int = 10
) -> list[tuple[float, float, int]]:
    """Histogram of per-paper coverage scores as ``(low, high, count)`` rows."""
    if bins < 1:
        raise ConfigurationError("bins must be at least 1")
    scores = np.array(
        [problem.paper_score(assignment, paper.id) for paper in problem.papers]
    )
    counts, edges = np.histogram(scores, bins=bins, range=(0.0, 1.0))
    return [
        (float(edges[index]), float(edges[index + 1]), int(count))
        for index, count in enumerate(counts)
    ]
