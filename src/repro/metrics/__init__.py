"""Quality metrics and per-paper analysis used by the experiments."""

from repro.metrics.analysis import (
    PaperCoverageReport,
    TopicCoverage,
    coverage_histogram,
    paper_topic_coverage,
)
from repro.metrics.quality import (
    SuperiorityBreakdown,
    coverage_score,
    lowest_coverage_score,
    mean_coverage_score,
    optimality_ratio,
    superiority_ratio,
)

__all__ = [
    "PaperCoverageReport",
    "TopicCoverage",
    "coverage_histogram",
    "paper_topic_coverage",
    "SuperiorityBreakdown",
    "coverage_score",
    "lowest_coverage_score",
    "mean_coverage_score",
    "optimality_ratio",
    "superiority_ratio",
]
