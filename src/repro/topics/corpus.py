"""Corpus containers for the topic-modelling substrate.

A :class:`Document` is a tokenised publication (or submission abstract)
with optional author identifiers; a :class:`Corpus` bundles documents with
a shared :class:`~repro.topics.text.Vocabulary` and exposes the encoded
(id-based) views the Gibbs samplers operate on.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.topics.text import Vocabulary, tokenize

__all__ = ["Document", "Corpus"]


@dataclass(frozen=True)
class Document:
    """A single tokenised document.

    Attributes
    ----------
    id:
        Document identifier (e.g. a DBLP key or submission number).
    tokens:
        Content tokens, already tokenised and stop-word filtered.
    authors:
        Author identifiers.  Required by the Author-Topic Model; may be
        empty for plain LDA or for submissions whose authors are hidden.
    """

    id: str
    tokens: tuple[str, ...]
    authors: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.id:
            raise ConfigurationError("a document needs a non-empty id")
        object.__setattr__(self, "tokens", tuple(self.tokens))
        object.__setattr__(self, "authors", tuple(self.authors))

    @classmethod
    def from_text(
        cls, document_id: str, text: str, authors: Iterable[str] = ()
    ) -> "Document":
        """Tokenise raw text into a document."""
        return cls(id=document_id, tokens=tuple(tokenize(text)), authors=tuple(authors))

    @property
    def length(self) -> int:
        """Number of tokens."""
        return len(self.tokens)


class Corpus:
    """An ordered collection of documents with a shared vocabulary."""

    def __init__(
        self,
        documents: Sequence[Document],
        vocabulary: Vocabulary | None = None,
        min_document_frequency: int = 1,
        max_document_ratio: float = 1.0,
    ) -> None:
        if not documents:
            raise ConfigurationError("a corpus needs at least one document")
        self._documents: tuple[Document, ...] = tuple(documents)
        if vocabulary is None:
            vocabulary = Vocabulary.from_documents(
                (list(document.tokens) for document in self._documents),
                min_document_frequency=min_document_frequency,
                max_document_ratio=max_document_ratio,
            )
        self._vocabulary = vocabulary
        self._encoded: list[list[int]] = [
            vocabulary.encode(document.tokens) for document in self._documents
        ]
        authors: list[str] = []
        seen: set[str] = set()
        for document in self._documents:
            for author in document.authors:
                if author not in seen:
                    seen.add(author)
                    authors.append(author)
        self._authors: tuple[str, ...] = tuple(authors)
        self._author_index: dict[str, int] = {
            author: position for position, author in enumerate(self._authors)
        }

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def documents(self) -> tuple[Document, ...]:
        """The documents, in corpus order."""
        return self._documents

    @property
    def vocabulary(self) -> Vocabulary:
        """The shared vocabulary."""
        return self._vocabulary

    @property
    def authors(self) -> tuple[str, ...]:
        """All distinct author identifiers, in first-appearance order."""
        return self._authors

    @property
    def num_documents(self) -> int:
        """Number of documents."""
        return len(self._documents)

    @property
    def num_words(self) -> int:
        """Vocabulary size."""
        return len(self._vocabulary)

    @property
    def num_tokens(self) -> int:
        """Total number of (in-vocabulary) token occurrences."""
        return sum(len(tokens) for tokens in self._encoded)

    def author_index(self, author: str) -> int:
        """Position of an author in :attr:`authors`."""
        try:
            return self._author_index[author]
        except KeyError:
            raise KeyError(f"unknown author {author!r}") from None

    def encoded_document(self, position: int) -> list[int]:
        """Word ids of the document at ``position`` (out-of-vocabulary dropped)."""
        return list(self._encoded[position])

    def encoded_documents(self) -> Iterator[list[int]]:
        """Iterate over the encoded documents in corpus order."""
        for encoded in self._encoded:
            yield list(encoded)

    def author_indices(self, position: int) -> list[int]:
        """Author positions of the document at ``position``."""
        return [
            self._author_index[author]
            for author in self._documents[position].authors
        ]

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents)

    def __repr__(self) -> str:
        return (
            f"Corpus({self.num_documents} documents, {self.num_words} words, "
            f"{len(self._authors)} authors)"
        )
