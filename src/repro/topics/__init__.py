"""Topic-modelling substrate: tokenisation, LDA, the Author-Topic Model and
EM inference of submission vectors (Section 2.4 / Appendix A of the paper)."""

from repro.topics.atm import ATMResult, AuthorTopicModel
from repro.topics.corpus import Corpus, Document
from repro.topics.em import EMInferenceResult, infer_document_vectors, infer_topic_mixture
from repro.topics.lda import LatentDirichletAllocation, LDAModel
from repro.topics.pipeline import TopicExtractionPipeline
from repro.topics.text import STOP_WORDS, Vocabulary, tokenize

__all__ = [
    "ATMResult",
    "AuthorTopicModel",
    "Corpus",
    "Document",
    "EMInferenceResult",
    "infer_document_vectors",
    "infer_topic_mixture",
    "LatentDirichletAllocation",
    "LDAModel",
    "TopicExtractionPipeline",
    "STOP_WORDS",
    "Vocabulary",
    "tokenize",
]
