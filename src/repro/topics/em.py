"""EM inference of paper topic vectors (Equation 11 of the paper).

Once the Author-Topic Model has produced the topic set (the topic-word
distributions ``p(w | t)``), each *submitted* paper's topic vector is the
mixture that maximises the likelihood of its abstract:

.. math::

    \\vec p = \\arg\\max_{\\vec p} \\prod_{i=1}^{W_p}
              \\sum_{j=1}^{T} p(w_i | t_j) \\, \\vec p[t_j]

This is a standard mixture-weight estimation problem solved by
Expectation-Maximisation: the E-step computes the responsibility of every
topic for every token, the M-step sets the mixture to the average
responsibility.  The resulting vector is normalised (sums to one), exactly
what the WGRAP scoring assumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["EMInferenceResult", "infer_topic_mixture", "infer_document_vectors"]


@dataclass(frozen=True)
class EMInferenceResult:
    """Result of one EM mixture estimation."""

    mixture: np.ndarray
    log_likelihood: float
    iterations: int
    converged: bool


def infer_topic_mixture(
    word_ids: list[int] | np.ndarray,
    topic_word: np.ndarray,
    max_iterations: int = 200,
    tolerance: float = 1e-7,
    smoothing: float = 1e-10,
) -> EMInferenceResult:
    """Estimate the topic mixture of a single document.

    Parameters
    ----------
    word_ids:
        The document's tokens as vocabulary ids (out-of-vocabulary tokens
        must already be removed).
    topic_word:
        ``(T, V)`` topic-word probability matrix from the fitted topic model.
    max_iterations:
        EM iteration budget.
    tolerance:
        Convergence threshold on the log-likelihood improvement.
    smoothing:
        Small constant added to ``p(w | t)`` to avoid zero-probability
        tokens breaking the E-step.

    Returns
    -------
    EMInferenceResult
        The normalised mixture and convergence information.  A document
        with no usable tokens yields the uniform mixture.
    """
    topic_word = np.asarray(topic_word, dtype=np.float64)
    if topic_word.ndim != 2:
        raise ConfigurationError("topic_word must be a (T, V) matrix")
    num_topics = topic_word.shape[0]
    words = np.asarray(word_ids, dtype=np.int64)
    if words.size == 0:
        return EMInferenceResult(
            mixture=np.full(num_topics, 1.0 / num_topics),
            log_likelihood=0.0,
            iterations=0,
            converged=True,
        )
    if words.min(initial=0) < 0 or words.max(initial=0) >= topic_word.shape[1]:
        raise ConfigurationError("word ids are out of range for the topic-word matrix")

    # (W, T): probability of each observed token under each topic.
    token_topic = topic_word[:, words].T + smoothing

    mixture = np.full(num_topics, 1.0 / num_topics, dtype=np.float64)
    previous_log_likelihood = -np.inf
    converged = False
    iterations = 0

    for iterations in range(1, max_iterations + 1):
        weighted = token_topic * mixture[None, :]
        token_totals = weighted.sum(axis=1, keepdims=True)
        responsibilities = weighted / token_totals
        mixture = responsibilities.mean(axis=0)
        log_likelihood = float(np.log(token_totals).sum())
        if log_likelihood - previous_log_likelihood < tolerance:
            converged = True
            previous_log_likelihood = log_likelihood
            break
        previous_log_likelihood = log_likelihood

    return EMInferenceResult(
        mixture=mixture,
        log_likelihood=previous_log_likelihood,
        iterations=iterations,
        converged=converged,
    )


def infer_document_vectors(
    encoded_documents: list[list[int]],
    topic_word: np.ndarray,
    max_iterations: int = 200,
    tolerance: float = 1e-7,
) -> np.ndarray:
    """Infer the topic mixture of every document; returns a ``(D, T)`` matrix."""
    vectors = [
        infer_topic_mixture(
            word_ids, topic_word, max_iterations=max_iterations, tolerance=tolerance
        ).mixture
        for word_ids in encoded_documents
    ]
    return np.vstack(vectors)
