"""Latent Dirichlet Allocation with collapsed Gibbs sampling.

LDA (Blei, Ng and Jordan 2003) is the basic topic model the paper builds
on; the Author-Topic Model of :mod:`repro.topics.atm` extends it with an
author layer.  Both share the same collapsed Gibbs machinery: the topic of
every token is resampled from its conditional distribution given all other
assignments, and the converged counts yield the topic-word and
document-topic distributions.

The sampler keeps the live word-topic counts transposed — ``(V, T)``
instead of the textbook ``(T, V)`` — so the per-token topic distribution
of word ``w`` reads a zero-copy contiguous row view instead of gathering a
strided column, and computes each token's conditional distribution with
in-place vector operations over preallocated buffers — no per-token
temporaries.  Initialisation counts are accumulated with batched
scatter-adds per document.  The arithmetic is identical, elementwise and
reduction-for-reduction, to the textbook per-token formulation, so the
sampler consumes the random stream the same way and produces bit-identical
models under a fixed seed (pinned by ``tests/test_topic_models.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.topics.corpus import Corpus

__all__ = ["LDAModel", "LatentDirichletAllocation"]


@dataclass(frozen=True)
class LDAModel:
    """A fitted LDA model.

    Attributes
    ----------
    topic_word:
        ``(T, V)`` matrix; row ``t`` is the word distribution of topic ``t``.
    document_topic:
        ``(D, T)`` matrix; row ``d`` is the topic mixture of document ``d``.
    log_likelihood_trace:
        Per-iteration joint log-likelihood (useful to check convergence).
    """

    topic_word: np.ndarray
    document_topic: np.ndarray
    log_likelihood_trace: tuple[float, ...]

    @property
    def num_topics(self) -> int:
        """Number of topics ``T``."""
        return int(self.topic_word.shape[0])

    def top_words(self, topic: int, vocabulary, count: int = 10) -> list[str]:
        """The ``count`` highest-probability words of a topic."""
        order = np.argsort(-self.topic_word[topic])[:count]
        return [vocabulary.word_of(int(word_id)) for word_id in order]


class LatentDirichletAllocation:
    """Collapsed Gibbs sampler for LDA.

    Parameters
    ----------
    num_topics:
        Number of topics ``T`` (the paper uses 30).
    alpha:
        Symmetric Dirichlet prior on document-topic mixtures.
    beta:
        Symmetric Dirichlet prior on topic-word distributions.
    iterations:
        Number of Gibbs sweeps over the corpus.
    seed:
        Random seed for reproducibility.
    """

    def __init__(
        self,
        num_topics: int,
        alpha: float = 0.1,
        beta: float = 0.01,
        iterations: int = 200,
        seed: int | None = 0,
    ) -> None:
        if num_topics < 1:
            raise ConfigurationError("num_topics must be at least 1")
        if alpha <= 0 or beta <= 0:
            raise ConfigurationError("alpha and beta must be positive")
        if iterations < 1:
            raise ConfigurationError("iterations must be at least 1")
        self._num_topics = num_topics
        self._alpha = alpha
        self._beta = beta
        self._iterations = iterations
        self._seed = seed

    def fit(self, corpus: Corpus) -> LDAModel:
        """Run the Gibbs sampler and return the fitted model."""
        rng = np.random.default_rng(self._seed)
        num_topics = self._num_topics
        num_words = corpus.num_words
        num_documents = corpus.num_documents
        alpha = self._alpha
        beta = self._beta
        beta_mass = self._beta * num_words

        documents = [np.asarray(corpus.encoded_document(d), dtype=np.int64)
                     for d in range(num_documents)]

        document_topic_counts = np.zeros((num_documents, num_topics), dtype=np.float64)
        # Transposed layout: word_topic_counts[w] is the contiguous live
        # topic distribution of word w (the hot read of the inner loop).
        word_topic_counts = np.zeros((num_words, num_topics), dtype=np.float64)
        topic_totals = np.zeros(num_topics, dtype=np.float64)
        assignments: list[np.ndarray] = []

        # Random initialisation (one batched scatter-add per document; the
        # topic draws are the same as the historical per-token loop).
        for document_index, words in enumerate(documents):
            topics = rng.integers(0, num_topics, size=words.size)
            assignments.append(topics)
            np.add.at(document_topic_counts[document_index], topics, 1.0)
            np.add.at(word_topic_counts, (words, topics), 1.0)
            np.add.at(topic_totals, topics, 1.0)

        weights = np.empty(num_topics, dtype=np.float64)
        scratch = np.empty(num_topics, dtype=np.float64)
        cumulative = np.empty(num_topics, dtype=np.float64)
        trace: list[float] = []
        for _ in range(self._iterations):
            for document_index, words in enumerate(documents):
                topics = assignments[document_index]
                topic_list = topics.tolist()
                word_list = words.tolist()
                doc_counts = document_topic_counts[document_index]
                # Every conditional is strictly positive (alpha, beta > 0),
                # so each token consumes exactly one uniform draw; one
                # batched draw per document is stream-identical to the
                # historical per-token rng.random() calls.
                randoms = rng.random(words.size).tolist()
                for position in range(words.size):
                    word = word_list[position]
                    old_topic = topic_list[position]
                    word_row = word_topic_counts[word]
                    # Remove the token from the counts.
                    doc_counts[old_topic] -= 1
                    word_row[old_topic] -= 1
                    topic_totals[old_topic] -= 1
                    # Conditional distribution over topics — elementwise
                    # identical to
                    # (doc + alpha) * (word + beta) / (totals + beta * V).
                    np.add(doc_counts, alpha, out=weights)
                    np.add(word_row, beta, out=scratch)
                    np.multiply(weights, scratch, out=weights)
                    np.add(topic_totals, beta_mass, out=scratch)
                    np.divide(weights, scratch, out=weights)
                    # Inlined _sample_index (positive-total path).
                    threshold = randoms[position] * weights.sum()
                    np.cumsum(weights, out=cumulative)
                    new_topic = int(np.searchsorted(cumulative, threshold))
                    topic_list[position] = new_topic
                    doc_counts[new_topic] += 1
                    word_row[new_topic] += 1
                    topic_totals[new_topic] += 1
                topics[:] = topic_list
            trace.append(
                _joint_log_likelihood(
                    document_topic_counts,
                    np.ascontiguousarray(word_topic_counts.T),
                    topic_totals,
                    self._alpha, self._beta,
                )
            )
        topic_word_counts = np.ascontiguousarray(word_topic_counts.T)

        topic_word = (topic_word_counts + self._beta) / (
            topic_totals[:, None] + self._beta * num_words
        )
        document_topic = (document_topic_counts + self._alpha) / (
            document_topic_counts.sum(axis=1, keepdims=True) + self._alpha * num_topics
        )
        return LDAModel(
            topic_word=topic_word,
            document_topic=document_topic,
            log_likelihood_trace=tuple(trace),
        )


def _sample_index(weights: np.ndarray, rng: np.random.Generator) -> int:
    """Draw an index proportionally to non-negative ``weights``."""
    total = weights.sum()
    if total <= 0.0:
        return int(rng.integers(0, weights.size))
    threshold = rng.random() * total
    return int(np.searchsorted(np.cumsum(weights), threshold))


def _joint_log_likelihood(
    document_topic_counts: np.ndarray,
    topic_word_counts: np.ndarray,
    topic_totals: np.ndarray,
    alpha: float,
    beta: float,
) -> float:
    """A cheap (up to constants) joint log-likelihood used as a trace."""
    document_mixtures = document_topic_counts + alpha
    document_mixtures /= document_mixtures.sum(axis=1, keepdims=True)
    word_mixtures = topic_word_counts + beta
    word_mixtures /= topic_totals[:, None] + beta * topic_word_counts.shape[1]
    return float(
        (document_topic_counts * np.log(document_mixtures + 1e-12)).sum()
        + (topic_word_counts * np.log(word_mixtures + 1e-12)).sum()
    )
