"""Latent Dirichlet Allocation with collapsed Gibbs sampling.

LDA (Blei, Ng and Jordan 2003) is the basic topic model the paper builds
on; the Author-Topic Model of :mod:`repro.topics.atm` extends it with an
author layer.  Both share the same collapsed Gibbs machinery: the topic of
every token is resampled from its conditional distribution given all other
assignments, and the converged counts yield the topic-word and
document-topic distributions.

The sampler is written with per-token Python loops over vectorised numpy
probability computations — ample for the corpus sizes of the reviewer
assignment pipeline (hundreds of abstracts).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.topics.corpus import Corpus

__all__ = ["LDAModel", "LatentDirichletAllocation"]


@dataclass(frozen=True)
class LDAModel:
    """A fitted LDA model.

    Attributes
    ----------
    topic_word:
        ``(T, V)`` matrix; row ``t`` is the word distribution of topic ``t``.
    document_topic:
        ``(D, T)`` matrix; row ``d`` is the topic mixture of document ``d``.
    log_likelihood_trace:
        Per-iteration joint log-likelihood (useful to check convergence).
    """

    topic_word: np.ndarray
    document_topic: np.ndarray
    log_likelihood_trace: tuple[float, ...]

    @property
    def num_topics(self) -> int:
        """Number of topics ``T``."""
        return int(self.topic_word.shape[0])

    def top_words(self, topic: int, vocabulary, count: int = 10) -> list[str]:
        """The ``count`` highest-probability words of a topic."""
        order = np.argsort(-self.topic_word[topic])[:count]
        return [vocabulary.word_of(int(word_id)) for word_id in order]


class LatentDirichletAllocation:
    """Collapsed Gibbs sampler for LDA.

    Parameters
    ----------
    num_topics:
        Number of topics ``T`` (the paper uses 30).
    alpha:
        Symmetric Dirichlet prior on document-topic mixtures.
    beta:
        Symmetric Dirichlet prior on topic-word distributions.
    iterations:
        Number of Gibbs sweeps over the corpus.
    seed:
        Random seed for reproducibility.
    """

    def __init__(
        self,
        num_topics: int,
        alpha: float = 0.1,
        beta: float = 0.01,
        iterations: int = 200,
        seed: int | None = 0,
    ) -> None:
        if num_topics < 1:
            raise ConfigurationError("num_topics must be at least 1")
        if alpha <= 0 or beta <= 0:
            raise ConfigurationError("alpha and beta must be positive")
        if iterations < 1:
            raise ConfigurationError("iterations must be at least 1")
        self._num_topics = num_topics
        self._alpha = alpha
        self._beta = beta
        self._iterations = iterations
        self._seed = seed

    def fit(self, corpus: Corpus) -> LDAModel:
        """Run the Gibbs sampler and return the fitted model."""
        rng = np.random.default_rng(self._seed)
        num_topics = self._num_topics
        num_words = corpus.num_words
        num_documents = corpus.num_documents

        documents = [np.asarray(corpus.encoded_document(d), dtype=np.int64)
                     for d in range(num_documents)]

        document_topic_counts = np.zeros((num_documents, num_topics), dtype=np.float64)
        topic_word_counts = np.zeros((num_topics, num_words), dtype=np.float64)
        topic_totals = np.zeros(num_topics, dtype=np.float64)
        assignments: list[np.ndarray] = []

        # Random initialisation.
        for document_index, words in enumerate(documents):
            topics = rng.integers(0, num_topics, size=words.size)
            assignments.append(topics)
            for word, topic in zip(words, topics):
                document_topic_counts[document_index, topic] += 1
                topic_word_counts[topic, word] += 1
                topic_totals[topic] += 1

        trace: list[float] = []
        for _ in range(self._iterations):
            for document_index, words in enumerate(documents):
                topics = assignments[document_index]
                for position in range(words.size):
                    word = words[position]
                    old_topic = topics[position]
                    # Remove the token from the counts.
                    document_topic_counts[document_index, old_topic] -= 1
                    topic_word_counts[old_topic, word] -= 1
                    topic_totals[old_topic] -= 1
                    # Conditional distribution over topics.
                    weights = (
                        (document_topic_counts[document_index] + self._alpha)
                        * (topic_word_counts[:, word] + self._beta)
                        / (topic_totals + self._beta * num_words)
                    )
                    new_topic = _sample_index(weights, rng)
                    topics[position] = new_topic
                    document_topic_counts[document_index, new_topic] += 1
                    topic_word_counts[new_topic, word] += 1
                    topic_totals[new_topic] += 1
            trace.append(
                _joint_log_likelihood(
                    document_topic_counts, topic_word_counts, topic_totals,
                    self._alpha, self._beta,
                )
            )

        topic_word = (topic_word_counts + self._beta) / (
            topic_totals[:, None] + self._beta * num_words
        )
        document_topic = (document_topic_counts + self._alpha) / (
            document_topic_counts.sum(axis=1, keepdims=True) + self._alpha * num_topics
        )
        return LDAModel(
            topic_word=topic_word,
            document_topic=document_topic,
            log_likelihood_trace=tuple(trace),
        )


def _sample_index(weights: np.ndarray, rng: np.random.Generator) -> int:
    """Draw an index proportionally to non-negative ``weights``."""
    total = weights.sum()
    if total <= 0.0:
        return int(rng.integers(0, weights.size))
    threshold = rng.random() * total
    return int(np.searchsorted(np.cumsum(weights), threshold))


def _joint_log_likelihood(
    document_topic_counts: np.ndarray,
    topic_word_counts: np.ndarray,
    topic_totals: np.ndarray,
    alpha: float,
    beta: float,
) -> float:
    """A cheap (up to constants) joint log-likelihood used as a trace."""
    document_mixtures = document_topic_counts + alpha
    document_mixtures /= document_mixtures.sum(axis=1, keepdims=True)
    word_mixtures = topic_word_counts + beta
    word_mixtures /= topic_totals[:, None] + beta * topic_word_counts.shape[1]
    return float(
        (document_topic_counts * np.log(document_mixtures + 1e-12)).sum()
        + (topic_word_counts * np.log(word_mixtures + 1e-12)).sum()
    )
