"""Text preprocessing: tokenisation, stop-word removal and vocabularies.

The topic-extraction pipeline of the paper (Appendix A) works on the raw
abstracts of reviewers' publications and of the submitted papers.  This
module provides the minimal, dependency-free text plumbing the Gibbs
samplers need: a tokenizer, a compact English stop-word list and a
:class:`Vocabulary` that maps words to dense integer identifiers.
"""

from __future__ import annotations

import re
from collections import Counter
from collections.abc import Iterable, Iterator

from repro.exceptions import ConfigurationError, VocabularyError

__all__ = ["STOP_WORDS", "tokenize", "Vocabulary"]

#: small English stop-word list tailored to scientific abstracts
STOP_WORDS: frozenset[str] = frozenset(
    """
    a about above after again all also an and any are as at be because been
    before being below between both but by can could did do does doing down
    during each few for from further had has have having he her here hers him
    his how i if in into is it its itself just me more most my no nor not of
    off on once only or other our ours out over own s same she should so some
    such t than that the their theirs them then there these they this those
    through to too under until up very was we were what when where which while
    who whom why will with you your yours
    using based used use new propose proposed show shows paper approach
    present presents results result method methods problem problems
    """.split()
)

_TOKEN_PATTERN = re.compile(r"[a-z][a-z0-9\-]+")


def tokenize(
    text: str,
    stop_words: frozenset[str] = STOP_WORDS,
    min_length: int = 3,
) -> list[str]:
    """Lower-case, split and filter a piece of text into content tokens.

    Parameters
    ----------
    text:
        Raw text (title, abstract, ...).
    stop_words:
        Words to drop entirely.
    min_length:
        Minimum token length kept.
    """
    tokens = _TOKEN_PATTERN.findall(text.lower())
    return [
        token
        for token in tokens
        if len(token) >= min_length and token not in stop_words
    ]


class Vocabulary:
    """A bidirectional word/id mapping with document-frequency pruning."""

    __slots__ = ("_word_to_id", "_id_to_word")

    def __init__(self, words: Iterable[str] = ()) -> None:
        self._word_to_id: dict[str, int] = {}
        self._id_to_word: list[str] = []
        for word in words:
            self.add(word)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, word: str) -> int:
        """Add a word (idempotent) and return its id."""
        if not word:
            raise ConfigurationError("cannot add an empty word to a vocabulary")
        existing = self._word_to_id.get(word)
        if existing is not None:
            return existing
        word_id = len(self._id_to_word)
        self._word_to_id[word] = word_id
        self._id_to_word.append(word)
        return word_id

    @classmethod
    def from_documents(
        cls,
        tokenized_documents: Iterable[list[str]],
        min_document_frequency: int = 1,
        max_document_ratio: float = 1.0,
    ) -> "Vocabulary":
        """Build a vocabulary from tokenised documents with frequency pruning.

        Parameters
        ----------
        tokenized_documents:
            Documents as lists of tokens.
        min_document_frequency:
            Words appearing in fewer documents are dropped.
        max_document_ratio:
            Words appearing in more than this fraction of documents are
            dropped (corpus-specific stop words).
        """
        documents = list(tokenized_documents)
        if not 0.0 < max_document_ratio <= 1.0:
            raise ConfigurationError("max_document_ratio must be in (0, 1]")
        document_frequency: Counter[str] = Counter()
        for tokens in documents:
            document_frequency.update(set(tokens))
        limit = max(1, int(max_document_ratio * max(len(documents), 1)))
        kept = sorted(
            word
            for word, frequency in document_frequency.items()
            if frequency >= min_document_frequency and frequency <= limit
        )
        return cls(kept)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def id_of(self, word: str) -> int:
        """The id of ``word``.

        Raises
        ------
        VocabularyError
            If the word is unknown.
        """
        try:
            return self._word_to_id[word]
        except KeyError:
            raise VocabularyError(f"unknown word {word!r}") from None

    def word_of(self, word_id: int) -> str:
        """The word with identifier ``word_id``."""
        try:
            return self._id_to_word[word_id]
        except IndexError:
            raise VocabularyError(f"unknown word id {word_id}") from None

    def encode(self, tokens: Iterable[str], skip_unknown: bool = True) -> list[int]:
        """Map tokens to ids, silently dropping out-of-vocabulary tokens."""
        encoded: list[int] = []
        for token in tokens:
            word_id = self._word_to_id.get(token)
            if word_id is None:
                if skip_unknown:
                    continue
                raise VocabularyError(f"unknown word {token!r}")
            encoded.append(word_id)
        return encoded

    def __len__(self) -> int:
        return len(self._id_to_word)

    def __contains__(self, word: str) -> bool:
        return word in self._word_to_id

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_word)

    def __repr__(self) -> str:
        return f"Vocabulary({len(self)} words)"
