"""End-to-end topic-vector extraction (Section 2.4 and Appendix A).

The pipeline reproduces the paper's two-step extraction:

1. Fit the **Author-Topic Model** on the candidate reviewers' publication
   records; each author's topic distribution becomes the reviewer's
   expertise vector and the topic-word distributions define the topic set.
2. Infer every **submission's** topic vector with the EM mixture estimator
   (Equation 11) over the fixed topic set.

The pipeline outputs :class:`~repro.core.entities.Reviewer` and
:class:`~repro.core.entities.Paper` objects and can assemble a ready-to-solve
:class:`~repro.core.problem.WGRAPProblem` directly.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.entities import Paper, Reviewer
from repro.core.problem import WGRAPProblem
from repro.core.vectors import TopicVector
from repro.exceptions import ConfigurationError, SolverError
from repro.topics.atm import ATMResult, AuthorTopicModel
from repro.topics.corpus import Corpus, Document
from repro.topics.em import infer_topic_mixture
from repro.topics.text import tokenize

__all__ = ["TopicExtractionPipeline"]


class TopicExtractionPipeline:
    """Turn raw publication records and abstracts into WGRAP inputs.

    Parameters
    ----------
    num_topics:
        Number of topics ``T`` (30 in the paper).
    atm_iterations:
        Gibbs sweeps for the Author-Topic Model.
    em_iterations:
        EM iterations for submission inference.
    seed:
        Random seed shared by the samplers.
    """

    def __init__(
        self,
        num_topics: int = 30,
        atm_iterations: int = 150,
        em_iterations: int = 200,
        seed: int | None = 0,
    ) -> None:
        if num_topics < 2:
            raise ConfigurationError("num_topics must be at least 2")
        self._num_topics = num_topics
        self._atm_iterations = atm_iterations
        self._em_iterations = em_iterations
        self._seed = seed
        self._model: ATMResult | None = None
        self._publications: Corpus | None = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, publications: Corpus) -> "TopicExtractionPipeline":
        """Fit the Author-Topic Model on the reviewers' publication corpus."""
        model = AuthorTopicModel(
            num_topics=self._num_topics,
            iterations=self._atm_iterations,
            seed=self._seed,
        )
        self._model = model.fit(publications)
        self._publications = publications
        return self

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._model is not None

    @property
    def model(self) -> ATMResult:
        """The fitted Author-Topic Model."""
        return self._require_model()

    @property
    def num_topics(self) -> int:
        """Number of topics ``T``."""
        return self._num_topics

    def topic_keywords(self, topic: int, count: int = 8) -> list[str]:
        """The most probable words of a topic (for case-study tables)."""
        model = self._require_model()
        publications = self._publications
        assert publications is not None
        return model.top_words(topic, publications.vocabulary, count=count)

    # ------------------------------------------------------------------
    # Reviewers
    # ------------------------------------------------------------------
    def reviewer(self, author_id: str, name: str | None = None,
                 h_index: int | None = None) -> Reviewer:
        """Build the Reviewer object of one author of the fitted corpus."""
        model = self._require_model()
        vector = TopicVector(model.author_vector(author_id))
        return Reviewer(
            id=author_id, vector=vector, name=name or author_id, h_index=h_index
        )

    def reviewers(self, author_ids: Iterable[str] | None = None) -> list[Reviewer]:
        """Reviewer objects for the given authors (default: every author)."""
        model = self._require_model()
        ids = list(author_ids) if author_ids is not None else list(model.authors)
        return [self.reviewer(author_id) for author_id in ids]

    # ------------------------------------------------------------------
    # Papers
    # ------------------------------------------------------------------
    def infer_paper(
        self, paper_id: str, abstract: str, title: str | None = None
    ) -> Paper:
        """Infer the topic vector of one submission from its abstract."""
        model = self._require_model()
        publications = self._publications
        assert publications is not None
        word_ids = publications.vocabulary.encode(tokenize(abstract))
        result = infer_topic_mixture(
            word_ids, model.topic_word, max_iterations=self._em_iterations
        )
        return Paper(
            id=paper_id,
            vector=TopicVector(result.mixture),
            title=title or paper_id,
            abstract=abstract,
        )

    def infer_papers(self, submissions: Sequence[Document]) -> list[Paper]:
        """Infer topic vectors for a batch of submission documents."""
        model = self._require_model()
        publications = self._publications
        assert publications is not None
        papers = []
        for document in submissions:
            word_ids = publications.vocabulary.encode(document.tokens)
            result = infer_topic_mixture(
                word_ids, model.topic_word, max_iterations=self._em_iterations
            )
            papers.append(
                Paper(
                    id=document.id,
                    vector=TopicVector(result.mixture),
                    title=document.id,
                    abstract=" ".join(document.tokens),
                )
            )
        return papers

    # ------------------------------------------------------------------
    # Problem assembly
    # ------------------------------------------------------------------
    def build_problem(
        self,
        submissions: Sequence[Document],
        reviewer_ids: Iterable[str] | None = None,
        group_size: int = 3,
        reviewer_workload: int | None = None,
        conflicts: Iterable[tuple[str, str]] | None = None,
    ) -> WGRAPProblem:
        """Assemble a :class:`WGRAPProblem` from submissions and the fitted model."""
        papers = self.infer_papers(submissions)
        reviewers = self.reviewers(reviewer_ids)
        return WGRAPProblem(
            papers=papers,
            reviewers=reviewers,
            group_size=group_size,
            reviewer_workload=reviewer_workload,
            conflicts=conflicts,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_model(self) -> ATMResult:
        if self._model is None:
            raise SolverError(
                "the pipeline has not been fitted; call fit() with a publication corpus"
            )
        return self._model
