"""Warm-standby replication: WAL shipping, standby replay, promotion.

``repro.replication`` turns the per-tenant WAL root of
:mod:`repro.durability` into a replication unit: a **primary**
:class:`~repro.net.server.AssignmentServer` ships every journaled record
(and checkpoint snapshots for catch-up) over a dedicated client
connection to a **warm standby** process, which journals and replays
them into resident engines as they arrive — so standby state is
bitwise-equal to the primary at every acked seq, and promotion is
"finish the received tail, start admitting writes" rather than a cold
recovery.

Topology and protocol (see ``docs/durability.md`` for the full
contract):

* the primary *dials* the standby's ordinary TCP port and speaks the
  replication frames in :data:`REPLICATION_KINDS` over the normal
  one-response-per-line protocol — every frame is acked, and the acks
  drive the primary's lag gauge and gap-triggered resyncs;
* the standby journals each shipped record through its own
  :class:`~repro.durability.TenantJournal` *before* replaying it, so a
  standby crash recovers exactly like a primary crash;
* replay is idempotent and prefix-consistent: duplicates are skipped,
  out-of-order frames are refused as ``gap`` (pinned by the Hypothesis
  property in ``tests/test_replication.py``), and a gap makes the
  primary re-run catch-up for that tenant;
* promotion — explicit (``{"kind": "promote"}``) or automatic on
  heartbeat timeout — registers the replayed engines as live tenants;
  an unpromoted standby refuses engine traffic with
  ``error_type: "standby"`` so clients fail over deterministically.
"""

from __future__ import annotations

from repro.replication.sender import ReplicationSender
from repro.replication.standby import StandbyCoordinator, StandbyReplica

__all__ = [
    "REPLICATION_KINDS",
    "ReplicationSender",
    "StandbyCoordinator",
    "StandbyReplica",
]

#: Request kinds of the replication stream (primary -> standby), served
#: by the standby server itself.  ``docs/service.md`` renders this table
#: verbatim and ``tests/test_docs.py`` pins the two in sync.
REPLICATION_KINDS: dict[str, str] = {
    "repl_hello": (
        "open a replication stream: the primary names itself (`primary`), "
        "the standby answers its per-tenant applied seqs so catch-up ships "
        "only the missing suffix"
    ),
    "repl_snapshot": (
        "install a checkpoint for `tenant` (`checkpoint` is the full "
        "checkpoint body): the standby adopts it, discards its local WAL, "
        "and rebuilds the resident engine from it"
    ),
    "repl_record": (
        "journal and replay one WAL `record` for `tenant` (`prev` names the "
        "record's predecessor in the WAL chain — the record applies only "
        "onto exactly that state); the ack reports `status` "
        "applied/duplicate/gap and the standby's `applied_seq` (a gap makes "
        "the primary re-run catch-up)"
    ),
    "repl_heartbeat": (
        "primary liveness probe; any replication frame feeds the standby's "
        "health monitor, which can auto-promote on timeout"
    ),
}
