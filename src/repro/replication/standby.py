"""The standby half of replication: journal, replay, promote.

A :class:`StandbyCoordinator` lives inside a standby
:class:`~repro.net.server.AssignmentServer` and serves the replication
frames the primary ships.  Each tenant is a :class:`StandbyReplica`: its
own :class:`~repro.durability.TenantJournal` (under the standby's WAL
root) plus a resident engine continuously rebuilt by replay.  Every
shipped record is journaled *before* it executes — the standby is
exactly as crash-safe as the primary, and a standby restart resumes
from its own checkpoint + WAL tail.

Replay is idempotent and prefix-consistent by construction (pinned by
the Hypothesis property in ``tests/test_replication.py``).  Envelope
seqs may legitimately skip numbers — queries and idempotency-dedup hits
consume a seq without appending — so each shipped frame names ``prev``,
the record's predecessor in the tenant's WAL chain, and the rule is
chain adjacency, not seq arithmetic:

* ``seq <= applied_seq`` — duplicate, skipped without side effects;
* ``prev != applied_seq`` — gap, refused without side effects (the
  ack makes the primary re-run catch-up for the tenant);
* ``prev == applied_seq`` — journal, dispatch, remember the response
  under the record's idempotency key.

Promotion drains the apply executor (everything received is applied),
then registers each replica as a live tenant with ``first_seq`` one past
its applied seq — from that instant the server admits ordinary engine
traffic and the replicas' journals keep journaling as usual.
"""

from __future__ import annotations

import asyncio
import contextlib
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.durability.journal import DurabilityConfig, TenantJournal
from repro.durability.wal import WalRecord
from repro.exceptions import ConfigurationError, RequestError
from repro.fault import FaultInjected, get_failpoints
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.service.requests import request_from_dict

TRACER = get_tracer()

__all__ = ["StandbyCoordinator", "StandbyReplica", "record_from_body"]


def record_from_body(body: dict[str, Any]) -> WalRecord:
    """Rebuild a :class:`WalRecord` from a shipped ``record.to_body()``."""
    if not isinstance(body, dict):
        raise RequestError("a replication 'record' must be a JSON object")
    try:
        seq = int(body["seq"])
        kind = str(body["kind"])
        request = body["request"]
    except (KeyError, TypeError, ValueError) as exc:
        raise RequestError(f"malformed replication record: {exc!r}") from None
    if not isinstance(request, dict):
        raise RequestError("a replication record's 'request' must be an object")
    cseq = body.get("cseq")
    return WalRecord(
        seq=seq,
        kind=kind,
        request=request,
        client_seq=int(cseq) if cseq is not None else None,
    )


class StandbyReplica:
    """One replicated tenant: journal + engine kept warm by replay.

    All mutating calls run on the coordinator's single apply thread, so
    the journal keeps its single-writer contract.
    """

    def __init__(self, config: DurabilityConfig, tenant_id: str) -> None:
        self.tenant_id = tenant_id
        self.journal = TenantJournal(config, tenant_id)
        self.engine = None
        self.session = None
        self.applied_seq = 0

    @property
    def resident(self) -> bool:
        """True once a snapshot (or local recovery) built the engine."""
        return self.session is not None

    def recover_local(self) -> None:
        """Resume from this standby's own durable state (restart path)."""
        outcome = self.journal.recover()
        self.engine = outcome.engine
        self.session = outcome.session
        self.applied_seq = outcome.stats.last_seq

    def install_snapshot(self, payload: dict[str, Any]) -> int:
        """Adopt a shipped checkpoint as the new replay base."""
        self.journal.install_checkpoint(payload)
        self.recover_local()
        return self.applied_seq

    def apply_record(
        self, record: WalRecord, prev_seq: int | None = None
    ) -> tuple[str, int]:
        """Journal + replay one record; returns ``(status, applied_seq)``.

        ``prev_seq`` is the record's predecessor in the primary's WAL
        chain; the record applies only onto exactly that state.  Without
        it (a sender that predates the field) the rule degrades to
        strict seq contiguity.
        """
        registry = get_registry()
        try:
            get_failpoints().hit("repl_apply")
        except FaultInjected:
            # Answer as a gap: no state changed, the primary re-ships.
            registry.counter(
                "replication.gaps", "out-of-order frames refused by the standby"
            ).inc()
            return "gap", self.applied_seq
        if self.resident and record.seq <= self.applied_seq:
            registry.counter(
                "replication.duplicates",
                "shipped records skipped as already-applied",
            ).inc()
            return "duplicate", self.applied_seq
        adjacent = (
            prev_seq == self.applied_seq
            if prev_seq is not None
            else record.seq == self.applied_seq + 1
        )
        if not self.resident or not adjacent:
            registry.counter(
                "replication.gaps", "out-of-order frames refused by the standby"
            ).inc()
            return "gap", self.applied_seq
        with TRACER.span(
            "replication.apply", tenant=self.tenant_id, seq=record.seq
        ):
            self.journal.append_record(record)
            response = self.session.dispatch(request_from_dict(record.request))
            if record.client_seq is not None:
                self.journal.record_applied(record.client_seq, response)
            self.applied_seq = record.seq
            self.journal.sync_batch()
            if self.journal.should_checkpoint:
                self.journal.checkpoint(self.engine)
        registry.counter(
            "replication.applied", "shipped records applied on the standby"
        ).inc()
        return "applied", self.applied_seq


class StandbyCoordinator:
    """Serves replication frames and owns the standby's promotion state."""

    def __init__(
        self,
        config: DurabilityConfig,
        *,
        heartbeat_timeout: float = 2.0,
    ) -> None:
        self.config = config
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.replicas: dict[str, StandbyReplica] = {}
        self.promoted = False
        self.primary: str | None = None
        self.last_frame: float | None = None
        self.promoted_tenants: list[str] = []
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="standby-apply"
        )
        self._monitor: asyncio.Task | None = None
        self._promote_lock = asyncio.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def recover_existing(self) -> list[str]:
        """Resume every tenant with durable state under the standby root.

        Synchronous, called before the server starts (the restart path):
        a warm standby that crashed comes back with its replicas already
        replayed to their own last durable seq — the primary's hello/
        catch-up then ships only the missing suffix.
        """
        root = self.config.root
        if not root.exists():
            return []
        recovered: list[str] = []
        for directory in sorted(root.iterdir()):
            if not directory.is_dir():
                continue
            tenant_id = directory.name
            if tenant_id in self.replicas:
                continue
            replica = StandbyReplica(self.config, tenant_id)
            if not replica.journal.has_checkpoint():
                continue
            replica.recover_local()
            self.replicas[tenant_id] = replica
            recovered.append(tenant_id)
        return recovered

    async def close(self) -> None:
        """Graceful stop: checkpoint unpromoted replicas, release the thread."""
        self.stop_monitor()
        if not self.promoted:
            loop = asyncio.get_running_loop()

            def _final() -> None:
                for replica in self.replicas.values():
                    try:
                        if replica.resident:
                            replica.journal.checkpoint(replica.engine)
                    except Exception:  # noqa: BLE001 — best-effort, WAL suffices
                        pass
                    finally:
                        replica.journal.close()

            await loop.run_in_executor(self._executor, _final)
        self._executor.shutdown(wait=True)

    async def abort(self) -> None:
        """Crash-stop: drop everything, no checkpoints (recovery tests)."""
        self.stop_monitor()
        self._executor.shutdown(wait=False, cancel_futures=True)
        if not self.promoted:
            for replica in self.replicas.values():
                replica.journal.abort()

    # ------------------------------------------------------------------
    # Frame handling (event loop)
    # ------------------------------------------------------------------
    async def handle(self, kind: str, payload: dict[str, Any]) -> dict[str, Any]:
        """Serve one replication frame; raises for structured refusal."""
        if self.promoted:
            raise ConfigurationError(
                "this standby has been promoted; replication frames are refused"
            )
        self.last_frame = asyncio.get_running_loop().time()
        if kind == "repl_hello":
            primary = payload.get("primary")
            self.primary = str(primary) if primary else self.primary
            return {
                "role": "standby",
                "tenants": {
                    tenant_id: replica.applied_seq
                    for tenant_id, replica in sorted(self.replicas.items())
                },
            }
        if kind == "repl_heartbeat":
            return {"role": "standby"}
        tenant_id = payload.get("tenant")
        if not isinstance(tenant_id, str) or not tenant_id:
            raise RequestError(f"a {kind} frame needs a string 'tenant' id")
        replica = self.replicas.get(tenant_id)
        if replica is None:
            replica = StandbyReplica(self.config, tenant_id)
            self.replicas[tenant_id] = replica
        loop = asyncio.get_running_loop()
        if kind == "repl_snapshot":
            checkpoint = payload.get("checkpoint")
            if not isinstance(checkpoint, dict):
                raise RequestError(
                    "a repl_snapshot frame needs a 'checkpoint' object"
                )
            applied_seq = await loop.run_in_executor(
                self._executor, replica.install_snapshot, checkpoint
            )
            return {
                "tenant": tenant_id,
                "status": "snapshot",
                "applied_seq": applied_seq,
            }
        # repl_record
        record = record_from_body(payload.get("record"))
        prev = payload.get("prev")
        prev_seq = int(prev) if isinstance(prev, (int, float)) else None
        status, applied_seq = await loop.run_in_executor(
            self._executor, replica.apply_record, record, prev_seq
        )
        return {"tenant": tenant_id, "status": status, "applied_seq": applied_seq}

    # ------------------------------------------------------------------
    # Promotion
    # ------------------------------------------------------------------
    async def promote(self, server: Any) -> dict[str, Any]:
        """Finish replaying the received tail, then admit writes.

        Registers every resident replica as a live tenant of ``server``
        with ``first_seq`` one past its applied seq; the replica's
        journal carries over, so the promoted server keeps journaling
        (and can itself gain a standby via ``start_replication``).
        Idempotent: a second promote reports ``already_promoted``.
        """
        async with self._promote_lock:
            if self.promoted:
                return {
                    "promoted": True,
                    "already_promoted": True,
                    "tenants": list(self.promoted_tenants),
                }
            loop = asyncio.get_running_loop()

            def _drain_tail() -> None:
                # Runs after every queued apply on the single executor:
                # the received tail is fully replayed and synced.
                with TRACER.span(
                    "replication.promote", tenants=len(self.replicas)
                ):
                    for replica in self.replicas.values():
                        if replica.resident:
                            replica.journal.sync_batch()

            await loop.run_in_executor(self._executor, _drain_tail)
            self.promoted = True
            self.stop_monitor()
            registered: list[str] = []
            for tenant_id in sorted(self.replicas):
                replica = self.replicas[tenant_id]
                if not replica.resident:
                    continue  # never received a snapshot: nothing to serve
                tenant = server.tenants.register(
                    tenant_id,
                    replica.engine,
                    journal=replica.journal,
                    first_seq=replica.applied_seq + 1,
                )
                server._activate(tenant)
                registered.append(tenant_id)
            self.promoted_tenants = registered
            get_registry().counter(
                "replication.promotions", "standby promotions completed"
            ).inc()
            return {"promoted": True, "tenants": registered}

    # ------------------------------------------------------------------
    # Health monitoring
    # ------------------------------------------------------------------
    def start_monitor(self, server: Any, auto_promote_after: float | None) -> None:
        """Auto-promote when the primary falls silent for this long."""
        if auto_promote_after is None or self._monitor is not None:
            return
        self._monitor = asyncio.get_running_loop().create_task(
            self._monitor_loop(server, float(auto_promote_after)),
            name="standby-monitor",
        )

    def stop_monitor(self) -> None:
        if self._monitor is not None:
            self._monitor.cancel()
            self._monitor = None

    async def _monitor_loop(self, server: Any, after: float) -> None:
        loop = asyncio.get_running_loop()
        interval = max(0.01, min(0.1, after / 5))
        with contextlib.suppress(asyncio.CancelledError):
            while not self.promoted:
                await asyncio.sleep(interval)
                if self.last_frame is None:
                    continue  # never heard a primary: don't promote blind
                if loop.time() - self.last_frame >= after:
                    await self.promote(server)
                    return

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def status(self, loop_time: float | None = None) -> dict[str, Any]:
        age = None
        if self.last_frame is not None and loop_time is not None:
            age = max(0.0, loop_time - self.last_frame)
        return {
            "promoted": self.promoted,
            "primary": self.primary,
            "heartbeat_age": age,
            "heartbeat_timeout": self.heartbeat_timeout,
            "tenants": {
                tenant_id: {
                    "applied_seq": replica.applied_seq,
                    "resident": replica.resident,
                }
                for tenant_id, replica in sorted(self.replicas.items())
            },
        }
