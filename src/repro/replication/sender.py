"""The primary half of replication: ship the WAL, watch the acks.

A :class:`ReplicationSender` runs inside the primary
:class:`~repro.net.server.AssignmentServer`'s event loop.  It dials the
standby's ordinary TCP port, performs the hello/catch-up handshake, then
streams every journaled record as it is appended (the
``TenantJournal.on_append`` hook hands records over from the tenant
worker threads).  The standby's acks — one structured response per
frame, the normal wire contract — drive everything else:

* ``applied_seq`` advances the per-tenant acked watermark and the
  ``replication.lag`` gauge (shipped-but-unacked records);
* a ``gap`` status queues a **resync** for that tenant: re-read its
  checkpoint + WAL tail from disk and ship the missing suffix (a
  snapshot first if the standby is behind the checkpoint);
* an ``ok: false`` ack with ``error_type: "configuration"`` means the
  standby was promoted (or is not a standby at all) — the sender
  detaches for good instead of fighting the new primary.

Connection loss — including the ``repl_send`` failpoint, which drops
the link mid-frame — reconnects with a full handshake; the standby's
dedup makes the overlap harmless.  Heartbeats go out whenever the
stream is idle for one interval; the ``heartbeat`` failpoint silences
them to exercise standby auto-promotion.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from typing import Any

from repro.durability.journal import read_checkpoint
from repro.durability.wal import WalRecord, read_wal
from repro.fault import FaultInjected, get_failpoints
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer

TRACER = get_tracer()

__all__ = ["ReplicationSender"]

_WAKE = ("wake", None, None, None)


class ReplicationSender:
    """Streams one durable server's WAL to one standby endpoint."""

    def __init__(
        self,
        server: Any,
        host: str,
        port: int,
        *,
        heartbeat_interval: float = 0.25,
        retry_delay: float = 0.2,
    ) -> None:
        self.server = server
        self.host = host
        self.port = int(port)
        self.heartbeat_interval = float(heartbeat_interval)
        self.retry_delay = float(retry_delay)
        self.connected = False
        self.detached = False
        self.shipped: dict[str, int] = {}
        self.acked: dict[str, int] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._queue: asyncio.Queue | None = None
        self._task: asyncio.Task | None = None
        self._resync: set[str] = set()
        self._registry = get_registry()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._task = self._loop.create_task(self._run(), name="replication-sender")

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await self._task
            self._task = None
        self.connected = False

    # ------------------------------------------------------------------
    # The shipping hooks (called from tenant worker threads)
    # ------------------------------------------------------------------
    def ship(self, tenant_id: str, record: WalRecord, prev_seq: int) -> None:
        """Hand one freshly journaled record to the stream (thread-safe).

        ``prev_seq`` is the record's predecessor in the tenant's WAL
        chain — envelope seqs may skip numbers (queries and dedup hits
        consume a seq without appending), so the standby checks chain
        adjacency, not ``seq`` arithmetic.
        """
        loop = self._loop
        if loop is None or self.detached or loop.is_closed():
            return
        body = record.to_body()
        with contextlib.suppress(RuntimeError):  # loop shut down mid-call
            loop.call_soon_threadsafe(self._enqueue, tenant_id, body, prev_seq)

    def request_resync(self, tenant_id: str) -> None:
        """Queue a from-disk catch-up for one tenant (thread-safe)."""
        loop = self._loop
        if loop is None or self.detached or loop.is_closed():
            return
        with contextlib.suppress(RuntimeError):
            loop.call_soon_threadsafe(self._note_resync, tenant_id)

    def _enqueue(self, tenant_id: str, body: dict[str, Any], prev_seq: int) -> None:
        self._queue.put_nowait(("record", tenant_id, body, prev_seq))

    def _note_resync(self, tenant_id: str) -> None:
        self._resync.add(tenant_id)
        self._queue.put_nowait(_WAKE)

    # ------------------------------------------------------------------
    # The connection loop
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        while not self.detached:
            try:
                reader, writer = await asyncio.open_connection(self.host, self.port)
            except OSError:
                await asyncio.sleep(self.retry_delay)
                continue
            self._registry.counter(
                "replication.reconnects", "replication connections established"
            ).inc()
            stop = asyncio.Event()
            ack_task: asyncio.Task | None = None
            try:
                standby_seqs = await self._handshake(reader, writer)
                for tenant_id in self._durable_tenants():
                    self._resync.add(tenant_id)
                ack_task = asyncio.get_running_loop().create_task(
                    self._read_acks(reader, stop)
                )
                self.connected = True
                await self._stream(writer, stop, standby_seqs)
            except (
                OSError,
                ConnectionError,
                EOFError,
                asyncio.IncompleteReadError,
                json.JSONDecodeError,
                UnicodeDecodeError,
                FaultInjected,
            ):
                pass  # reconnect with a fresh handshake
            finally:
                self.connected = False
                if ack_task is not None:
                    ack_task.cancel()
                    with contextlib.suppress(Exception, asyncio.CancelledError):
                        await ack_task
                transport = writer.transport
                if transport is not None:
                    transport.abort()
                with contextlib.suppress(Exception):
                    writer.close()
            if not self.detached:
                await asyncio.sleep(self.retry_delay)

    async def _handshake(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> dict[str, int]:
        """Hello the standby; returns its per-tenant applied seqs."""
        await self._send(
            writer,
            {
                "kind": "repl_hello",
                "primary": f"{self.server.host}:{self.server.port}",
            },
        )
        line = await reader.readline()
        if not line:
            raise ConnectionError("standby closed during handshake")
        ack = json.loads(line.decode("utf-8"))
        if not isinstance(ack, dict) or not ack.get("ok", False):
            error_type = ack.get("error_type") if isinstance(ack, dict) else None
            if error_type == "configuration":
                self.detached = True
            raise ConnectionError(f"standby refused the hello: {ack!r}")
        tenants = (ack.get("payload") or {}).get("tenants") or {}
        return {
            str(tenant_id): int(seq)
            for tenant_id, seq in tenants.items()
            if isinstance(tenant_id, str)
        }

    async def _stream(
        self,
        writer: asyncio.StreamWriter,
        stop: asyncio.Event,
        standby_seqs: dict[str, int],
    ) -> None:
        """Ship frames until the connection (or the ack stream) dies."""
        while True:
            if stop.is_set() or self.detached:
                raise ConnectionError("replication ack stream closed")
            while self._resync:
                tenant_id = sorted(self._resync)[0]
                self._resync.discard(tenant_id)
                await self._catch_up(
                    writer, tenant_id, standby_seqs.pop(tenant_id, None)
                )
            try:
                tag, tenant_id, body, prev_seq = await asyncio.wait_for(
                    self._queue.get(), timeout=self.heartbeat_interval
                )
            except asyncio.TimeoutError:
                await self._heartbeat(writer)
                continue
            if tag != "record" or tenant_id in self._resync:
                continue
            if int(body["seq"]) <= self.shipped.get(tenant_id, 0):
                continue  # the catch-up already shipped it from disk
            await self._send(
                writer,
                {
                    "kind": "repl_record",
                    "tenant": tenant_id,
                    "record": body,
                    "prev": prev_seq,
                },
            )
            self.shipped[tenant_id] = int(body["seq"])
            self._registry.counter(
                "replication.shipped", "WAL records shipped to the standby"
            ).inc()
            self._update_lag()

    async def _catch_up(
        self,
        writer: asyncio.StreamWriter,
        tenant_id: str,
        standby_seq: int | None,
    ) -> None:
        """Ship one tenant's missing suffix from disk (snapshot if behind)."""
        if tenant_id not in self.server.tenants:
            return  # evicted since the resync was queued
        journal = self.server.tenants.get(tenant_id).journal
        if journal is None:
            return
        with TRACER.span("replication.catch_up", tenant=tenant_id):
            self._registry.counter(
                "replication.resyncs", "per-tenant catch-up rounds"
            ).inc()
            checkpoint, scan = await asyncio.to_thread(
                _read_tail, journal.directory
            )
            if checkpoint is None:
                return  # nothing durable yet (initialise() races are transient)
            checkpoint_seq = int(checkpoint.get("last_seq", 0))
            if standby_seq is None or standby_seq < checkpoint_seq:
                await self._send(
                    writer,
                    {
                        "kind": "repl_snapshot",
                        "tenant": tenant_id,
                        "checkpoint": checkpoint,
                    },
                )
                self._registry.counter(
                    "replication.snapshots", "checkpoint snapshots shipped"
                ).inc()
                base = checkpoint_seq
            else:
                base = standby_seq
            top = base
            prev = base
            for record in scan.records:
                if record.seq <= base:
                    prev = record.seq
                    continue
                await self._send(
                    writer,
                    {
                        "kind": "repl_record",
                        "tenant": tenant_id,
                        "record": record.to_body(),
                        "prev": prev,
                    },
                )
                prev = record.seq
                self._registry.counter(
                    "replication.shipped", "WAL records shipped to the standby"
                ).inc()
                top = record.seq
            self.shipped[tenant_id] = max(self.shipped.get(tenant_id, 0), top)
            self._update_lag()

    async def _heartbeat(self, writer: asyncio.StreamWriter) -> None:
        try:
            get_failpoints().hit("heartbeat")
        except FaultInjected:
            return  # silenced: the standby hears nothing this tick
        await self._send(writer, {"kind": "repl_heartbeat"})
        self._registry.counter(
            "replication.heartbeats", "heartbeat frames sent"
        ).inc()

    async def _send(
        self, writer: asyncio.StreamWriter, frame: dict[str, Any]
    ) -> None:
        get_failpoints().hit("repl_send")  # FaultInjected == the link died
        writer.write(json.dumps(frame).encode("utf-8") + b"\n")
        await writer.drain()

    # ------------------------------------------------------------------
    # Acks
    # ------------------------------------------------------------------
    async def _read_acks(
        self, reader: asyncio.StreamReader, stop: asyncio.Event
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    ack = json.loads(line.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    continue
                if isinstance(ack, dict):
                    self._on_ack(ack)
                if self.detached:
                    break
        except (OSError, ConnectionError):
            pass
        finally:
            stop.set()
            self._queue.put_nowait(_WAKE)

    def _on_ack(self, ack: dict[str, Any]) -> None:
        if not ack.get("ok", False):
            if ack.get("error_type") == "configuration":
                # The standby was promoted (or never was one): stand down.
                self.detached = True
            return
        payload = ack.get("payload") or {}
        tenant_id = payload.get("tenant")
        if not isinstance(tenant_id, str):
            return
        kind = ack.get("kind")
        if kind in ("repl_record", "repl_snapshot"):
            applied_seq = int(payload.get("applied_seq", 0))
            self.acked[tenant_id] = max(self.acked.get(tenant_id, 0), applied_seq)
            if payload.get("status") == "gap":
                self._note_resync(tenant_id)
            self._update_lag()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _durable_tenants(self) -> list[str]:
        return [
            tenant_id
            for tenant_id in self.server.tenants.ids()
            if self.server.tenants.get(tenant_id).journal is not None
        ]

    def _update_lag(self) -> None:
        lag = sum(
            max(0, shipped - self.acked.get(tenant_id, 0))
            for tenant_id, shipped in self.shipped.items()
        )
        self._registry.gauge(
            "replication.lag", "shipped-but-unacked records, all tenants"
        ).set(lag)

    def status(self) -> dict[str, Any]:
        tenants: dict[str, Any] = {}
        for tenant_id in self._durable_tenants():
            journal = self.server.tenants.get(tenant_id).journal
            tenants[tenant_id] = {
                "journal_seq": journal.last_seq,
                "shipped": self.shipped.get(tenant_id, 0),
                "acked": self.acked.get(tenant_id, 0),
            }
        lag = sum(
            max(0, entry["shipped"] - entry["acked"]) for entry in tenants.values()
        )
        caught_up = (
            self.connected
            and not self._resync
            and all(
                entry["acked"] >= entry["journal_seq"]
                for entry in tenants.values()
            )
        )
        return {
            "target": f"{self.host}:{self.port}",
            "connected": self.connected,
            "detached": self.detached,
            "caught_up": caught_up,
            "lag": lag,
            "tenants": tenants,
        }


def _read_tail(directory) -> tuple[dict[str, Any] | None, Any]:
    """Read checkpoint + WAL scan off-loop (one catch-up round)."""
    return read_checkpoint(directory), read_wal(directory)
