"""Counters, gauges and fixed-bucket latency histograms.

The registry is the single namespace every timing field in the repo
routes through (``engine.*``, ``service.*``, ``solver.*`` and the
absorbed ``cache.*``/``delta.*`` counters).  Histograms retain **no
samples**: observations land in a fixed set of buckets, percentiles are
linearly interpolated inside the target bucket, and shard-local
histograms with identical bounds merge by adding bucket counts — the
properties a sharded or multi-process deployment needs.

Everything here is thread-safe; individual metric operations take a
per-metric lock, registry get-or-create takes a registry lock.  The
costs are small enough to leave metrics always-on (they are only
touched at request/solve granularity, never in inner loops).
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Any

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
]

#: Geometric-ish latency buckets from 100 µs to 60 s (upper bounds, in
#: seconds).  Wide enough for a journal query (~ms) and a cold portfolio
#: solve (~tens of seconds) to both land in informative buckets.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)

_INVALID_PROM_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def _prometheus_name(name: str) -> str:
    sanitized = _INVALID_PROM_CHARS.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


class Counter:
    """A monotonic-by-convention counter (negative increments allowed).

    The engine's rollback path decrements ``engine.remove_reviewer``
    when an infeasible withdraw is rolled back, so unlike Prometheus
    counters this one accepts negative amounts.
    """

    __slots__ = ("name", "description", "_value", "_lock")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value (queue depth, cache generation, ...)."""

    __slots__ = ("name", "description", "_value", "_lock")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with interpolated percentiles.

    ``bounds`` are inclusive upper bounds in ascending order; one
    overflow bucket catches everything above the last bound.  Memory is
    ``len(bounds) + 1`` integers regardless of observation count.
    """

    __slots__ = ("name", "description", "bounds", "_counts", "_sum", "_count", "_min", "_max", "_lock")

    def __init__(
        self,
        name: str,
        description: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name!r}: needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name!r}: bucket bounds must be strictly ascending, got {bounds}"
            )
        self.name = name
        self.description = description
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (``0 < q <= 100``).

        The rank is located in its bucket and linearly interpolated
        between the bucket's lower and upper bound; the overflow bucket
        reports the maximum observed value (exact, since we track it).
        Returns ``0.0`` for an empty histogram.
        """
        if not 0.0 < q <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = (q / 100.0) * self._count
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                if bucket_count == 0:
                    continue
                if cumulative + bucket_count >= rank:
                    if index == len(self.bounds):
                        return self._max
                    lower = 0.0 if index == 0 else self.bounds[index - 1]
                    upper = self.bounds[index]
                    fraction = (rank - cumulative) / bucket_count
                    estimate = lower + fraction * (upper - lower)
                    # Never report outside the observed range.
                    return min(max(estimate, self._min), self._max)
                cumulative += bucket_count
            return self._max  # unreachable, defensive

    def merge_from(self, other: "Histogram") -> None:
        """Fold ``other`` (e.g. a shard-local histogram) into this one."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histogram {other.name!r} into {self.name!r}: "
                f"bucket bounds differ ({other.bounds} vs {self.bounds})"
            )
        # Lock ordering by id() prevents deadlock on concurrent cross-merges.
        first, second = sorted((self, other), key=id)
        with first._lock, second._lock:
            for index, bucket_count in enumerate(other._counts):
                self._counts[index] += bucket_count
            self._sum += other._sum
            self._count += other._count
            self._min = min(self._min, other._min)
            self._max = max(self._max, other._max)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            counts = list(self._counts)
            total = self._count
            total_sum = self._sum
            minimum = self._min
            maximum = self._max
        buckets = {f"{bound:g}": counts[i] for i, bound in enumerate(self.bounds)}
        buckets["+Inf"] = counts[-1]
        snap: dict[str, Any] = {
            "count": total,
            "sum": total_sum,
            "buckets": buckets,
        }
        if total:
            snap["min"] = minimum
            snap["max"] = maximum
            snap["p50"] = self.percentile(50.0)
            snap["p95"] = self.percentile(95.0)
            snap["p99"] = self.percentile(99.0)
        return snap


class MetricsRegistry:
    """Get-or-create namespace of metrics with JSON and Prometheus export."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.RLock()

    def _get_or_create(self, name: str, factory, expected_type):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, expected_type):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {expected_type.__name__}"
                )
            return metric

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, description), Counter)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, description), Gauge)

    def histogram(
        self,
        name: str,
        description: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, description, buckets), Histogram
        )

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        with self._lock:
            return self._metrics.get(name)

    def items(self) -> list[tuple[str, Counter | Gauge | Histogram]]:
        with self._lock:
            return sorted(self._metrics.items())

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def reset(self) -> None:
        """Drop every registered metric (tests and benchmark harnesses)."""
        with self._lock:
            self._metrics.clear()

    def snapshot(self) -> dict[str, Any]:
        """JSON-serialisable view: scalars for counters/gauges, dicts for histograms."""
        return {name: metric.snapshot() for name, metric in self.items()}

    def to_prometheus(self) -> str:
        """Render the registry in Prometheus text exposition format."""
        lines: list[str] = []
        for name, metric in self.items():
            prom = _prometheus_name(name)
            if metric.description:
                lines.append(f"# HELP {prom} {metric.description}")
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {prom} counter")
                lines.append(f"{prom} {metric.value}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {prom} gauge")
                lines.append(f"{prom} {metric.value:g}")
            else:
                lines.append(f"# TYPE {prom} histogram")
                snap = metric.snapshot()
                cumulative = 0
                for bound, bucket_count in snap["buckets"].items():
                    cumulative += bucket_count
                    lines.append(f'{prom}_bucket{{le="{bound}"}} {cumulative}')
                lines.append(f"{prom}_sum {snap['sum']:g}")
                lines.append(f"{prom}_count {snap['count']}")
        return "\n".join(lines) + "\n"


_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry (solver timings, benchmark snapshots).

    Engines own a private registry for request-scoped metrics; code
    without an engine in reach (solver base classes, benchmarks)
    records here.
    """
    return _GLOBAL_REGISTRY
