"""Nestable, thread-safe wall-time span trees.

A span is a context manager; entering pushes it on a thread-local
stack, exiting pops it and attaches it to its parent.  When the root
of a thread's stack exits, the finished tree lands in a bounded ring
buffer keyed by trace id, where ``wgrap serve`` can fetch it for the
``trace`` request and slow-request diagnostics.

Recording is **disabled by default** and the disabled fast path is
deliberately minimal::

    def span(self, name, trace_id=None, **attrs):
        if not self.enabled:
            return NOOP_SPAN
        ...

one attribute check and a shared no-op singleton — cheap enough to
leave call sites in solver phase loops.  ``benchmarks/bench_obs_overhead.py``
guards this property (<2% overhead on the dense Greedy+LS headline).

Thread-safety model: span stacks are thread-local (a span tree never
crosses threads), the finished-trace ring buffer is lock-guarded, and
trace ids come from a shared atomic-by-GIL counter.  Process-based
portfolio workers each see their own tracer; only the parent process's
spans (sharding, racing, result selection) are recorded.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from typing import Any

__all__ = ["NOOP_SPAN", "Span", "Tracer", "get_tracer"]


def _format_seconds(seconds: float) -> str:
    if seconds < 0.001:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


class _NoopSpan:
    """Shared do-nothing span returned while recording is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class Span:
    """One timed node of a trace tree (use via ``Tracer.span``)."""

    __slots__ = ("name", "attrs", "children", "seconds", "trace_id", "_tracer", "_t0")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: dict[str, Any],
        trace_id: str | None = None,
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self.seconds = 0.0
        self.trace_id = trace_id
        self._tracer = tracer
        self._t0 = 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes after entry (loop counts, chosen branches...)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        if not stack and self.trace_id is None:
            self.trace_id = self._tracer.new_trace_id()
        stack.append(self)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.seconds = time.perf_counter() - self._t0
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        stack = self._tracer._stack()
        # Defensive unwind: drop any child the body failed to close.
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        if stack:
            stack[-1].children.append(self)
        else:
            self._tracer._finish(self)
        return False

    def to_dict(self) -> dict[str, Any]:
        node: dict[str, Any] = {"name": self.name, "seconds": self.seconds}
        if self.attrs:
            node["attrs"] = dict(self.attrs)
        if self.children:
            node["children"] = [child.to_dict() for child in self.children]
        return node

    def format_tree(self) -> str:
        """Human-readable rendering for ``wgrap solve --trace``."""
        lines: list[str] = []
        self._render(lines, prefix="", child_prefix="")
        return "\n".join(lines)

    def _render(self, lines: list[str], prefix: str, child_prefix: str) -> None:
        attrs = "".join(f"  {key}={value}" for key, value in self.attrs.items())
        lines.append(f"{prefix}{self.name}  {_format_seconds(self.seconds)}{attrs}")
        for index, child in enumerate(self.children):
            last = index == len(self.children) - 1
            connector = "└─ " if last else "├─ "
            extension = "   " if last else "│  "
            child._render(lines, child_prefix + connector, child_prefix + extension)


class Tracer:
    """Span factory plus a bounded ring buffer of finished traces."""

    def __init__(self, capacity: int = 64) -> None:
        #: The single guard on the recording fast path.  Flip via
        #: ``wgrap serve --trace``, ``wgrap solve --trace`` or the
        #: ``trace`` request's ``enable`` field.
        self.enabled = False
        self.capacity = int(capacity)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._finished: "OrderedDict[str, Span]" = OrderedDict()
        self._sequence = itertools.count(1)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, trace_id: str | None = None, **attrs: Any):
        """A context manager timing ``name`` (no-op while disabled)."""
        if not self.enabled:
            return NOOP_SPAN
        return Span(self, name, attrs, trace_id=trace_id)

    def new_trace_id(self) -> str:
        return f"t{next(self._sequence):08d}"

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _finish(self, root: Span) -> None:
        trace_id = root.trace_id or self.new_trace_id()
        root.trace_id = trace_id
        with self._lock:
            self._finished[trace_id] = root
            self._finished.move_to_end(trace_id)
            while len(self._finished) > self.capacity:
                self._finished.popitem(last=False)

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def get_trace(self, trace_id: str) -> Span | None:
        with self._lock:
            return self._finished.get(trace_id)

    def last_trace(self) -> tuple[str, Span] | None:
        with self._lock:
            if not self._finished:
                return None
            trace_id = next(reversed(self._finished))
            return trace_id, self._finished[trace_id]

    def trace_ids(self) -> list[str]:
        with self._lock:
            return list(self._finished)

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer every instrumented module shares."""
    return _TRACER
