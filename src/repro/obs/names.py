"""The span-name and metric-name contract.

Every span opened and every metric registered anywhere in the codebase
must match an entry here (``<placeholder>`` segments match one dynamic
path segment).  Two guards keep this honest:

* ``tests/test_obs.py`` greps the source tree for ``.span("...")``
  call sites and exercises a full engine/session round trip, asserting
  every observed name matches a registered pattern;
* ``tests/test_docs.py`` asserts the tables in
  ``docs/observability.md`` list exactly these names.

Adding instrumentation therefore means adding a row in all three
places — which is the point.
"""

from __future__ import annotations

import re

__all__ = ["METRIC_NAMES", "SPAN_NAMES", "matches_name"]

#: span name -> one-line description (where it is opened and what it times)
SPAN_NAMES: dict[str, str] = {
    "request.<kind>": "one served request of the given wire kind (EngineSession.dispatch)",
    "engine.solve": "AssignmentEngine.solve: cache warm-up, solver run, bookkeeping",
    "engine.portfolio": "AssignmentEngine.solve_portfolio: the whole portfolio race",
    "engine.journal_query": "AssignmentEngine.journal_query: JRA problem build + solve",
    "engine.add_paper": "AssignmentEngine.add_paper: delta view derivation + cache update",
    "engine.withdraw_reviewer": "AssignmentEngine.withdraw_reviewer: delta derivation + repair",
    "solver.<name>": "one CRA or JRA solver run (base-class solve wrapper)",
    "greedy.select_loop": "GreedySolver: the lazy selection loop (iterations/refreshes as attrs)",
    "local_search.round": "LocalSearchRefiner: one improvement round",
    "sdga.stage": "StageDeepeningGreedySolver: one deepening stage",
    "sra.round": "StochasticRefiner: one stochastic restart round",
    "bba.search": "BranchAndBoundSolver: the expansion/backtrack search loop",
    "cache.full_build": "ScoreMatrixCache: cold full score-matrix build",
    "cache.partial_update": "ScoreMatrixCache: incremental column append/patch",
    "dense.recompile": "WGRAPProblem.dense_view: cold DenseProblem compilation",
    "delta.append_paper": "delta.dense_view_with_paper: carry a dense view across add_paper",
    "delta.drop_reviewer": "delta.dense_view_without_reviewer: carry a view across a withdraw",
    "delta.conflict_patch": "delta.patch_conflicts_in_place: conflict-tail replay on a cached view",
    "parallel.score_shards": "sharded_score_matrix: fan out score shards to the pool",
    "portfolio.race": "run_portfolio: race the solver lineup (serial or process pool)",
    "store.open": "SqliteProblemStore.create/open: schema setup or compile-time bulk load",
    "store.compile": "SqliteProblemStore.load_problem: materialise the instance from rows",
    "store.index_update": "SqliteProblemStore: one mutation or conflict-tail index delta",
    "store.block_io": "MemmapScoreStore: blockwise build/write/append/drop traffic",
    "net.batch": "Tenant worker: one cross-client batch drained through the session",
    "durability.checkpoint": "TenantJournal.checkpoint: atomic snapshot write + WAL rotation",
    "durability.recover": "TenantJournal.recover: checkpoint load + WAL tail replay",
    "replication.catch_up": "ReplicationSender: snapshot + WAL-tail catch-up for one tenant",
    "replication.apply": "StandbyReplica: journal + replay one shipped record",
    "replication.promote": "StandbyCoordinator.promote: drain the tail, admit writes",
}

#: metric name -> one-line description.  Counters unless stated otherwise.
METRIC_NAMES: dict[str, str] = {
    "engine.solves": "completed AssignmentEngine.solve calls",
    "engine.portfolio_solves": "completed solve_portfolio calls",
    "engine.journal_queries": "journal queries answered",
    "engine.journal_cache_hits": "journal answers served from the JRA problem cache",
    "engine.add_paper": "papers added (net of rollbacks)",
    "engine.remove_reviewer": "reviewers withdrawn (net of rollbacks)",
    "engine.bid_updates": "bid records applied",
    "engine.evaluations": "assignment evaluations computed",
    "engine.solve.seconds": "histogram: AssignmentEngine.solve wall time",
    "engine.portfolio.seconds": "histogram: solve_portfolio wall time",
    "engine.journal.seconds": "histogram: journal_query wall time",
    "engine.add_paper.seconds": "histogram: add_paper wall time",
    "engine.withdraw_reviewer.seconds": "histogram: withdraw_reviewer wall time",
    "service.requests": "requests dispatched by the session",
    "service.failures": "requests answered ok=false",
    "service.errors.<error_type>": "failures by structured error_type",
    "service.request.<kind>.seconds": "histogram: request latency per wire kind",
    "solver.<name>.seconds": "histogram: per-solver wall time (process-global registry)",
    "cache.<stat>": "gauge: absorbed ScoreMatrixCache counters (cache.describe())",
    "delta.<stat>": "gauge: absorbed dense-view ViewStats counters",
    "store.<stat>": "gauge: absorbed ProblemStore row/index/block counters (store.describe())",
    "service.net.connections": "client connections accepted by the TCP server",
    "service.net.open_connections": "gauge: currently connected clients",
    "service.net.requests": "non-blank request frames received on the wire",
    "service.net.protocol_errors": "frames refused as malformed (bad UTF-8/JSON/kind/oversized)",
    "service.net.overloaded": "requests refused by admission control",
    "service.net.batches": "tenant-worker batch drains",
    "service.net.batched_requests": "requests served through tenant batch drains",
    "service.net.request.seconds": "histogram: queue-to-answer latency on the network path",
    "service.net.tenants": "gauge: resident tenant engines",
    "service.net.worker_restarts": "supervised tenant-worker restarts after a crash",
    "durability.wal.records": "WAL records appended",
    "durability.wal.bytes": "WAL bytes appended",
    "durability.wal.fsyncs": "fsync calls issued by the WAL",
    "durability.checkpoints": "tenant checkpoints written",
    "durability.recoveries": "journal recoveries run",
    "durability.replayed_records": "WAL records replayed during recovery",
    "durability.dropped_bytes": "torn WAL suffix bytes dropped at recovery",
    "durability.deduped": "mutations answered from the idempotency map (no re-execution)",
    "durability.applied_evicted": "idempotency keys evicted from the bounded applied map",
    "replication.shipped": "WAL records shipped to the standby (primary side)",
    "replication.applied": "shipped records applied on the standby",
    "replication.duplicates": "shipped records skipped as already-applied on the standby",
    "replication.gaps": "out-of-order frames refused by the standby (trigger resync)",
    "replication.snapshots": "checkpoint snapshots shipped for catch-up",
    "replication.resyncs": "per-tenant catch-up rounds run by the sender",
    "replication.heartbeats": "heartbeat frames sent to the standby",
    "replication.reconnects": "replication connections (re)established by the primary",
    "replication.promotions": "standby promotions completed",
    "replication.lag": "gauge: shipped-but-unacked records, all tenants (primary side)",
    "fault.injections": "failpoint firings, all sites",
    "fault.<site>.injections": "failpoint firings at one site (repro.fault)",
}

_PLACEHOLDER = re.compile(r"<[^<>.]+>")


def _pattern_to_regex(pattern: str) -> re.Pattern[str]:
    parts = _PLACEHOLDER.split(pattern)
    return re.compile("[^.]+".join(re.escape(part) for part in parts) + r"\Z")


_SPAN_PATTERNS = [_pattern_to_regex(p) for p in SPAN_NAMES]
_METRIC_PATTERNS = [_pattern_to_regex(p) for p in METRIC_NAMES]


def matches_name(name: str, kind: str = "metric") -> bool:
    """True when ``name`` matches a registered span or metric pattern."""
    patterns = _SPAN_PATTERNS if kind == "span" else _METRIC_PATTERNS
    return any(pattern.match(name) for pattern in patterns)
