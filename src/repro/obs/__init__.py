"""Observability substrate: span tracing and a metrics registry.

``repro.obs`` is stdlib-only and dependency-free inside the package
(it imports nothing from the rest of :mod:`repro`), so every layer —
core, solvers, parallel, service — can instrument itself without
creating import cycles.

Two primitives live here:

* :class:`~repro.obs.trace.Tracer` — nestable, thread-safe wall-time
  span trees with a bounded ring buffer of finished traces.  Recording
  is **off by default**; the disabled fast path is a single attribute
  check returning a shared no-op span.
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  fixed-bucket latency histograms (p50/p95/p99 without sample
  retention), exported as JSON snapshots and Prometheus text
  exposition.

:mod:`repro.obs.names` is the documentation contract: every span and
metric name emitted by the codebase appears there, and
``tests/test_docs.py`` keeps ``docs/observability.md`` honest against
it.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.names import METRIC_NAMES, SPAN_NAMES, matches_name
from repro.obs.trace import NOOP_SPAN, Span, Tracer, get_tracer

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "METRIC_NAMES",
    "MetricsRegistry",
    "NOOP_SPAN",
    "SPAN_NAMES",
    "Span",
    "Tracer",
    "get_registry",
    "get_tracer",
    "matches_name",
]
