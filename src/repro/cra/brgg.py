"""Best Reviewer Group Greedy (BRGG) baseline.

Section 5.2 of the paper evaluates a natural alternative to SDGA that was
sketched at the start of Section 4.2: at every iteration, find the *whole*
best reviewer group for some not-yet-assigned paper (subject to the
remaining reviewer capacities) and commit it.  Early papers obtain
excellent groups, but they greedily consume the strongest reviewers, so the
papers assigned last are left with poor groups — which is why BRGG loses to
SDGA on the overall coverage score (Figure 10) despite winning many
per-paper comparisons early on (Figure 11).

Finding a paper's best group is itself a JRA instance, solved here with the
exact BBA solver over the reviewers that still have spare capacity.  A lazy
priority queue avoids recomputing a paper's best group unless one of its
cached members has run out of capacity (removing reviewers can only lower
the best achievable score, so cached scores are valid upper bounds).
"""

from __future__ import annotations

import heapq
from typing import Any

from repro.core.assignment import Assignment
from repro.core.problem import JRAProblem, WGRAPProblem
from repro.cra.base import CRASolver
from repro.cra.repair import complete_assignment
from repro.jra.bba import BranchAndBoundSolver

__all__ = ["BestReviewerGroupGreedySolver"]


class BestReviewerGroupGreedySolver(CRASolver):
    """Assign whole groups paper-by-paper, best-scoring paper first."""

    name = "BRGG"

    def _solve(self, problem: WGRAPProblem) -> tuple[Assignment, dict[str, Any]]:
        assignment = Assignment()
        loads = {reviewer_id: 0 for reviewer_id in problem.reviewer_ids}
        bba = BranchAndBoundSolver()

        def best_group(paper_id: str) -> tuple[float, tuple[str, ...]]:
            """Best feasible group for ``paper_id`` under remaining capacity.

            Towards the end of the process, the remaining spare capacity can
            be concentrated on fewer than ``delta_p`` distinct reviewers; in
            that case the best *partial* group is returned and the final
            repair pass completes the paper with augmenting swaps — the same
            corner case every whole-group-at-a-time strategy has to handle
            under the paper's minimal-workload setting.
            """
            exhausted = {
                reviewer_id
                for reviewer_id, load in loads.items()
                if load >= problem.reviewer_workload
            }
            excluded = exhausted | set(
                problem.conflicts.reviewers_conflicting_with(paper_id)
            )
            available = problem.num_reviewers - len(excluded)
            if available <= 0:
                return 0.0, ()
            group_size = min(problem.group_size, available)
            sub_problem = JRAProblem(
                paper=problem.paper_by_id(paper_id),
                reviewers=problem.reviewers,
                group_size=group_size,
                excluded_reviewers=excluded,
                scoring=problem.scoring,
            )
            result = bba.solve(sub_problem)
            return result.score, result.reviewer_ids

        # Seed the lazy priority queue with every paper's unconstrained best
        # group; entries are (-score, paper_id, group).
        heap: list[tuple[float, str, tuple[str, ...]]] = []
        for paper_id in problem.paper_ids:
            score, group = best_group(paper_id)
            heapq.heappush(heap, (-score, paper_id, group))

        group_solves = len(heap)
        assigned_papers: set[str] = set()

        while heap:
            negative_score, paper_id, group = heapq.heappop(heap)
            if paper_id in assigned_papers:
                continue
            if any(loads[reviewer_id] >= problem.reviewer_workload for reviewer_id in group):
                # Cached group is stale: recompute and reinsert (the cached
                # score was an upper bound, so ordering stays correct).
                score, fresh_group = best_group(paper_id)
                group_solves += 1
                heapq.heappush(heap, (-score, paper_id, fresh_group))
                continue
            for reviewer_id in group:
                assignment.add(reviewer_id, paper_id)
                loads[reviewer_id] += 1
            assigned_papers.add(paper_id)

        repaired = False
        if any(
            assignment.group_size(paper_id) < problem.group_size
            for paper_id in problem.paper_ids
        ):
            assignment = complete_assignment(problem, assignment)
            repaired = True
        return assignment, {"group_solves": group_solves, "repaired": repaired}
