"""Best Reviewer Group Greedy (BRGG) baseline.

Section 5.2 of the paper evaluates a natural alternative to SDGA that was
sketched at the start of Section 4.2: at every iteration, find the *whole*
best reviewer group for some not-yet-assigned paper (subject to the
remaining reviewer capacities) and commit it.  Early papers obtain
excellent groups, but they greedily consume the strongest reviewers, so the
papers assigned last are left with poor groups — which is why BRGG loses to
SDGA on the overall coverage score (Figure 10) despite winning many
per-paper comparisons early on (Figure 11).

Finding a paper's best group is itself a JRA instance, solved here with the
exact BBA solver over the reviewers that still have spare capacity.  A lazy
priority queue avoids recomputing a paper's best group unless one of its
cached members has run out of capacity (removing reviewers can only lower
the best achievable score, so cached scores are valid upper bounds).

On the default path the per-paper conflict exclusions are read from the
compiled feasibility mask of the problem's
:class:`~repro.core.dense.DenseProblem` (one boolean column per sub-solve,
with live conflict edits patched in by ``dense_view()``) and the inner BBA
runs its vectorised candidate front; ``use_dense=False`` keeps the
object-path exclusions (``ConflictOfInterest`` set lookups) and the
cursor-loop BBA as the conformance oracle.  Both paths exclude exactly the
same reviewers and hence commit identical groups.
"""

from __future__ import annotations

import heapq
from typing import Any

from repro.core.assignment import Assignment
from repro.core.problem import JRAProblem, WGRAPProblem
from repro.cra.base import CRASolver
from repro.cra.repair import complete_assignment
from repro.jra.bba import BranchAndBoundSolver

__all__ = ["BestReviewerGroupGreedySolver"]


class BestReviewerGroupGreedySolver(CRASolver):
    """Assign whole groups paper-by-paper, best-scoring paper first.

    Parameters
    ----------
    use_dense:
        ``False`` resolves conflict exclusions through the object path and
        runs the inner BBA on its cursor-loop baseline (conformance
        oracle); results are identical either way.
    """

    name = "BRGG"

    def __init__(self, use_dense: bool = True) -> None:
        self._use_dense = use_dense

    def _solve(self, problem: WGRAPProblem) -> tuple[Assignment, dict[str, Any]]:
        assignment = Assignment()
        loads = {reviewer_id: 0 for reviewer_id in problem.reviewer_ids}
        bba = BranchAndBoundSolver(use_dense=self._use_dense)
        if self._use_dense:
            dense = problem.dense_view()
            reviewer_ids = problem.reviewer_ids

            def conflicted_with(paper_id: str) -> set[str]:
                column = dense.feasible[:, dense.paper_pos[paper_id]]
                return {reviewer_ids[row] for row in (~column).nonzero()[0]}

        else:

            def conflicted_with(paper_id: str) -> set[str]:
                # Filter to reviewers that are actually in the pool: the
                # conflict container can carry entries for reviewers
                # withdrawn earlier in the mutation chain, and counting
                # those would understate ``available`` below (the dense
                # mask never sees them — conformance pins the parity).
                return {
                    reviewer_id
                    for reviewer_id in problem.conflicts.reviewers_conflicting_with(
                        paper_id
                    )
                    if reviewer_id in loads
                }

        def best_group(paper_id: str) -> tuple[float, tuple[str, ...]]:
            """Best feasible group for ``paper_id`` under remaining capacity.

            Towards the end of the process, the remaining spare capacity can
            be concentrated on fewer than ``delta_p`` distinct reviewers; in
            that case the best *partial* group is returned and the final
            repair pass completes the paper with augmenting swaps — the same
            corner case every whole-group-at-a-time strategy has to handle
            under the paper's minimal-workload setting.
            """
            exhausted = {
                reviewer_id
                for reviewer_id, load in loads.items()
                if load >= problem.reviewer_workload
            }
            excluded = exhausted | conflicted_with(paper_id)
            available = problem.num_reviewers - len(excluded)
            if available <= 0:
                return 0.0, ()
            group_size = min(problem.group_size, available)
            sub_problem = JRAProblem(
                paper=problem.paper_by_id(paper_id),
                reviewers=problem.reviewers,
                group_size=group_size,
                excluded_reviewers=excluded,
                scoring=problem.scoring,
            )
            result = bba.solve(sub_problem)
            return result.score, result.reviewer_ids

        # Seed the lazy priority queue with every paper's unconstrained best
        # group; entries are (-score, paper_id, group).
        heap: list[tuple[float, str, tuple[str, ...]]] = []
        for paper_id in problem.paper_ids:
            score, group = best_group(paper_id)
            heapq.heappush(heap, (-score, paper_id, group))

        group_solves = len(heap)
        assigned_papers: set[str] = set()

        while heap:
            negative_score, paper_id, group = heapq.heappop(heap)
            if paper_id in assigned_papers:
                continue
            if any(loads[reviewer_id] >= problem.reviewer_workload for reviewer_id in group):
                # Cached group is stale: recompute and reinsert (the cached
                # score was an upper bound, so ordering stays correct).
                score, fresh_group = best_group(paper_id)
                group_solves += 1
                heapq.heappush(heap, (-score, paper_id, fresh_group))
                continue
            for reviewer_id in group:
                assignment.add(reviewer_id, paper_id)
                loads[reviewer_id] += 1
            assigned_papers.add(paper_id)

        repaired = False
        if any(
            assignment.group_size(paper_id) < problem.group_size
            for paper_id in problem.paper_ids
        ):
            assignment = complete_assignment(
                problem, assignment, use_dense=self._use_dense
            )
            repaired = True
        return assignment, {"group_solves": group_solves, "repaired": repaired}
