"""Pairwise ILP baseline for CRA (the ARAP objective).

The paper's "ILP" competitor in the conference experiments optimises the
*sum of individual pair scores* — i.e. the assignment-based RAP objective
of Definition 5 — subject to the group-size and workload constraints.  It
does not look at the group as a whole, which is exactly why it can give an
interdisciplinary paper a group of narrow experts.

The constraint matrix of this formulation is the incidence matrix of a
bipartite graph (plus identity rows for the pair bounds), which is totally
unimodular; the LP relaxation therefore has an integral optimal vertex, and
we obtain the exact ILP optimum with a plain LP solve.  Two backends are
available:

* ``"highs"`` (default): SciPy's HiGHS simplex — the stand-in for the
  ``lp_solve`` library used by the paper.
* ``"flow"``: our own min-cost-flow solver, usable on small instances and
  for cross-validation.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.assignment.min_cost_flow import MinCostFlowSolver
from repro.core.assignment import Assignment
from repro.core.problem import WGRAPProblem
from repro.cra.base import CRASolver
from repro.cra.repair import complete_assignment
from repro.exceptions import ConfigurationError, SolverError

__all__ = ["PairwiseILPSolver"]


class PairwiseILPSolver(CRASolver):
    """Exact optimiser of the pairwise (ARAP) objective."""

    name = "ILP"

    def __init__(self, backend: str = "highs") -> None:
        if backend not in {"highs", "flow"}:
            raise ConfigurationError(f"unknown backend {backend!r}; use 'highs' or 'flow'")
        self._backend = backend

    def _solve(self, problem: WGRAPProblem) -> tuple[Assignment, dict[str, Any]]:
        if self._backend == "flow":
            assignment, stats = self._solve_with_flow(problem)
        else:
            assignment, stats = self._solve_with_highs(problem)
        if any(
            assignment.group_size(paper_id) < problem.group_size
            for paper_id in problem.paper_ids
        ):
            assignment = complete_assignment(problem, assignment)
            stats["repaired"] = True
        return assignment, stats

    # ------------------------------------------------------------------
    # HiGHS (LP with an integral optimal vertex)
    # ------------------------------------------------------------------
    def _solve_with_highs(self, problem: WGRAPProblem) -> tuple[Assignment, dict[str, Any]]:
        from scipy.optimize import linprog
        from scipy.sparse import lil_matrix

        scores = problem.pair_score_matrix()  # (R, P)
        num_reviewers, num_papers = scores.shape
        num_variables = num_reviewers * num_papers

        def variable(reviewer_idx: int, paper_idx: int) -> int:
            return reviewer_idx * num_papers + paper_idx

        objective = -scores.reshape(-1)  # linprog minimises

        # Equality: every paper receives exactly delta_p reviewers.
        equality = lil_matrix((num_papers, num_variables))
        for paper_idx in range(num_papers):
            for reviewer_idx in range(num_reviewers):
                equality[paper_idx, variable(reviewer_idx, paper_idx)] = 1.0
        equality_rhs = np.full(num_papers, float(problem.group_size))

        # Inequality: every reviewer takes at most delta_r papers.
        inequality = lil_matrix((num_reviewers, num_variables))
        for reviewer_idx in range(num_reviewers):
            for paper_idx in range(num_papers):
                inequality[reviewer_idx, variable(reviewer_idx, paper_idx)] = 1.0
        inequality_rhs = np.full(num_reviewers, float(problem.reviewer_workload))

        bounds = []
        for reviewer_idx in range(num_reviewers):
            reviewer_id = problem.reviewer_ids[reviewer_idx]
            for paper_idx in range(num_papers):
                paper_id = problem.paper_ids[paper_idx]
                upper = 1.0 if problem.is_feasible_pair(reviewer_id, paper_id) else 0.0
                bounds.append((0.0, upper))

        result = linprog(
            c=objective,
            A_ub=inequality.tocsr(),
            b_ub=inequality_rhs,
            A_eq=equality.tocsr(),
            b_eq=equality_rhs,
            bounds=bounds,
            method="highs",
        )
        if not result.success:
            raise SolverError(f"HiGHS failed to solve the pairwise ILP: {result.message}")

        values = np.asarray(result.x).reshape(num_reviewers, num_papers)
        assignment = self._round_solution(problem, values)
        return assignment, {
            "backend": "highs",
            "lp_objective": float(-result.fun),
            "max_fractionality": float(np.abs(values - np.round(values)).max()),
        }

    @staticmethod
    def _round_solution(problem: WGRAPProblem, values: np.ndarray) -> Assignment:
        """Turn an (integral up to tolerance) LP solution into an assignment.

        Ties and tiny fractional residues are resolved by taking, for every
        paper, the ``delta_p`` feasible reviewers with the largest variable
        values.
        """
        assignment = Assignment()
        for paper_idx, paper_id in enumerate(problem.paper_ids):
            order = np.argsort(-values[:, paper_idx], kind="stable")
            taken = 0
            for reviewer_idx in order:
                if taken >= problem.group_size:
                    break
                reviewer_id = problem.reviewer_ids[int(reviewer_idx)]
                if values[reviewer_idx, paper_idx] <= 1e-6:
                    break
                if not problem.is_feasible_pair(reviewer_id, paper_id):
                    continue
                if assignment.load(reviewer_id) >= problem.reviewer_workload:
                    continue
                assignment.add(reviewer_id, paper_id)
                taken += 1
        return assignment

    # ------------------------------------------------------------------
    # Min-cost-flow backend (small instances, cross-validation)
    # ------------------------------------------------------------------
    def _solve_with_flow(self, problem: WGRAPProblem) -> tuple[Assignment, dict[str, Any]]:
        scores = problem.pair_score_matrix()
        num_reviewers, num_papers = scores.shape
        source = 0
        paper_offset = 1
        reviewer_offset = 1 + num_papers
        sink = 1 + num_papers + num_reviewers
        solver = MinCostFlowSolver(num_nodes=sink + 1)

        for paper_idx in range(num_papers):
            solver.add_edge(
                source, paper_offset + paper_idx, capacity=float(problem.group_size), cost=0.0
            )
        pair_handles: dict[int, tuple[int, int]] = {}
        for paper_idx, paper_id in enumerate(problem.paper_ids):
            for reviewer_idx, reviewer_id in enumerate(problem.reviewer_ids):
                if not problem.is_feasible_pair(reviewer_id, paper_id):
                    continue
                handle = solver.add_edge(
                    paper_offset + paper_idx,
                    reviewer_offset + reviewer_idx,
                    capacity=1.0,
                    cost=-float(scores[reviewer_idx, paper_idx]),
                )
                pair_handles[handle] = (reviewer_idx, paper_idx)
        for reviewer_idx in range(num_reviewers):
            solver.add_edge(
                reviewer_offset + reviewer_idx,
                sink,
                capacity=float(problem.reviewer_workload),
                cost=0.0,
            )

        flow = solver.solve(
            source, sink, required_flow=float(num_papers * problem.group_size)
        )
        assignment = Assignment()
        for handle, (reviewer_idx, paper_idx) in pair_handles.items():
            if flow.edge_flows.get(handle, 0.0) > 0.5:
                assignment.add(
                    problem.reviewer_ids[reviewer_idx], problem.paper_ids[paper_idx]
                )
        return assignment, {"backend": "flow", "flow_cost": flow.total_cost}
