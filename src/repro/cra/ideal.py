"""The "ideal assignment" used as the denominator of the optimality ratio.

Computing the true optimum of WGRAP is intractable even for small
instances, so the paper evaluates solvers against an *ideal assignment*
``AI``: every paper independently receives its best group of ``delta_p``
reviewers with the workload constraint ignored.  Since
``c(AI) >= c(O)``, the reported ratio ``c(A) / c(AI)`` is a lower bound of
the true approximation ratio ``c(A) / c(O)`` (Section 5.2).

The paper constructs ``AI`` greedily per paper; this module does the same
by default and can optionally use the exact BBA solver per paper (slower,
slightly tighter reference).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.assignment import Assignment
from repro.core.problem import WGRAPProblem
from repro.jra.bba import BranchAndBoundSolver

__all__ = ["IdealAssignment", "ideal_assignment"]


@dataclass(frozen=True)
class IdealAssignment:
    """The per-paper ideal reference assignment and its score.

    Note that the assignment usually violates the reviewer workload — that
    is by design; it is a scoring reference, not a deployable assignment.
    """

    assignment: Assignment
    score: float
    paper_scores: dict[str, float]


def ideal_assignment(problem: WGRAPProblem, exact: bool = True) -> IdealAssignment:
    """Best group per paper, ignoring reviewer workloads.

    Parameters
    ----------
    problem:
        The WGRAP instance (conflicts of interest are still respected).
    exact:
        When true (default), each paper's group is found with the exact BBA
        solver, which guarantees ``c(AI) >= c(O)`` and therefore that the
        optimality ratio is a genuine lower bound of the approximation
        ratio.  When false each group is built greedily by repeatedly adding
        the reviewer with the largest marginal gain (cheaper, and sufficient
        when only relative comparisons between methods are needed).
    """
    assignment = Assignment()
    per_paper_scores: dict[str, float] = {}

    if exact:
        solver = BranchAndBoundSolver()
        for paper in problem.papers:
            result = solver.solve(problem.to_jra(paper))
            for reviewer_id in result.reviewer_ids:
                assignment.add(reviewer_id, paper.id)
            per_paper_scores[paper.id] = result.score
    else:
        reviewer_matrix = problem.reviewer_matrix
        for paper_idx, paper in enumerate(problem.papers):
            forbidden = problem.conflicts.reviewers_conflicting_with(paper.id)
            forbidden_rows = [
                problem.reviewer_index(reviewer_id)
                for reviewer_id in forbidden
                if reviewer_id in problem.reviewer_ids
            ]
            group_vector = np.zeros(problem.num_topics, dtype=np.float64)
            chosen: list[int] = []
            for _ in range(problem.group_size):
                gains = problem.scoring.gain_vector(
                    group_vector, reviewer_matrix, problem.paper_matrix[paper_idx]
                )
                gains[chosen] = -np.inf
                if forbidden_rows:
                    gains[forbidden_rows] = -np.inf
                best = int(np.argmax(gains))
                chosen.append(best)
                group_vector = np.maximum(group_vector, reviewer_matrix[best])
            for reviewer_idx in chosen:
                assignment.add(problem.reviewer_ids[reviewer_idx], paper.id)
            per_paper_scores[paper.id] = problem.paper_score(assignment, paper.id)

    total = float(sum(per_paper_scores.values()))
    return IdealAssignment(
        assignment=assignment, score=total, paper_scores=per_paper_scores
    )
