"""Approximation ratios of SDGA (Section 4.3) and the ratio-greedy baseline.

SDGA achieves

* ``1 - (1 - 1/delta_p)^delta_p`` (which tends to ``1 - 1/e``) when the
  reviewer workload ``delta_r`` is divisible by the group size ``delta_p``
  (Theorem 1), and
* ``1 - (1 - 1/delta_p)^(delta_p - 1)`` (at least ``1/2`` for
  ``delta_p >= 2``) in the general case (Theorem 2).

The previously best algorithm (the greedy of Long et al. 2013) guarantees
only ``1/3``.  Figure 7 of the paper plots these curves against
``delta_p``; :func:`approximation_ratio_table` regenerates its series.

The module also hosts :class:`RatioGreedySolver`, a capacity-aware variant
of the pair greedy: selection is by marginal gain *scaled by the fraction
of the reviewer's workload still unused*, which steers early picks away
from reviewers a plain greedy would exhaust — the failure mode that makes
BRGG lose to SDGA in Figure 10.  Like every other constructive solver it
runs on the dense kernels by default with an object-path oracle behind
``use_dense=False``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.assignment import Assignment
from repro.core.problem import WGRAPProblem
from repro.cra.base import CRASolver
from repro.cra.repair import complete_assignment
from repro.exceptions import ConfigurationError

__all__ = [
    "GREEDY_RATIO",
    "integral_case_ratio",
    "general_case_ratio",
    "sdga_ratio",
    "RatioPoint",
    "approximation_ratio_table",
    "RatioGreedySolver",
]

#: approximation guarantee of the baseline greedy algorithm of Long et al.
GREEDY_RATIO = 1.0 / 3.0


def integral_case_ratio(group_size: int) -> float:
    """``1 - (1 - 1/delta_p)^delta_p`` — the bound when ``delta_p | delta_r``."""
    _check_group_size(group_size)
    return 1.0 - (1.0 - 1.0 / group_size) ** group_size


def general_case_ratio(group_size: int) -> float:
    """``1 - (1 - 1/delta_p)^(delta_p - 1)`` — the bound in the general case."""
    _check_group_size(group_size)
    return 1.0 - (1.0 - 1.0 / group_size) ** (group_size - 1)


def sdga_ratio(group_size: int, reviewer_workload: int) -> float:
    """The guarantee that applies to a concrete ``(delta_p, delta_r)`` pair."""
    _check_group_size(group_size)
    if reviewer_workload < 1:
        raise ConfigurationError("reviewer_workload must be at least 1")
    if reviewer_workload % group_size == 0:
        return integral_case_ratio(group_size)
    return general_case_ratio(group_size)


@dataclass(frozen=True)
class RatioPoint:
    """One point of the Figure 7 plot."""

    group_size: int
    integral_case: float
    general_case: float
    greedy_baseline: float = GREEDY_RATIO

    @property
    def limit_one_minus_inverse_e(self) -> float:
        """The asymptote ``1 - 1/e`` shown in the figure."""
        return 1.0 - 1.0 / math.e


def approximation_ratio_table(
    min_group_size: int = 2, max_group_size: int = 10
) -> list[RatioPoint]:
    """The series plotted in Figure 7 for ``delta_p`` in the given range."""
    if min_group_size < 2:
        raise ConfigurationError("the ratios are defined for delta_p >= 2")
    if max_group_size < min_group_size:
        raise ConfigurationError("max_group_size must be >= min_group_size")
    return [
        RatioPoint(
            group_size=group_size,
            integral_case=integral_case_ratio(group_size),
            general_case=general_case_ratio(group_size),
        )
        for group_size in range(min_group_size, max_group_size + 1)
    ]


def _check_group_size(group_size: int) -> None:
    if group_size < 2:
        raise ConfigurationError(
            "approximation ratios are defined for group sizes of at least 2"
        )


class RatioGreedySolver(CRASolver):
    """Capacity-aware pair greedy: gain weighted by remaining workload.

    At every step the solver assigns the feasible ``(reviewer, paper)``
    pair maximising

    .. math:: gain(r \\mid G_p) \\cdot \\frac{remaining(r)}{\\delta_r}

    i.e. the marginal coverage gain discounted by how much of the
    reviewer's workload is already consumed.  A reviewer about to saturate
    must beat fresher alternatives by a growing margin, so strong
    generalists are rationed across papers instead of being consumed by
    the first few — the pathology of the unweighted greedy and of BRGG
    (Figure 10/11 of the paper).  Ties break on the smallest
    ``(reviewer, paper)`` index pair, matching the naive greedy's
    convention.

    Parameters
    ----------
    use_dense:
        ``False`` evaluates gains and feasibility through the object path
        (per-paper ``gain_vector`` calls, ``is_feasible_pair`` string
        checks) instead of the compiled view; both paths perform the same
        elementwise arithmetic and therefore make bitwise-identical
        selections (pinned by the conformance harness).
    """

    name = "Ratio-Greedy"

    def __init__(self, use_dense: bool = True) -> None:
        self._use_dense = use_dense

    def _solve(self, problem: WGRAPProblem) -> tuple[Assignment, dict[str, Any]]:
        if self._use_dense:
            return self._solve_dense(problem)
        return self._solve_object(problem)

    def _solve_dense(self, problem: WGRAPProblem) -> tuple[Assignment, dict[str, Any]]:
        dense = problem.dense_view()
        num_papers = dense.num_papers
        num_reviewers = dense.num_reviewers
        workload = float(problem.reviewer_workload)

        assignment = Assignment()
        group_vectors = np.zeros((num_papers, dense.num_topics), dtype=np.float64)
        group_sizes = np.zeros(num_papers, dtype=np.int64)
        loads = np.zeros(num_reviewers, dtype=np.int64)
        infeasible = ~dense.feasible
        assigned = np.zeros((num_reviewers, num_papers), dtype=bool)

        # A pick only changes the chosen paper's group vector, so the gain
        # matrix is maintained incrementally: one full build up front, then
        # exactly one refreshed column per pick (every other column's
        # inputs are unchanged, and the single-column kernel call is
        # bitwise-equal to its row of the batched build).
        gains = np.ascontiguousarray(dense.gain_matrix(group_vectors).T)

        target_pairs = num_papers * dense.group_size
        iterations = 0

        while len(assignment) < target_pairs:
            # The capacity weight: remaining workload fraction per reviewer.
            weight = (workload - loads) / workload
            profits = gains * weight[:, None]
            profits[:, group_sizes >= dense.group_size] = -np.inf
            profits[loads >= dense.reviewer_workload, :] = -np.inf
            profits[infeasible] = -np.inf
            profits[assigned] = -np.inf

            reviewer_idx, paper_idx = np.unravel_index(
                np.argmax(profits), profits.shape
            )
            if not np.isfinite(profits[reviewer_idx, paper_idx]):
                break
            assignment.add(
                problem.reviewer_ids[int(reviewer_idx)],
                problem.paper_ids[int(paper_idx)],
            )
            assigned[reviewer_idx, paper_idx] = True
            group_vectors[paper_idx] = np.maximum(
                group_vectors[paper_idx], dense.reviewer_matrix[reviewer_idx]
            )
            group_sizes[paper_idx] += 1
            loads[reviewer_idx] += 1
            iterations += 1
            if group_sizes[paper_idx] < dense.group_size:
                gains[:, paper_idx] = dense.gain_matrix(
                    group_vectors[paper_idx][None, :],
                    np.array([paper_idx], dtype=np.int64),
                )[0]

        repaired = False
        if len(assignment) < target_pairs:
            assignment = complete_assignment(problem, assignment)
            repaired = True
        return assignment, {
            "iterations": iterations,
            "strategy": "dense",
            "repaired": repaired,
        }

    def _solve_object(self, problem: WGRAPProblem) -> tuple[Assignment, dict[str, Any]]:
        """The conformance oracle: same arithmetic, object-path inputs."""
        scoring = problem.scoring
        reviewer_matrix = problem.reviewer_matrix
        paper_matrix = problem.paper_matrix
        num_papers = problem.num_papers
        num_reviewers = problem.num_reviewers
        workload = float(problem.reviewer_workload)

        assignment = Assignment()
        loads = np.zeros(num_reviewers, dtype=np.int64)
        target_pairs = num_papers * problem.group_size
        iterations = 0

        while len(assignment) < target_pairs:
            profits = np.full((num_reviewers, num_papers), -np.inf, dtype=np.float64)
            weight = (workload - loads) / workload
            for paper_idx, paper_id in enumerate(problem.paper_ids):
                if assignment.group_size(paper_id) >= problem.group_size:
                    continue
                group_vector = problem.group_vector(assignment, paper_id)
                column = scoring.gain_vector(
                    group_vector, reviewer_matrix, paper_matrix[paper_idx]
                )
                profits[:, paper_idx] = column * weight
                members = assignment.reviewers_of(paper_id)
                for reviewer_idx, reviewer_id in enumerate(problem.reviewer_ids):
                    if (
                        loads[reviewer_idx] >= problem.reviewer_workload
                        or reviewer_id in members
                        or not problem.is_feasible_pair(reviewer_id, paper_id)
                    ):
                        profits[reviewer_idx, paper_idx] = -np.inf

            reviewer_idx, paper_idx = np.unravel_index(
                np.argmax(profits), profits.shape
            )
            if not np.isfinite(profits[reviewer_idx, paper_idx]):
                break
            assignment.add(
                problem.reviewer_ids[int(reviewer_idx)],
                problem.paper_ids[int(paper_idx)],
            )
            loads[reviewer_idx] += 1
            iterations += 1

        repaired = False
        if len(assignment) < target_pairs:
            assignment = complete_assignment(problem, assignment, use_dense=False)
            repaired = True
        return assignment, {
            "iterations": iterations,
            "strategy": "object",
            "repaired": repaired,
        }
