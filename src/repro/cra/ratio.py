"""Theoretical approximation ratios of SDGA (Section 4.3, Figure 7).

SDGA achieves

* ``1 - (1 - 1/delta_p)^delta_p`` (which tends to ``1 - 1/e``) when the
  reviewer workload ``delta_r`` is divisible by the group size ``delta_p``
  (Theorem 1), and
* ``1 - (1 - 1/delta_p)^(delta_p - 1)`` (at least ``1/2`` for
  ``delta_p >= 2``) in the general case (Theorem 2).

The previously best algorithm (the greedy of Long et al. 2013) guarantees
only ``1/3``.  Figure 7 of the paper plots these curves against
``delta_p``; :func:`approximation_ratio_table` regenerates its series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = [
    "GREEDY_RATIO",
    "integral_case_ratio",
    "general_case_ratio",
    "sdga_ratio",
    "RatioPoint",
    "approximation_ratio_table",
]

#: approximation guarantee of the baseline greedy algorithm of Long et al.
GREEDY_RATIO = 1.0 / 3.0


def integral_case_ratio(group_size: int) -> float:
    """``1 - (1 - 1/delta_p)^delta_p`` — the bound when ``delta_p | delta_r``."""
    _check_group_size(group_size)
    return 1.0 - (1.0 - 1.0 / group_size) ** group_size


def general_case_ratio(group_size: int) -> float:
    """``1 - (1 - 1/delta_p)^(delta_p - 1)`` — the bound in the general case."""
    _check_group_size(group_size)
    return 1.0 - (1.0 - 1.0 / group_size) ** (group_size - 1)


def sdga_ratio(group_size: int, reviewer_workload: int) -> float:
    """The guarantee that applies to a concrete ``(delta_p, delta_r)`` pair."""
    _check_group_size(group_size)
    if reviewer_workload < 1:
        raise ConfigurationError("reviewer_workload must be at least 1")
    if reviewer_workload % group_size == 0:
        return integral_case_ratio(group_size)
    return general_case_ratio(group_size)


@dataclass(frozen=True)
class RatioPoint:
    """One point of the Figure 7 plot."""

    group_size: int
    integral_case: float
    general_case: float
    greedy_baseline: float = GREEDY_RATIO

    @property
    def limit_one_minus_inverse_e(self) -> float:
        """The asymptote ``1 - 1/e`` shown in the figure."""
        return 1.0 - 1.0 / math.e


def approximation_ratio_table(
    min_group_size: int = 2, max_group_size: int = 10
) -> list[RatioPoint]:
    """The series plotted in Figure 7 for ``delta_p`` in the given range."""
    if min_group_size < 2:
        raise ConfigurationError("the ratios are defined for delta_p >= 2")
    if max_group_size < min_group_size:
        raise ConfigurationError("max_group_size must be >= min_group_size")
    return [
        RatioPoint(
            group_size=group_size,
            integral_case=integral_case_ratio(group_size),
            general_case=general_case_ratio(group_size),
        )
        for group_size in range(min_group_size, max_group_size + 1)
    ]


def _check_group_size(group_size: int) -> None:
    if group_size < 2:
        raise ConfigurationError(
            "approximation ratios are defined for group sizes of at least 2"
        )
