"""Common interface for Conference Reviewer Assignment (CRA) solvers.

Every solver in :mod:`repro.cra` consumes a
:class:`~repro.core.problem.WGRAPProblem` and produces a
:class:`CRAResult` containing the full assignment, its coverage score and
solver statistics.  All solvers respect the group-size constraint, the
reviewer workload and any conflicts of interest declared on the problem.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.core.assignment import Assignment
from repro.core.problem import WGRAPProblem
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer

TRACER = get_tracer()

__all__ = ["CRAResult", "CRASolver"]


@dataclass(frozen=True)
class CRAResult:
    """Outcome of a CRA solver run.

    Attributes
    ----------
    assignment:
        The produced assignment (papers to reviewer groups).
    score:
        Total coverage score ``c(A)`` under the problem's scoring function.
    elapsed_seconds:
        Wall-clock time spent solving.
    solver_name:
        Short name of the solver that produced the result.
    stats:
        Solver-specific counters (stages, iterations, refinement rounds, ...).
    """

    assignment: Assignment
    score: float
    elapsed_seconds: float
    solver_name: str
    stats: Mapping[str, Any] = field(default_factory=dict)


class CRASolver(ABC):
    """Base class for conference-assignment solvers.

    The public :meth:`solve` wraps the subclass hook :meth:`_solve` with
    timing, scoring and validation so every solver reports comparable
    results.
    """

    #: short name used in experiment reports ("Greedy", "SDGA", "SM", ...)
    name: str = "abstract"

    def solve(self, problem: WGRAPProblem) -> CRAResult:
        """Produce a complete, feasible assignment for ``problem``."""
        started = time.perf_counter()
        with TRACER.span(f"solver.{self.name}", kind="cra") as span:
            assignment, stats = self._solve(problem)
            elapsed = time.perf_counter() - started
            span.set(elapsed=round(elapsed, 6))
        get_registry().histogram(
            f"solver.{self.name}.seconds", "per-solver wall time"
        ).observe(elapsed)
        problem.validate_assignment(assignment, require_complete=True)
        score = problem.assignment_score(assignment)
        return CRAResult(
            assignment=assignment,
            score=score,
            elapsed_seconds=elapsed,
            solver_name=self.name,
            stats=dict(stats),
        )

    @abstractmethod
    def _solve(self, problem: WGRAPProblem) -> tuple[Assignment, dict[str, Any]]:
        """Return the assignment and solver statistics."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
