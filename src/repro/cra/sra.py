"""Stochastic Refinement Algorithm (SRA) — Section 4.4, Algorithm 3.

SRA post-processes an assignment (normally the output of SDGA).  Each
round it

1. estimates, for every assigned pair ``(r, p)``, the probability that the
   pair belongs to the optimal assignment — Equation 10: proportional to
   the pair's coverage score, penalised when the reviewer scores highly on
   many papers (a TF-IDF-like normalisation) and blended towards the
   uniform ``1/R`` by an exponential decay over refinement rounds;
2. removes exactly one reviewer from every paper, sampling the victim with
   probability proportional to ``1 - P(r|p)``;
3. refills every paper with one reviewer by solving a single capacitated
   linear assignment (the same machinery as an SDGA stage), and
4. keeps going until the best score seen has not improved for ``omega``
   consecutive rounds (or an optional time budget runs out).

The best assignment seen across all rounds is returned, so refinement can
never make the SDGA result worse.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.assignment.transportation import solve_capacitated_assignment
from repro.core.assignment import Assignment
from repro.core.dense import DenseProblem
from repro.core.problem import WGRAPProblem
from repro.cra.base import CRAResult, CRASolver
from repro.cra.sdga import StageDeepeningGreedySolver
from repro.exceptions import ConfigurationError
from repro.obs.trace import get_tracer

TRACER = get_tracer()

__all__ = ["RefinementRound", "StochasticRefiner", "SDGAWithRefinementSolver"]


@dataclass(frozen=True)
class RefinementRound:
    """History entry recorded after each refinement round."""

    round_index: int
    elapsed_seconds: float
    current_score: float
    best_score: float


class StochasticRefiner:
    """Refine an existing assignment with the paper's stochastic process.

    Parameters
    ----------
    convergence_window:
        ``omega`` — stop after this many consecutive rounds without an
        improvement of the best score (the paper's default is 10).
    decay:
        ``lambda`` of the exponential decay in Equation 10.
    max_rounds:
        Hard cap on the number of rounds (safety net).
    time_budget:
        Optional wall-clock budget in seconds (used by the Figure 12
        experiment, which plots quality against refinement time).
    backend:
        Assignment backend for the refill step (``"hungarian"`` or ``"flow"``).
    seed:
        Seed of the pseudo-random generator driving the removals.
    probability_model:
        Which removal-probability model to use:

        * ``"decayed"`` (default) — Equation 10, the coverage-based model
          blended towards uniform with an exponential decay;
        * ``"coverage"`` — Equation 9 without the decay;
        * ``"uniform"`` — the naive ``P(r|p) = 1/R`` strawman the paper
          mentions and rejects.

        The alternatives exist for the ablation benchmark.
    use_dense:
        ``False`` evaluates the per-round scores through
        :meth:`WGRAPProblem.assignment_score
        <repro.core.problem.WGRAPProblem.assignment_score>` and builds the
        refill inputs through SDGA's object path instead of the compiled
        kernels (the removal sampling shares one code path — it reads the
        same cached pair-score matrix either way).  Both paths consume the
        identical random stream and produce the identical refinement, the
        conformance oracle for SDGA-SRA's refinement stage.
    """

    def __init__(
        self,
        convergence_window: int = 10,
        decay: float = 0.05,
        max_rounds: int = 1000,
        time_budget: float | None = None,
        backend: str = "hungarian",
        seed: int | None = 0,
        probability_model: str = "decayed",
        use_dense: bool = True,
    ) -> None:
        if convergence_window < 1:
            raise ConfigurationError("convergence_window (omega) must be at least 1")
        if decay < 0:
            raise ConfigurationError("decay (lambda) must be non-negative")
        if max_rounds < 1:
            raise ConfigurationError("max_rounds must be at least 1")
        if probability_model not in {"decayed", "coverage", "uniform"}:
            raise ConfigurationError(
                "probability_model must be 'decayed', 'coverage' or 'uniform'"
            )
        self._omega = convergence_window
        self._decay = decay
        self._max_rounds = max_rounds
        self._time_budget = time_budget
        self._backend = backend
        self._seed = seed
        self._probability_model = probability_model
        self._use_dense = use_dense

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def refine(
        self, problem: WGRAPProblem, assignment: Assignment
    ) -> tuple[Assignment, dict[str, Any]]:
        """Run the stochastic refinement and return the best assignment found."""
        problem.validate_assignment(assignment, require_complete=True)
        rng = np.random.default_rng(self._seed)
        if self._use_dense:
            dense = problem.dense_view()
            score_of = dense.assignment_score
        else:
            dense = None
            score_of = problem.assignment_score
        pair_scores = problem.pair_score_matrix()
        # Denominator of Equation 9: how strongly each reviewer scores
        # across *all* papers (reviewers good everywhere are penalised).
        reviewer_mass = pair_scores.sum(axis=1)
        reviewer_mass = np.where(reviewer_mass > 0.0, reviewer_mass, 1.0)

        current = assignment.copy()
        best = assignment.copy()
        best_score = score_of(best)
        rounds_without_improvement = 0
        history: list[RefinementRound] = []
        started = time.perf_counter()

        for round_index in range(1, self._max_rounds + 1):
            if self._time_budget is not None:
                if time.perf_counter() - started >= self._time_budget:
                    break
            if rounds_without_improvement >= self._omega:
                break

            with TRACER.span("sra.round", round=round_index):
                self._remove_one_reviewer_per_paper(problem, current, pair_scores,
                                                    reviewer_mass, round_index, rng)
                self._refill(problem, dense, current)

            current_score = score_of(current)
            if current_score > best_score + 1e-12:
                best = current.copy()
                best_score = current_score
                rounds_without_improvement = 0
            else:
                rounds_without_improvement += 1
            history.append(
                RefinementRound(
                    round_index=round_index,
                    elapsed_seconds=time.perf_counter() - started,
                    current_score=current_score,
                    best_score=best_score,
                )
            )

        stats: dict[str, Any] = {
            "rounds": len(history),
            "best_score": best_score,
            "converged": rounds_without_improvement >= self._omega,
            "history": history,
            "omega": self._omega,
        }
        return best, stats

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _remove_one_reviewer_per_paper(
        self,
        problem: WGRAPProblem,
        assignment: Assignment,
        pair_scores: np.ndarray,
        reviewer_mass: np.ndarray,
        round_index: int,
        rng: np.random.Generator,
    ) -> None:
        """Equation 10 removals: drop one reviewer from every paper in place.

        The per-member keep probabilities come from one fancy-indexed slice
        of the pair-score matrix per paper (the same elementwise arithmetic
        as the historical per-member scalar loop, so the sampled victims —
        and the consumed random stream — are identical under a fixed seed).
        One shared code path for both refiner modes: the sampling reads
        only the cached pair-score matrix and the problem's id order.
        """
        uniform_floor = 1.0 / problem.num_reviewers
        if self._probability_model == "decayed":
            decay_factor = float(np.exp(-self._decay * round_index))
        else:
            decay_factor = 1.0

        for paper_idx, paper_id in enumerate(problem.paper_ids):
            members = sorted(assignment.reviewers_of(paper_id))
            if not members:
                continue
            rows = [problem.reviewer_index(reviewer_id) for reviewer_id in members]
            if self._probability_model == "uniform":
                keep_probabilities = np.full(len(members), uniform_floor)
            else:
                keep_probabilities = np.maximum(
                    uniform_floor,
                    decay_factor * pair_scores[rows, paper_idx] / reviewer_mass[rows],
                )

            removal_weights = 1.0 - keep_probabilities / keep_probabilities.sum()
            if removal_weights.sum() <= 0.0:
                removal_weights = np.full(len(members), 1.0 / len(members))
            else:
                removal_weights = removal_weights / removal_weights.sum()
            victim = rng.choice(len(members), p=removal_weights)
            assignment.remove(members[int(victim)], paper_id)

    def _refill(
        self,
        problem: WGRAPProblem,
        dense: "DenseProblem | None",
        assignment: Assignment,
    ) -> None:
        """One Stage-WGRAP step that gives every paper one reviewer back.

        On the dense path the stage inputs come from
        :meth:`DenseProblem.stage_inputs
        <repro.core.dense.DenseProblem.stage_inputs>`, which reads the
        shared (delta-maintained) pair-score matrix through the problem's
        cache chain — after an engine mutation the refill pays only the
        gain kernel, never a full re-score.  The object path builds the
        bitwise-identical inputs through SDGA's per-pair oracle.
        """
        if dense is not None:
            gains, forbidden, capacities = dense.stage_inputs(
                assignment, stage_capped=False
            )
        else:
            gains, forbidden, capacities = (
                StageDeepeningGreedySolver._stage_inputs_object(
                    problem, assignment, stage_capped=False
                )
            )
        result = solve_capacitated_assignment(
            gains, capacities, forbidden=forbidden, backend=self._backend
        )
        for paper_idx, reviewer_idx in enumerate(result.row_to_col):
            assignment.add(problem.reviewer_ids[reviewer_idx], problem.paper_ids[paper_idx])


class SDGAWithRefinementSolver(CRASolver):
    """SDGA followed by stochastic refinement — the paper's SDGA-SRA.

    Parameters
    ----------
    refiner:
        A configured :class:`StochasticRefiner`; a default one is created
        when omitted.
    base_solver:
        The solver whose output is refined; defaults to
        :class:`~repro.cra.sdga.StageDeepeningGreedySolver`.
    """

    name = "SDGA-SRA"

    def __init__(
        self,
        refiner: StochasticRefiner | None = None,
        base_solver: CRASolver | None = None,
    ) -> None:
        self._refiner = refiner or StochasticRefiner()
        self._base_solver = base_solver or StageDeepeningGreedySolver()

    def _solve(self, problem: WGRAPProblem) -> tuple[Assignment, dict[str, Any]]:
        base_result: CRAResult = self._base_solver.solve(problem)
        refined, refine_stats = self._refiner.refine(problem, base_result.assignment)
        stats: dict[str, Any] = {
            "base_solver": self._base_solver.name,
            "base_score": base_result.score,
            "base_elapsed_seconds": base_result.elapsed_seconds,
            **{f"refinement_{key}": value for key, value in refine_stats.items()},
        }
        return refined, stats
