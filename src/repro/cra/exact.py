"""Exhaustive (exact) WGRAP solver for tiny instances.

WGRAP is NP-hard (it generalises SGRAP, and even the single-paper case is
NP-hard — Lemma 1), so no polynomial exact solver exists.  For *tiny*
instances, however, the optimum is still useful: the paper uses it
implicitly when reasoning about approximation ratios, and the test suite
uses it to verify SDGA's and Greedy's guarantees empirically.

:class:`ExhaustiveSolver` enumerates, paper by paper, every reviewer group
that fits the remaining workload, with two safeguards:

* a pre-computed bound on the search-space size (refusing to start when it
  exceeds ``max_nodes``), and
* an optimistic-completion bound (the best still-achievable score for the
  remaining papers, ignoring workloads) that prunes hopeless branches.
"""

from __future__ import annotations

import itertools
from typing import Any

import numpy as np

from repro.core.assignment import Assignment
from repro.core.problem import WGRAPProblem
from repro.cra.base import CRASolver
from repro.exceptions import ConfigurationError

__all__ = ["ExhaustiveSolver"]


class ExhaustiveSolver(CRASolver):
    """Provably optimal WGRAP solver by bounded exhaustive search.

    Parameters
    ----------
    max_nodes:
        Upper bound on ``C(R, delta_p) ** P`` below which the search is
        attempted; larger instances are rejected up front with a
        :class:`ConfigurationError` so callers do not accidentally launch a
        multi-day enumeration.
    """

    name = "Exact"

    def __init__(self, max_nodes: float = 5e7) -> None:
        if max_nodes <= 0:
            raise ConfigurationError("max_nodes must be positive")
        self._max_nodes = float(max_nodes)

    def _solve(self, problem: WGRAPProblem) -> tuple[Assignment, dict[str, Any]]:
        num_groups = _combinations(problem.num_reviewers, problem.group_size)
        search_space = float(num_groups) ** problem.num_papers
        if search_space > self._max_nodes:
            raise ConfigurationError(
                f"the exhaustive search space ({num_groups}^{problem.num_papers}) "
                f"exceeds max_nodes={self._max_nodes:.0f}; use SDGA/SDGA-SRA instead"
            )

        reviewer_ids = problem.reviewer_ids
        groups = list(itertools.combinations(range(problem.num_reviewers), problem.group_size))
        reviewer_matrix = problem.reviewer_matrix
        paper_matrix = problem.paper_matrix
        scoring = problem.scoring

        # Pre-compute the score of every (group, paper) pair and the
        # per-paper unconstrained best, used as the optimistic completion.
        group_vectors = np.stack(
            [reviewer_matrix[list(group)].max(axis=0) for group in groups]
        )
        group_scores = scoring.score_matrix(group_vectors, paper_matrix)  # (G, P)

        # Forbid groups containing a conflicted reviewer for each paper.
        # The conflict container travels along mutation chains by id, so it
        # can name reviewers that have since been withdrawn from the pool;
        # entries for unknown ids are skipped (they cannot appear in any
        # group of this problem) instead of crashing the index lookup.
        positions = {reviewer_id: row for row, reviewer_id in enumerate(reviewer_ids)}
        allowed = np.ones_like(group_scores, dtype=bool)
        for paper_idx, paper_id in enumerate(problem.paper_ids):
            conflicted = problem.conflicts.reviewers_conflicting_with(paper_id)
            if not conflicted:
                continue
            conflicted_rows = {
                positions[reviewer_id]
                for reviewer_id in conflicted
                if reviewer_id in positions
            }
            for group_idx, group in enumerate(groups):
                if conflicted_rows.intersection(group):
                    allowed[group_idx, paper_idx] = False
        masked_scores = np.where(allowed, group_scores, -np.inf)
        per_paper_best = masked_scores.max(axis=0)
        suffix_best = np.concatenate(
            [np.cumsum(per_paper_best[::-1])[::-1], [0.0]]
        )

        best_score = -np.inf
        best_choice: list[int] | None = None
        loads = np.zeros(problem.num_reviewers, dtype=np.int64)
        choice: list[int] = []
        nodes = 0

        def recurse(paper_idx: int, score_so_far: float) -> None:
            nonlocal best_score, best_choice, nodes
            if paper_idx == problem.num_papers:
                if score_so_far > best_score:
                    best_score = score_so_far
                    best_choice = list(choice)
                return
            # Optimistic completion: even with unlimited workload the rest
            # of the papers cannot contribute more than suffix_best.
            if score_so_far + suffix_best[paper_idx] <= best_score + 1e-12:
                return
            for group_idx, group in enumerate(groups):
                if not allowed[group_idx, paper_idx]:
                    continue
                if any(loads[r] + 1 > problem.reviewer_workload for r in group):
                    continue
                nodes += 1
                for r in group:
                    loads[r] += 1
                choice.append(group_idx)
                recurse(paper_idx + 1, score_so_far + group_scores[group_idx, paper_idx])
                choice.pop()
                for r in group:
                    loads[r] -= 1

        recurse(0, 0.0)
        if best_choice is None:
            raise ConfigurationError(
                "no feasible assignment exists for this instance (conflicts too dense)"
            )

        assignment = Assignment()
        for paper_idx, group_idx in enumerate(best_choice):
            for reviewer_idx in groups[group_idx]:
                assignment.add(reviewer_ids[reviewer_idx], problem.paper_ids[paper_idx])
        return assignment, {"nodes_explored": nodes, "optimal_score": float(best_score)}


def _combinations(n: int, k: int) -> int:
    result = 1
    for i in range(k):
        result = result * (n - i) // (i + 1)
    return result
