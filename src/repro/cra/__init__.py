"""Conference Reviewer Assignment (CRA) solvers — Section 4 of the paper.

The paper's contributions:

* :class:`~repro.cra.sdga.StageDeepeningGreedySolver` (SDGA) — the
  1/2-approximation (1 - 1/e in the integral case) stage-by-stage solver.
* :class:`~repro.cra.sra.SDGAWithRefinementSolver` (SDGA-SRA) — SDGA plus
  the stochastic refinement post-processor.

Baselines reproduced from the paper's experimental section:

* :class:`~repro.cra.greedy.GreedySolver` — the 1/3-approximation pair
  greedy of Long et al. (2013).
* :class:`~repro.cra.brgg.BestReviewerGroupGreedySolver` (BRGG).
* :class:`~repro.cra.stable_matching.StableMatchingSolver` (SM).
* :class:`~repro.cra.ilp.PairwiseILPSolver` (ILP, the ARAP objective).
* :class:`~repro.cra.local_search.SDGAWithLocalSearchSolver` (SDGA-LS).
"""

from repro.cra.base import CRAResult, CRASolver
from repro.cra.brgg import BestReviewerGroupGreedySolver
from repro.cra.exact import ExhaustiveSolver
from repro.cra.greedy import GreedySolver
from repro.cra.ideal import IdealAssignment, ideal_assignment
from repro.cra.ilp import PairwiseILPSolver
from repro.cra.local_search import LocalSearchRefiner, SDGAWithLocalSearchSolver
from repro.cra.ratio import (
    GREEDY_RATIO,
    RatioGreedySolver,
    RatioPoint,
    approximation_ratio_table,
    general_case_ratio,
    integral_case_ratio,
    sdga_ratio,
)
from repro.cra.repair import RefillRepairSolver, complete_assignment
from repro.cra.retrieval import RetrievalAssignment, solve_retrieval_assignment
from repro.cra.sdga import StageDeepeningGreedySolver
from repro.cra.sra import RefinementRound, SDGAWithRefinementSolver, StochasticRefiner
from repro.cra.stable_matching import StableMatchingSolver


def available_solvers() -> list[str]:
    """Canonical names of every registered conference-assignment solver.

    Solvers are registered in the string-keyed registry of
    :mod:`repro.service.registry` (imported lazily here to keep this
    package importable without the service subsystem); the CLI and the
    serving front end validate their ``--method`` / ``"solver"`` inputs
    against this list.
    """
    from repro.service.registry import available_solvers as _available

    return _available("cra")


__all__ = [
    "available_solvers",
    "CRAResult",
    "CRASolver",
    "BestReviewerGroupGreedySolver",
    "ExhaustiveSolver",
    "GreedySolver",
    "IdealAssignment",
    "ideal_assignment",
    "PairwiseILPSolver",
    "LocalSearchRefiner",
    "SDGAWithLocalSearchSolver",
    "GREEDY_RATIO",
    "RatioGreedySolver",
    "RatioPoint",
    "approximation_ratio_table",
    "general_case_ratio",
    "integral_case_ratio",
    "sdga_ratio",
    "complete_assignment",
    "RefillRepairSolver",
    "RetrievalAssignment",
    "solve_retrieval_assignment",
    "StageDeepeningGreedySolver",
    "RefinementRound",
    "SDGAWithRefinementSolver",
    "StochasticRefiner",
    "StableMatchingSolver",
]
