"""Stable Matching (SM) baseline — Gale-Shapley with capacities.

The paper includes stable matching as a widely accepted resource-allocation
baseline for CRA (Section 5.2).  Papers play the proposing side: each paper
needs ``delta_p`` seats and proposes to reviewers in decreasing order of
the pair coverage score; every reviewer holds at most ``delta_r``
proposals, always keeping the papers it scores highest on.  The result is
stable with respect to the pairwise scores but — as the paper's experiments
show — ignores the *group* composition, so interdisciplinary papers often
end up with narrow groups.

The default path builds the preference lists in index space: one stable
argsort per paper over the shared (delta-maintained) pair-score matrix,
conflicts masked out through the compiled feasibility mask of
:class:`~repro.core.dense.DenseProblem`.  Because the mask is obtained
through :meth:`WGRAPProblem.dense_view
<repro.core.problem.WGRAPProblem.dense_view>` *inside the solve*, live
conflict edits are patched in before any preference list is built — a
mid-session ``problem.conflicts.add(...)`` is observed, never a stale
snapshot (pinned by ``tests/conformance``).  ``use_dense=False`` keeps the
object path — Python sorts over per-pair ``is_feasible_pair`` checks — as
the conformance-harness oracle; both paths produce identical preference
lists (stable sort, same tie order) and therefore identical matchings.
"""

from __future__ import annotations

from collections import deque
from typing import Any

import numpy as np

from repro.core.assignment import Assignment
from repro.core.problem import WGRAPProblem
from repro.cra.base import CRASolver
from repro.cra.repair import complete_assignment

__all__ = ["StableMatchingSolver"]


class StableMatchingSolver(CRASolver):
    """Deferred acceptance between papers (proposers) and reviewers.

    Parameters
    ----------
    use_dense:
        ``False`` selects the object-path preference-list construction
        (kept as the conformance baseline); the matching loop is shared.
    """

    name = "SM"

    def __init__(self, use_dense: bool = True) -> None:
        self._use_dense = use_dense

    def _solve(self, problem: WGRAPProblem) -> tuple[Assignment, dict[str, Any]]:
        pair_scores = problem.pair_score_matrix()  # (R, P), shared cache
        if self._use_dense:
            preference_lists = self._preferences_dense(problem, pair_scores)
        else:
            preference_lists = self._preferences_object(problem, pair_scores)

        num_papers = problem.num_papers
        num_reviewers = problem.num_reviewers
        next_proposal = [0] * num_papers
        seats_needed = [problem.group_size] * num_papers
        #: for every reviewer, the held papers as a list of (score, paper_idx)
        held: list[list[tuple[float, int]]] = [[] for _ in range(num_reviewers)]

        queue: deque[int] = deque(range(num_papers))
        proposals = 0
        rejections = 0

        while queue:
            paper_idx = queue.popleft()
            if seats_needed[paper_idx] == 0:
                continue
            preferences = preference_lists[paper_idx]
            while seats_needed[paper_idx] > 0 and next_proposal[paper_idx] < len(preferences):
                reviewer_idx = preferences[next_proposal[paper_idx]]
                next_proposal[paper_idx] += 1
                proposals += 1
                score = float(pair_scores[reviewer_idx, paper_idx])
                holdings = held[reviewer_idx]
                if len(holdings) < problem.reviewer_workload:
                    holdings.append((score, paper_idx))
                    seats_needed[paper_idx] -= 1
                    continue
                # Reviewer is full: keep the proposal only if it beats the
                # weakest held paper.
                weakest_position = min(
                    range(len(holdings)), key=lambda position: holdings[position][0]
                )
                weakest_score, weakest_paper = holdings[weakest_position]
                if score > weakest_score:
                    holdings[weakest_position] = (score, paper_idx)
                    seats_needed[paper_idx] -= 1
                    seats_needed[weakest_paper] += 1
                    queue.append(weakest_paper)
                    rejections += 1
                else:
                    rejections += 1

        assignment = Assignment()
        for reviewer_idx, holdings in enumerate(held):
            reviewer_id = problem.reviewer_ids[reviewer_idx]
            for _, paper_idx in holdings:
                assignment.add(reviewer_id, problem.paper_ids[paper_idx])

        repaired = False
        if any(
            assignment.group_size(paper_id) < problem.group_size
            for paper_id in problem.paper_ids
        ):
            # Dense conflicts can exhaust a paper's preference list; top the
            # assignment up with the repair pass (rare in practice).
            assignment = complete_assignment(
                problem, assignment, use_dense=self._use_dense
            )
            repaired = True

        return assignment, {
            "proposals": proposals,
            "rejections": rejections,
            "repaired": repaired,
        }

    # ------------------------------------------------------------------
    # Preference lists
    # ------------------------------------------------------------------
    @staticmethod
    def _preferences_dense(
        problem: WGRAPProblem, pair_scores: np.ndarray
    ) -> list[list[int]]:
        """Reviewer indices by descending score, conflicts masked in index space.

        The feasibility mask comes from ``dense_view()`` *here*, at solve
        time, so pending in-place conflict patches are applied before the
        lists are built.
        """
        dense = problem.dense_view()
        feasible = dense.feasible
        preference_lists: list[list[int]] = []
        for paper_idx in range(problem.num_papers):
            order = np.argsort(-pair_scores[:, paper_idx], kind="stable")
            preference_lists.append(order[feasible[order, paper_idx]].tolist())
        return preference_lists

    @staticmethod
    def _preferences_object(
        problem: WGRAPProblem, pair_scores: np.ndarray
    ) -> list[list[int]]:
        """The same lists via Python sorts and per-pair feasibility checks."""
        reviewer_ids = problem.reviewer_ids
        preference_lists: list[list[int]] = []
        for paper_id in problem.paper_ids:
            paper_idx = problem.paper_index(paper_id)
            column = pair_scores[:, paper_idx]
            order = sorted(
                range(problem.num_reviewers), key=lambda row: -float(column[row])
            )
            preference_lists.append(
                [
                    row
                    for row in order
                    if problem.is_feasible_pair(reviewer_ids[row], paper_id)
                ]
            )
        return preference_lists
