"""The pair-greedy baseline of Long et al. (2013), adapted to WGRAP.

Section 4.1 of the paper reviews this algorithm: starting from an empty
assignment, repeatedly add the feasible ``(reviewer, paper)`` pair with the
largest marginal gain until every paper has ``delta_p`` reviewers.  Because
the objective is submodular over a 2-system of feasible assignments, the
greedy achieves a 1/3 approximation (Fisher, Nemhauser and Wolsey 1978),
which the paper's SDGA improves to at least 1/2.

Two implementations are provided behind one class:

* ``use_lazy_heap=True`` (default) — the textbook *lazy greedy*: gains are
  kept in a max-heap and only re-evaluated when popped; submodularity
  guarantees the re-evaluated gain is still an upper bound of the true
  gain, so the selection is identical to the naive version.
* ``use_lazy_heap=False`` — the naive re-scan of every feasible pair at
  every iteration; kept for the ablation benchmark that shows why the heap
  matters.

The default path runs on the :class:`~repro.core.dense.DenseProblem`
index-space view and replaces the heap with incrementally maintained
per-paper column maxima over the ``(R, P)`` gain matrix: the initial
gains come straight from the pair-score matrix and the compiled
feasibility mask (no per-pair ``is_feasible_pair`` string calls), and
each step refreshes exactly one column plus the column maxima
invalidated by a saturated reviewer.  Column refreshes go through the
exact pruned candidate generator of :mod:`repro.core.delta`: only the
top-``width`` candidates by pair score (an admissible upper bound on the
marginal gain) are evaluated, and the winner is certified against the
next candidate's bound — falling back to the full column whenever the
bound cannot certify the argmax, so the refresh is ``O(width * T)``
instead of ``O(R * T)`` without changing a single selection.  Every step
selects the feasible pair with the largest *current* marginal gain, ties
broken by smallest ``(reviewer, paper)`` — exactly the naive greedy's
selection, which ``tests/test_dense_kernels.py`` pins bit for bit,
including ties.  (The lazy heap selects on *recorded* gains refreshed
only when popped; floating-point rounding can leave a stale record an
ulp below the true current gain, so in exact-tie regimes — e.g. a group
that already covers a paper's residual — the heap's pick can differ from
the true argmax by tie order.  The dense path is faithful to the true
selection; ``use_dense=False`` keeps the historical heap as reference
and benchmark baseline.)
"""

from __future__ import annotations

import heapq
from typing import Any

import numpy as np

from repro.core.assignment import Assignment
from repro.core.delta import PrunedCandidateGenerator
from repro.core.problem import WGRAPProblem
from repro.cra.base import CRASolver
from repro.cra.repair import complete_assignment
from repro.obs.trace import get_tracer

TRACER = get_tracer()

__all__ = ["GreedySolver"]


class GreedySolver(CRASolver):
    """Pair-by-pair greedy assignment (the 1/3-approximation baseline).

    Parameters
    ----------
    use_lazy_heap:
        Choose between the lazy-heap greedy (default) and the naive
        full re-scan (ablation only).
    use_dense:
        For the lazy path, ``False`` selects the historical object-path
        lazy heap, kept as the dense-kernel benchmark baseline.  The heap
        makes the identical assignment except in exact-gain-tie regimes,
        where its ulp-stale records can reorder the tie (see the module
        docstring) — the dense path matches the *naive* selection bit for
        bit everywhere, which is why the cross-solver conformance harness
        uses the naive object path (``use_lazy_heap=False,
        use_dense=False``), not the heap, as Greedy's object oracle.  For
        the naive path, ``False`` evaluates every gain through the object
        layer (per-paper ``group_vector`` + ``gain_vector`` calls,
        ``is_feasible_pair`` string checks) with the identical true-argmax
        selection.
    prune:
        Refresh columns through the exact pruned candidate generator
        (default).  Pruning is result-preserving — every certification
        failure falls back to the full column — so disabling it only
        changes the running time.
    prune_width:
        Shortlist width of the generator; ``None`` picks the default
        scaled to the group size.
    """

    name = "Greedy"

    def __init__(
        self,
        use_lazy_heap: bool = True,
        use_dense: bool = True,
        prune: bool = True,
        prune_width: int | None = None,
    ) -> None:
        self._use_lazy_heap = use_lazy_heap
        self._use_dense = use_dense
        self._prune = prune
        self._prune_width = prune_width

    def _solve(self, problem: WGRAPProblem) -> tuple[Assignment, dict[str, Any]]:
        if self._use_lazy_heap:
            if self._use_dense:
                return self._solve_lazy(problem)
            return self._solve_lazy_object(problem)
        if self._use_dense:
            return self._solve_naive(problem)
        return self._solve_naive_object(problem)

    # ------------------------------------------------------------------
    # Lazy greedy (dense kernels)
    # ------------------------------------------------------------------
    def _solve_lazy(self, problem: WGRAPProblem) -> tuple[Assignment, dict[str, Any]]:
        """Greedy via incrementally maintained per-paper column maxima.

        Selects, at every step, the feasible pair with the largest
        *current* marginal gain, ties broken by the smallest
        ``(reviewer, paper)`` index pair — bitwise the same selection as
        the naive full re-scan (pinned by the equivalence tests), at a
        fraction of its cost: instead of recomputing every gain each
        round (or popping millions of stale heap tuples), only each
        paper's current column maximum and argmax are maintained;
        assigning a pair refreshes that paper's column through the exact
        pruned candidate generator (top-``width`` shortlist by pair-score
        bound, certified, full-column fallback) and, when the reviewer
        saturates, the maxima of the columns that pointed at it —
        everything else is already up to date.  A column's gains change
        only when its own group changes, so a re-evaluation between
        refreshes reproduces the stored values exactly.
        """
        dense = problem.dense_view()
        reviewer_matrix = dense.reviewer_matrix
        num_papers = dense.num_papers
        num_reviewers = dense.num_reviewers
        reviewer_ids = problem.reviewer_ids
        paper_ids = problem.paper_ids
        group_size = dense.group_size
        reviewer_workload = dense.reviewer_workload
        feasible = dense.feasible
        generator = PrunedCandidateGenerator(
            dense,
            width=self._prune_width if self._prune else num_reviewers,
        )
        certified_before = dense.view_stats.prune_certified
        fallbacks_before = dense.view_stats.prune_fallbacks

        assignment = Assignment()
        group_vectors = np.zeros((num_papers, dense.num_topics), dtype=np.float64)
        group_sizes = np.zeros(num_papers, dtype=np.int64)
        loads = np.zeros(num_reviewers, dtype=np.int64)
        members: list[list[int]] = [[] for _ in range(num_papers)]

        initial = np.where(feasible, dense.pair_scores(), -np.inf)
        column_max = initial.max(axis=0)
        column_arg = initial.argmax(axis=0)  # first maximum = smallest reviewer
        del initial

        target_pairs = num_papers * group_size
        iterations = 0
        column_refreshes = 0

        def refresh(refresh_idx: int) -> None:
            eligible = feasible[:, refresh_idx] & (loads < reviewer_workload)
            rows = members[refresh_idx]
            if rows:
                eligible[rows] = False
            value, row = generator.column_argmax(
                refresh_idx, group_vectors[refresh_idx], eligible
            )
            column_max[refresh_idx] = value
            column_arg[refresh_idx] = row if row >= 0 else 0

        with TRACER.span("greedy.select_loop") as select_span:
            while len(assignment) < target_pairs:
                best = column_max.max()
                if not np.isfinite(best):
                    break  # no feasible pair left
                tied = np.flatnonzero(column_max == best)
                if tied.size == 1:
                    paper_idx = int(tied[0])
                else:
                    # Heap tie order: smallest (reviewer, paper) among the tied
                    # column bests.
                    paper_idx = int(tied[np.lexsort((tied, column_arg[tied]))[0]])
                reviewer_idx = int(column_arg[paper_idx])

                assignment.add(reviewer_ids[reviewer_idx], paper_ids[paper_idx])
                np.maximum(
                    group_vectors[paper_idx],
                    reviewer_matrix[reviewer_idx],
                    out=group_vectors[paper_idx],
                )
                members[paper_idx].append(reviewer_idx)
                group_sizes[paper_idx] += 1
                loads[reviewer_idx] += 1
                iterations += 1
                saturated = loads[reviewer_idx] >= reviewer_workload

                if group_sizes[paper_idx] >= group_size:
                    column_max[paper_idx] = -np.inf
                else:
                    # Refresh the paper's gains against its new group vector.
                    refresh(paper_idx)
                    column_refreshes += 1

                if saturated:
                    # Columns whose recorded argmax was the saturated reviewer
                    # must re-resolve; all other maxima are attained by still
                    # eligible reviewers whose gains have not changed.
                    stale = np.flatnonzero(
                        (column_arg == reviewer_idx) & np.isfinite(column_max)
                    )
                    for stale_idx in stale.tolist():
                        refresh(int(stale_idx))
                    column_refreshes += int(stale.size)
            select_span.set(iterations=iterations, column_refreshes=column_refreshes)

        repaired = False
        if len(assignment) < target_pairs:
            # Extremely tight capacity plus conflicts can strand a few slots;
            # top the assignment up (greedy itself has no backtracking).
            assignment = complete_assignment(problem, assignment)
            repaired = True
        return assignment, {
            "iterations": iterations,
            "column_refreshes": column_refreshes,
            "strategy": "dense_argmax",
            "pruned": self._prune,
            "prune_width": generator.width,
            "prune_certified": dense.view_stats.prune_certified - certified_before,
            "prune_fallbacks": dense.view_stats.prune_fallbacks - fallbacks_before,
            "repaired": repaired,
        }

    # ------------------------------------------------------------------
    # Lazy-heap greedy (object-path reference)
    # ------------------------------------------------------------------
    def _solve_lazy_object(
        self, problem: WGRAPProblem
    ) -> tuple[Assignment, dict[str, Any]]:
        """The pre-dense implementation, kept as a pinned baseline."""
        scoring = problem.scoring
        reviewer_matrix = problem.reviewer_matrix
        paper_matrix = problem.paper_matrix
        num_papers = problem.num_papers
        num_reviewers = problem.num_reviewers

        assignment = Assignment()
        group_vectors = np.zeros((num_papers, problem.num_topics), dtype=np.float64)
        group_sizes = np.zeros(num_papers, dtype=np.int64)
        loads = np.zeros(num_reviewers, dtype=np.int64)
        versions = np.zeros(num_papers, dtype=np.int64)

        initial_gains = problem.pair_score_matrix()
        heap: list[tuple[float, int, int, int]] = []
        for paper_idx in range(num_papers):
            paper_id = problem.paper_ids[paper_idx]
            for reviewer_idx in range(num_reviewers):
                reviewer_id = problem.reviewer_ids[reviewer_idx]
                if not problem.is_feasible_pair(reviewer_id, paper_id):
                    continue
                heap.append(
                    (-float(initial_gains[reviewer_idx, paper_idx]), reviewer_idx, paper_idx, 0)
                )
        heapq.heapify(heap)

        target_pairs = num_papers * problem.group_size
        iterations = 0
        reinsertions = 0

        while len(assignment) < target_pairs and heap:
            negative_gain, reviewer_idx, paper_idx, version = heapq.heappop(heap)
            if group_sizes[paper_idx] >= problem.group_size:
                continue
            if loads[reviewer_idx] >= problem.reviewer_workload:
                continue
            reviewer_id = problem.reviewer_ids[reviewer_idx]
            paper_id = problem.paper_ids[paper_idx]
            if assignment.contains(reviewer_id, paper_id):
                continue

            if version != versions[paper_idx]:
                gain = float(
                    scoring.gain_vector(
                        group_vectors[paper_idx],
                        reviewer_matrix[reviewer_idx][None, :],
                        paper_matrix[paper_idx],
                    )[0]
                )
                heapq.heappush(
                    heap, (-gain, reviewer_idx, paper_idx, int(versions[paper_idx]))
                )
                reinsertions += 1
                continue

            assignment.add(reviewer_id, paper_id)
            group_vectors[paper_idx] = np.maximum(
                group_vectors[paper_idx], reviewer_matrix[reviewer_idx]
            )
            group_sizes[paper_idx] += 1
            loads[reviewer_idx] += 1
            versions[paper_idx] += 1
            iterations += 1

        repaired = False
        if len(assignment) < target_pairs:
            assignment = complete_assignment(problem, assignment)
            repaired = True
        return assignment, {
            "iterations": iterations,
            "heap_reinsertions": reinsertions,
            "strategy": "lazy_heap",
            "repaired": repaired,
        }

    # ------------------------------------------------------------------
    # Naive greedy (ablation)
    # ------------------------------------------------------------------
    def _solve_naive(self, problem: WGRAPProblem) -> tuple[Assignment, dict[str, Any]]:
        dense = problem.dense_view()
        num_papers = dense.num_papers
        num_reviewers = dense.num_reviewers

        assignment = Assignment()
        group_vectors = np.zeros((num_papers, dense.num_topics), dtype=np.float64)
        group_sizes = np.zeros(num_papers, dtype=np.int64)
        loads = np.zeros(num_reviewers, dtype=np.int64)
        # Compiled masks replace the per-iteration string scans: conflicts
        # come from the dense view, assigned pairs are flipped as they are
        # chosen (the old code re-walked assignment.pairs() every round —
        # quadratic in the assignment size — and resolved ids with linear
        # tuple lookups while building its conflict mask).
        infeasible = ~dense.feasible
        assigned = np.zeros((num_reviewers, num_papers), dtype=bool)

        target_pairs = num_papers * dense.group_size
        iterations = 0
        evaluations = 0

        while len(assignment) < target_pairs:
            # Recompute the gain of every feasible pair (the point of the
            # ablation), in one batched kernel over the open papers.
            gains = np.full((num_reviewers, num_papers), -np.inf, dtype=np.float64)
            open_papers = np.flatnonzero(group_sizes < dense.group_size)
            gains[:, open_papers] = dense.gain_matrix(
                group_vectors[open_papers], open_papers
            ).T
            evaluations += num_reviewers * len(open_papers)
            gains[loads >= dense.reviewer_workload, :] = -np.inf
            gains[infeasible] = -np.inf
            gains[assigned] = -np.inf

            reviewer_idx, paper_idx = np.unravel_index(np.argmax(gains), gains.shape)
            if not np.isfinite(gains[reviewer_idx, paper_idx]):
                break  # no feasible pair left (cannot happen on validated problems)
            reviewer_id = problem.reviewer_ids[int(reviewer_idx)]
            paper_id = problem.paper_ids[int(paper_idx)]
            assignment.add(reviewer_id, paper_id)
            assigned[reviewer_idx, paper_idx] = True
            group_vectors[paper_idx] = np.maximum(
                group_vectors[paper_idx], dense.reviewer_matrix[reviewer_idx]
            )
            group_sizes[paper_idx] += 1
            loads[reviewer_idx] += 1
            iterations += 1

        repaired = False
        if len(assignment) < target_pairs:
            assignment = complete_assignment(problem, assignment)
            repaired = True
        return assignment, {
            "iterations": iterations,
            "gain_evaluations": evaluations,
            "strategy": "naive",
            "repaired": repaired,
        }

    def _solve_naive_object(
        self, problem: WGRAPProblem
    ) -> tuple[Assignment, dict[str, Any]]:
        """The naive greedy evaluated entirely through the object layer.

        Same true-argmax selection (ties on the smallest
        ``(reviewer, paper)`` pair) as :meth:`_solve_naive`, but gains come
        from per-paper :meth:`~repro.core.problem.WGRAPProblem.group_vector`
        + :meth:`~repro.core.scoring.ScoringFunction.gain_vector` calls and
        feasibility from per-pair ``is_feasible_pair`` checks — the
        conformance-harness oracle for both dense greedy paths.  (The lazy
        heap is *not* that oracle: its stale records reorder exact-gain
        ties, a documented historical divergence pinned by
        ``tests/conformance``.)
        """
        scoring = problem.scoring
        reviewer_matrix = problem.reviewer_matrix
        paper_matrix = problem.paper_matrix
        num_papers = problem.num_papers
        num_reviewers = problem.num_reviewers

        assignment = Assignment()
        loads = np.zeros(num_reviewers, dtype=np.int64)
        target_pairs = num_papers * problem.group_size
        iterations = 0
        evaluations = 0

        while len(assignment) < target_pairs:
            gains = np.full((num_reviewers, num_papers), -np.inf, dtype=np.float64)
            for paper_idx, paper_id in enumerate(problem.paper_ids):
                if assignment.group_size(paper_id) >= problem.group_size:
                    continue
                group_vector = problem.group_vector(assignment, paper_id)
                gains[:, paper_idx] = scoring.gain_vector(
                    group_vector, reviewer_matrix, paper_matrix[paper_idx]
                )
                evaluations += num_reviewers
                members = assignment.reviewers_of(paper_id)
                for reviewer_idx, reviewer_id in enumerate(problem.reviewer_ids):
                    if (
                        loads[reviewer_idx] >= problem.reviewer_workload
                        or reviewer_id in members
                        or not problem.is_feasible_pair(reviewer_id, paper_id)
                    ):
                        gains[reviewer_idx, paper_idx] = -np.inf

            reviewer_idx, paper_idx = np.unravel_index(np.argmax(gains), gains.shape)
            if not np.isfinite(gains[reviewer_idx, paper_idx]):
                break
            assignment.add(
                problem.reviewer_ids[int(reviewer_idx)],
                problem.paper_ids[int(paper_idx)],
            )
            loads[reviewer_idx] += 1
            iterations += 1

        repaired = False
        if len(assignment) < target_pairs:
            assignment = complete_assignment(problem, assignment, use_dense=False)
            repaired = True
        return assignment, {
            "iterations": iterations,
            "gain_evaluations": evaluations,
            "strategy": "naive_object",
            "repaired": repaired,
        }
