"""The pair-greedy baseline of Long et al. (2013), adapted to WGRAP.

Section 4.1 of the paper reviews this algorithm: starting from an empty
assignment, repeatedly add the feasible ``(reviewer, paper)`` pair with the
largest marginal gain until every paper has ``delta_p`` reviewers.  Because
the objective is submodular over a 2-system of feasible assignments, the
greedy achieves a 1/3 approximation (Fisher, Nemhauser and Wolsey 1978),
which the paper's SDGA improves to at least 1/2.

Two implementations are provided behind one class:

* ``use_lazy_heap=True`` (default) — the textbook *lazy greedy*: gains are
  kept in a max-heap and only re-evaluated when popped; submodularity
  guarantees the re-evaluated gain is still an upper bound of the true
  gain, so the selection is identical to the naive version.
* ``use_lazy_heap=False`` — the naive re-scan of every feasible pair at
  every iteration; kept for the ablation benchmark that shows why the heap
  matters.
"""

from __future__ import annotations

import heapq
from typing import Any

import numpy as np

from repro.core.assignment import Assignment
from repro.core.problem import WGRAPProblem
from repro.cra.base import CRASolver
from repro.cra.repair import complete_assignment

__all__ = ["GreedySolver"]


class GreedySolver(CRASolver):
    """Pair-by-pair greedy assignment (the 1/3-approximation baseline)."""

    name = "Greedy"

    def __init__(self, use_lazy_heap: bool = True) -> None:
        self._use_lazy_heap = use_lazy_heap

    def _solve(self, problem: WGRAPProblem) -> tuple[Assignment, dict[str, Any]]:
        if self._use_lazy_heap:
            return self._solve_lazy(problem)
        return self._solve_naive(problem)

    # ------------------------------------------------------------------
    # Lazy-heap greedy
    # ------------------------------------------------------------------
    def _solve_lazy(self, problem: WGRAPProblem) -> tuple[Assignment, dict[str, Any]]:
        scoring = problem.scoring
        reviewer_matrix = problem.reviewer_matrix
        paper_matrix = problem.paper_matrix
        num_papers = problem.num_papers
        num_reviewers = problem.num_reviewers

        assignment = Assignment()
        group_vectors = np.zeros((num_papers, problem.num_topics), dtype=np.float64)
        group_sizes = np.zeros(num_papers, dtype=np.int64)
        loads = np.zeros(num_reviewers, dtype=np.int64)
        #: per-paper "version": bumped whenever the paper's group changes, so
        #: stale heap entries can be detected cheaply.
        versions = np.zeros(num_papers, dtype=np.int64)

        initial_gains = problem.pair_score_matrix()
        heap: list[tuple[float, int, int, int]] = []
        for paper_idx in range(num_papers):
            paper_id = problem.paper_ids[paper_idx]
            for reviewer_idx in range(num_reviewers):
                reviewer_id = problem.reviewer_ids[reviewer_idx]
                if not problem.is_feasible_pair(reviewer_id, paper_id):
                    continue
                heap.append(
                    (-float(initial_gains[reviewer_idx, paper_idx]), reviewer_idx, paper_idx, 0)
                )
        heapq.heapify(heap)

        target_pairs = num_papers * problem.group_size
        iterations = 0
        reinsertions = 0

        while len(assignment) < target_pairs and heap:
            negative_gain, reviewer_idx, paper_idx, version = heapq.heappop(heap)
            if group_sizes[paper_idx] >= problem.group_size:
                continue
            if loads[reviewer_idx] >= problem.reviewer_workload:
                continue
            reviewer_id = problem.reviewer_ids[reviewer_idx]
            paper_id = problem.paper_ids[paper_idx]
            if assignment.contains(reviewer_id, paper_id):
                continue

            if version != versions[paper_idx]:
                # The paper's group changed since this gain was computed:
                # refresh it and push it back (lazy evaluation).
                gain = float(
                    scoring.gain_vector(
                        group_vectors[paper_idx],
                        reviewer_matrix[reviewer_idx][None, :],
                        paper_matrix[paper_idx],
                    )[0]
                )
                heapq.heappush(
                    heap, (-gain, reviewer_idx, paper_idx, int(versions[paper_idx]))
                )
                reinsertions += 1
                continue

            assignment.add(reviewer_id, paper_id)
            group_vectors[paper_idx] = np.maximum(
                group_vectors[paper_idx], reviewer_matrix[reviewer_idx]
            )
            group_sizes[paper_idx] += 1
            loads[reviewer_idx] += 1
            versions[paper_idx] += 1
            iterations += 1

        repaired = False
        if len(assignment) < target_pairs:
            # Extremely tight capacity plus conflicts can strand a few slots;
            # top the assignment up (greedy itself has no backtracking).
            assignment = complete_assignment(problem, assignment)
            repaired = True
        return assignment, {
            "iterations": iterations,
            "heap_reinsertions": reinsertions,
            "strategy": "lazy_heap",
            "repaired": repaired,
        }

    # ------------------------------------------------------------------
    # Naive greedy (ablation)
    # ------------------------------------------------------------------
    def _solve_naive(self, problem: WGRAPProblem) -> tuple[Assignment, dict[str, Any]]:
        scoring = problem.scoring
        reviewer_matrix = problem.reviewer_matrix
        paper_matrix = problem.paper_matrix
        num_papers = problem.num_papers
        num_reviewers = problem.num_reviewers

        assignment = Assignment()
        group_vectors = np.zeros((num_papers, problem.num_topics), dtype=np.float64)
        group_sizes = np.zeros(num_papers, dtype=np.int64)
        loads = np.zeros(num_reviewers, dtype=np.int64)

        conflict_mask = np.zeros((num_reviewers, num_papers), dtype=bool)
        for paper_idx, paper_id in enumerate(problem.paper_ids):
            for reviewer_id in problem.conflicts.reviewers_conflicting_with(paper_id):
                if reviewer_id in problem.reviewer_ids:
                    conflict_mask[problem.reviewer_index(reviewer_id), paper_idx] = True

        target_pairs = num_papers * problem.group_size
        iterations = 0
        evaluations = 0

        while len(assignment) < target_pairs:
            # Recompute the gain of every feasible pair.
            gains = np.full((num_reviewers, num_papers), -np.inf, dtype=np.float64)
            for paper_idx in range(num_papers):
                if group_sizes[paper_idx] >= problem.group_size:
                    continue
                paper_gains = scoring.gain_vector(
                    group_vectors[paper_idx], reviewer_matrix, paper_matrix[paper_idx]
                )
                gains[:, paper_idx] = paper_gains
                evaluations += num_reviewers
            gains[loads >= problem.reviewer_workload, :] = -np.inf
            gains[conflict_mask] = -np.inf
            for reviewer_id, paper_id in assignment.pairs():
                gains[
                    problem.reviewer_index(reviewer_id), problem.paper_index(paper_id)
                ] = -np.inf

            reviewer_idx, paper_idx = np.unravel_index(np.argmax(gains), gains.shape)
            if not np.isfinite(gains[reviewer_idx, paper_idx]):
                break  # no feasible pair left (cannot happen on validated problems)
            reviewer_id = problem.reviewer_ids[int(reviewer_idx)]
            paper_id = problem.paper_ids[int(paper_idx)]
            assignment.add(reviewer_id, paper_id)
            group_vectors[paper_idx] = np.maximum(
                group_vectors[paper_idx], reviewer_matrix[reviewer_idx]
            )
            group_sizes[paper_idx] += 1
            loads[reviewer_idx] += 1
            iterations += 1

        repaired = False
        if len(assignment) < target_pairs:
            assignment = complete_assignment(problem, assignment)
            repaired = True
        return assignment, {
            "iterations": iterations,
            "gain_evaluations": evaluations,
            "strategy": "naive",
            "repaired": repaired,
        }
