"""Local-search refinement baseline (Section 4.4, Figure 12).

The paper compares its stochastic refinement against a standard local
search that greedily swaps assignment pairs while the swap improves the
coverage score.  Because the search only ever accepts improving moves it
quickly gets stuck in a local maximum of the huge ``(C(R, delta_p))^P``
search space — which is exactly the behaviour Figure 12 demonstrates.

Two kinds of moves are considered:

* **replace** — swap an assigned reviewer of a paper for an unassigned
  reviewer with spare capacity;
* **exchange** — swap the reviewers of two assignment pairs between their
  papers.

Both moves preserve feasibility by construction.
"""

from __future__ import annotations

import time
from typing import Any

from repro.core.assignment import Assignment
from repro.core.problem import WGRAPProblem
from repro.cra.base import CRAResult, CRASolver
from repro.cra.sdga import StageDeepeningGreedySolver

__all__ = ["LocalSearchRefiner", "SDGAWithLocalSearchSolver"]


class LocalSearchRefiner:
    """Greedy hill-climbing over replace/exchange moves.

    Parameters
    ----------
    max_rounds:
        Maximum number of full passes over the papers.
    time_budget:
        Optional wall-clock budget in seconds.
    """

    def __init__(self, max_rounds: int = 100, time_budget: float | None = None) -> None:
        self._max_rounds = max_rounds
        self._time_budget = time_budget

    def refine(
        self, problem: WGRAPProblem, assignment: Assignment
    ) -> tuple[Assignment, dict[str, Any]]:
        """Hill-climb from ``assignment``; returns the local optimum reached."""
        problem.validate_assignment(assignment, require_complete=True)
        current = assignment.copy()
        current_score = problem.assignment_score(current)
        started = time.perf_counter()
        history: list[tuple[float, float]] = [(0.0, current_score)]
        moves_applied = 0

        for _ in range(self._max_rounds):
            if self._time_budget is not None:
                if time.perf_counter() - started >= self._time_budget:
                    break
            improved = False

            for paper_id in problem.paper_ids:
                if self._time_budget is not None:
                    if time.perf_counter() - started >= self._time_budget:
                        break
                gain, move = self._best_move_for_paper(problem, current, paper_id)
                if move is not None and gain > 1e-12:
                    self._apply_move(current, move)
                    current_score += gain
                    moves_applied += 1
                    improved = True
                    history.append((time.perf_counter() - started, current_score))

            if not improved:
                break

        stats: dict[str, Any] = {
            "moves_applied": moves_applied,
            "final_score": current_score,
            "history": history,
        }
        return current, stats

    # ------------------------------------------------------------------
    # Move generation
    # ------------------------------------------------------------------
    def _best_move_for_paper(
        self, problem: WGRAPProblem, assignment: Assignment, paper_id: str
    ) -> tuple[float, tuple | None]:
        """The best improving move that touches ``paper_id`` (or ``None``)."""
        best_gain = 0.0
        best_move: tuple | None = None
        current_score = problem.paper_score(assignment, paper_id)
        members = sorted(assignment.reviewers_of(paper_id))

        for reviewer_id in members:
            # Replace moves: bring in a reviewer with spare capacity.
            for candidate_id in problem.reviewer_ids:
                if candidate_id in members:
                    continue
                if assignment.load(candidate_id) >= problem.reviewer_workload:
                    continue
                if not problem.is_feasible_pair(candidate_id, paper_id):
                    continue
                gain = self._replace_gain(
                    problem, assignment, paper_id, reviewer_id, candidate_id, current_score
                )
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_move = ("replace", paper_id, reviewer_id, candidate_id)

            # Exchange moves: trade reviewers with another paper.
            for other_paper_id in problem.paper_ids:
                if other_paper_id == paper_id:
                    continue
                for other_reviewer_id in assignment.reviewers_of(other_paper_id):
                    gain = self._exchange_gain(
                        problem,
                        assignment,
                        paper_id,
                        reviewer_id,
                        other_paper_id,
                        other_reviewer_id,
                    )
                    if gain is not None and gain > best_gain + 1e-12:
                        best_gain = gain
                        best_move = (
                            "exchange",
                            paper_id,
                            reviewer_id,
                            other_paper_id,
                            other_reviewer_id,
                        )
        return best_gain, best_move

    @staticmethod
    def _replace_gain(
        problem: WGRAPProblem,
        assignment: Assignment,
        paper_id: str,
        out_reviewer: str,
        in_reviewer: str,
        current_score: float,
    ) -> float:
        assignment.remove(out_reviewer, paper_id)
        assignment.add(in_reviewer, paper_id)
        new_score = problem.paper_score(assignment, paper_id)
        assignment.remove(in_reviewer, paper_id)
        assignment.add(out_reviewer, paper_id)
        return new_score - current_score

    @staticmethod
    def _exchange_gain(
        problem: WGRAPProblem,
        assignment: Assignment,
        paper_a: str,
        reviewer_a: str,
        paper_b: str,
        reviewer_b: str,
    ) -> float | None:
        """Gain of swapping ``reviewer_a`` and ``reviewer_b`` between papers."""
        if reviewer_b in assignment.reviewers_of(paper_a):
            return None
        if reviewer_a in assignment.reviewers_of(paper_b):
            return None
        if not problem.is_feasible_pair(reviewer_b, paper_a):
            return None
        if not problem.is_feasible_pair(reviewer_a, paper_b):
            return None
        before = problem.paper_score(assignment, paper_a) + problem.paper_score(
            assignment, paper_b
        )
        assignment.remove(reviewer_a, paper_a)
        assignment.remove(reviewer_b, paper_b)
        assignment.add(reviewer_b, paper_a)
        assignment.add(reviewer_a, paper_b)
        after = problem.paper_score(assignment, paper_a) + problem.paper_score(
            assignment, paper_b
        )
        assignment.remove(reviewer_b, paper_a)
        assignment.remove(reviewer_a, paper_b)
        assignment.add(reviewer_a, paper_a)
        assignment.add(reviewer_b, paper_b)
        return after - before

    @staticmethod
    def _apply_move(assignment: Assignment, move: tuple) -> None:
        if move[0] == "replace":
            _, paper_id, out_reviewer, in_reviewer = move
            assignment.remove(out_reviewer, paper_id)
            assignment.add(in_reviewer, paper_id)
        else:
            _, paper_a, reviewer_a, paper_b, reviewer_b = move
            assignment.remove(reviewer_a, paper_a)
            assignment.remove(reviewer_b, paper_b)
            assignment.add(reviewer_b, paper_a)
            assignment.add(reviewer_a, paper_b)


class SDGAWithLocalSearchSolver(CRASolver):
    """SDGA followed by local search — the "SDGA-LS" line of Figure 12."""

    name = "SDGA-LS"

    def __init__(
        self,
        refiner: LocalSearchRefiner | None = None,
        base_solver: CRASolver | None = None,
    ) -> None:
        self._refiner = refiner or LocalSearchRefiner()
        self._base_solver = base_solver or StageDeepeningGreedySolver()

    def _solve(self, problem: WGRAPProblem) -> tuple[Assignment, dict[str, Any]]:
        base_result: CRAResult = self._base_solver.solve(problem)
        refined, refine_stats = self._refiner.refine(problem, base_result.assignment)
        stats: dict[str, Any] = {
            "base_solver": self._base_solver.name,
            "base_score": base_result.score,
            **{f"local_search_{key}": value for key, value in refine_stats.items()},
        }
        return refined, stats
